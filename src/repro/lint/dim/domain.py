"""Curated dimensional facts about this repo's core types.

The abstract interpreter resolves most calls through the cross-module
signature table (annotations travel with the code), but three kinds of
knowledge cannot be spelled as per-function unit annotations:

* **Well-known field names.**  ``state.position`` is metres wherever it
  appears — ``VehicleState``, ``FusedEstimate`` (an interval of
  metres), message payloads.  The table below maps attribute names
  whose meaning is fixed repo-wide (SI convention, DESIGN.md) to their
  dimension.  Only names that are unambiguous across the whole tree
  belong here; anything context-dependent stays out.
* **Dimension-preserving accessors.**  ``interval.lo`` has whatever
  dimension the interval carries; same for ``hi``, ``width``,
  ``midpoint``.  These propagate the receiver's dimension instead of
  naming one.
* **Dimension-polymorphic Interval methods.**  ``iv.shift(offset)``
  requires ``offset`` to match the interval's dimension and returns
  that dimension — a constraint between receiver and argument that the
  ``name [unit]`` grammar cannot express.

``math``-module behaviour lives here too (``sqrt`` halves exponents,
which is why the lattice uses rational ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.lint.dim.lattice import ACCEL, METRE, SECOND, SPEED, Dim

__all__ = [
    "FIELD_UNITS",
    "PRESERVING_ATTRS",
    "IntervalMethod",
    "INTERVAL_METHODS",
    "MATH_SAME_DIM",
    "MATH_SQRT",
    "MATH_DIMENSIONLESS",
    "PHYSICAL_PARAMS",
]

#: Attribute name -> dimension, for names with one repo-wide meaning.
FIELD_UNITS: Dict[str, Dim] = {
    "position": METRE,
    "velocity": SPEED,
    "acceleration": ACCEL,
    "time": SECOND,
    "dt": SECOND,
    "dt_c": SECOND,
    "dt_m": SECOND,
    "dt_s": SECOND,
    "stamp": SECOND,
    "message_age": SECOND,
    "horizon": SECOND,
    "v_min": SPEED,
    "v_max": SPEED,
    "v_buf": SPEED,
    "a_min": ACCEL,
    "a_max": ACCEL,
    "a_buf": ACCEL,
    "p_front": METRE,
    "p_back": METRE,
    "p_target": METRE,
    "oncoming_front": METRE,
    "oncoming_back": METRE,
}

#: Attributes that carry whatever dimension their receiver carries.
PRESERVING_ATTRS = frozenset({"lo", "hi", "width", "midpoint"})


@dataclass(frozen=True, slots=True)
class IntervalMethod:
    """Dimensional contract of one Interval method.

    Attributes
    ----------
    base_args:
        Indices of positional arguments that must match the receiver's
        dimension (checked only when both sides are known).
    result:
        ``"base"`` (receiver's dimension), ``"arg0"`` (first argument's
        dimension), ``"num"`` (dimensionless result such as a bool), or
        ``None`` (unknown).
    """

    base_args: Tuple[int, ...] = ()
    result: Optional[str] = "base"


#: Interval API: receiver-polymorphic dimensional contracts.
INTERVAL_METHODS: Dict[str, IntervalMethod] = {
    "intersect": IntervalMethod(base_args=(0,), result="base"),
    "hull": IntervalMethod(base_args=(0,), result="base"),
    "expand": IntervalMethod(base_args=(0,), result="base"),
    "shift": IntervalMethod(base_args=(0,), result="base"),
    "scale": IntervalMethod(base_args=(), result="base"),
    "clamp": IntervalMethod(base_args=(0,), result="base"),
    "sample": IntervalMethod(base_args=(), result="base"),
    "contains": IntervalMethod(base_args=(0,), result="num"),
    "contains_interval": IntervalMethod(base_args=(0,), result="num"),
    "overlaps": IntervalMethod(base_args=(0,), result="num"),
    "point": IntervalMethod(base_args=(), result="arg0"),
    "around": IntervalMethod(base_args=(), result="arg0"),
}

#: math.* functions that preserve their (single) argument's dimension.
MATH_SAME_DIM = frozenset(
    {"fabs", "floor", "ceil", "trunc", "copysign", "fmod", "remainder"}
)

#: math.* functions returning a dimensionless/boolean result without a
#: dimensional constraint worth enforcing.
MATH_DIMENSIONLESS = frozenset(
    {"isnan", "isinf", "isfinite", "exp", "log", "log2", "log10", "sin",
     "cos", "tan", "atan", "atan2", "asin", "acos", "degrees", "radians"}
)

#: math.sqrt halves the exponents (m^2/s^2 -> m/s).
MATH_SQRT = "sqrt"

#: Validation helpers (repro.utils.validation) that return their first
#: argument unchanged after checking it — dimension-preserving, so
#: ``dt = check_positive(dt, "dt")`` keeps ``dt`` at [s].
PASSTHROUGH_FUNCS = frozenset(
    {
        "check_finite",
        "check_positive",
        "check_nonnegative",
        "check_probability",
        "check_multiple",
        "check_optional_positive",
    }
)

#: Parameter names that denote physical quantities; a public function
#: in the dim scope taking one of these must declare its unit (SFL105).
#: Superset of the docstring-prose list in
#: :mod:`repro.lint.rules.units_docstring`.
PHYSICAL_PARAMS = frozenset(
    {
        "distance",
        "velocity",
        "speed",
        "position",
        "acceleration",
        "accel",
        "dt",
        "dt_c",
        "dt_m",
        "dt_s",
        "gap",
        "headway",
        "time",
        "duration",
        "elapsed",
        "horizon",
        "stamp",
        "now",
        "v_cap",
        "v_floor",
        "a_cap",
        "a_floor",
        "v_min",
        "v_max",
        "a_min",
        "a_max",
        "v_buf",
        "a_buf",
        "v_hi",
        "v_lo",
        "d_front",
        "d_back",
        "decel",
        "ego_position",
        "oncoming_position",
    }
)
