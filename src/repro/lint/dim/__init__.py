"""safedim: static dimensional analysis over the kinematics core.

The package is the analysis half of the SFL100–SFL105 rule family (the
rules themselves live in :mod:`repro.lint.rules.dim_rules`):

* :mod:`~repro.lint.dim.lattice` — the dimension lattice (rational
  exponents over length/time) and the bracket-unit grammar parser.
* :mod:`~repro.lint.dim.annotations` — extraction of ``Units:``
  docstring directives and ``Annotated`` hints into per-function
  declarations.
* :mod:`~repro.lint.dim.signatures` — the cross-module signature table
  that lets the intraprocedural pass check call sites against callee
  declarations.
* :mod:`~repro.lint.dim.domain` — curated dimensional facts (field
  units, Interval method contracts, ``math`` behaviour).
* :mod:`~repro.lint.dim.checker` — the abstract interpreter; one cached
  run per file feeds all six rules.
"""

from repro.lint.dim.checker import DimViolation, analyze
from repro.lint.dim.lattice import (
    ACCEL,
    DIMENSIONLESS,
    METRE,
    NUM,
    SECOND,
    SPEED,
    UNKNOWN,
    Dim,
    UnitSyntaxError,
    format_dim,
    join,
    parse_unit,
)

__all__ = [
    "DimViolation",
    "analyze",
    "Dim",
    "UnitSyntaxError",
    "parse_unit",
    "format_dim",
    "join",
    "NUM",
    "UNKNOWN",
    "DIMENSIONLESS",
    "METRE",
    "SECOND",
    "SPEED",
    "ACCEL",
]
