"""Extraction of unit declarations from function definitions.

Two equivalent, machine-checked spellings (the repo convention, see
docs/API.md):

* a ``Units:`` directive line in the docstring — a ``step(state,
  acceleration, dt)`` docstring carrying::

      Units: acceleration [m/s^2], dt [s]

  Entries are comma-separated ``name [unit]`` pairs; an optional
  trailing ``-> [unit]`` declares the return dimension.  A function may
  carry several ``Units:`` lines (they merge).

* an ``Annotated`` type hint whose metadata carries a bracketed unit
  string::

      def step(state, acceleration: Annotated[float, "[m/s^2]"], dt: float): ...

Both feed :func:`extract_function_units`, which returns the declared
per-parameter and return dimensions plus every *annotation problem*
found on the way (malformed unit, unknown parameter name) — the checker
turns those into SFL104 findings rather than silently ignoring them,
because an annotation that does not parse is an annotation that does
not protect anything.

The directive/``Annotated`` plumbing itself is shared with the shape
pass (:mod:`repro.lint.specs`); only the unit grammar lives here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.lint.dim.lattice import Dim, parse_unit
from repro.lint.specs import (
    SpecIssue,
    SpecSyntaxError,
    directive_pattern,
    docstring_lines,
    parse_directive_payload,
    spec_from_annotated,
)

__all__ = ["FunctionUnits", "UnitIssue", "extract_function_units"]

#: Back-compat alias: a unit-annotation problem is a plain spec issue.
UnitIssue = SpecIssue

_UNITS_LINE = directive_pattern("Units")


def _parse_unit_entry(text: str, bracketed: bool) -> Dim:
    """Docstring-entry grammar: the unit must be bracketed."""
    if not bracketed:
        raise SpecSyntaxError(
            f"unit {text!r} must be bracketed (write '[{text}]')"
        )
    return parse_unit(text)


def _parse_unit_metadata(text: str, bracketed: bool) -> Optional[Dim]:
    """``Annotated`` metadata grammar: brackets are optional.

    Metadata failing the unit grammar but passing the *shape* grammar
    (``"[B,4]"``) is addressed to the shape pass, not broken: yield
    ``None`` (keep scanning) instead of an issue.
    """
    try:
        return parse_unit(text)
    except SpecSyntaxError as unit_error:
        from repro.lint.shape.lattice import ShapeSyntaxError, parse_shape

        try:
            parse_shape(text, bracketed)
        except ShapeSyntaxError:
            raise unit_error from None
        return None


@dataclass(frozen=True)
class FunctionUnits:
    """The declared dimensions of one function.

    Attributes
    ----------
    param_order:
        Positional parameter names in call order (including ``self``
        for methods, which callers skip when resolving ``obj.m(...)``).
    params:
        Parameter name -> declared :class:`Dim`.
    returns:
        Declared return dimension, if any.
    issues:
        Malformed or misaddressed declarations found during extraction.
    """

    param_order: Tuple[str, ...] = ()
    params: Dict[str, Dim] = field(default_factory=dict)
    returns: Optional[Dim] = None
    issues: Tuple[UnitIssue, ...] = ()

    @property
    def has_declarations(self) -> bool:
        """Whether anything at all was declared."""
        return bool(self.params) or self.returns is not None


def _unit_from_annotated(
    annotation: Optional[ast.expr],
    issues: List[UnitIssue],
) -> Optional[Dim]:
    return spec_from_annotated(
        annotation, parse_spec=_parse_unit_metadata, issues=issues
    )


def extract_function_units(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> FunctionUnits:
    """Collect the declared dimensions of ``func``.

    ``Annotated`` hints win over docstring entries for the same
    parameter (they are closer to the code), though in practice the
    repo uses one spelling per function.
    """
    issues: List[UnitIssue] = []
    positional = [*func.args.posonlyargs, *func.args.args]
    param_order = tuple(arg.arg for arg in positional)
    every_arg = [
        *positional,
        *func.args.kwonlyargs,
        *([func.args.vararg] if func.args.vararg else []),
        *([func.args.kwarg] if func.args.kwarg else []),
    ]
    known_names = frozenset(arg.arg for arg in every_arg)

    params: Dict[str, Dim] = {}
    returns: Optional[Dim] = None
    for line, text in docstring_lines(func):
        match = _UNITS_LINE.match(text)
        if match is None:
            continue
        declared = parse_directive_payload(
            match.group("payload"),
            line,
            directive="Units",
            parse_spec=_parse_unit_entry,
            known_names=known_names,
            params=params,
            issues=issues,
        )
        if declared is not None:
            returns = declared

    for arg in every_arg:
        dim = _unit_from_annotated(arg.annotation, issues)
        if dim is not None:
            params[arg.arg] = dim
    annotated_return = _unit_from_annotated(func.returns, issues)
    if annotated_return is not None:
        returns = annotated_return

    return FunctionUnits(
        param_order=param_order,
        params=params,
        returns=returns,
        issues=tuple(issues),
    )
