"""Extraction of unit declarations from function definitions.

Two equivalent, machine-checked spellings (the repo convention, see
docs/API.md):

* a ``Units:`` directive line in the docstring — a ``step(state,
  acceleration, dt)`` docstring carrying::

      Units: acceleration [m/s^2], dt [s]

  Entries are comma-separated ``name [unit]`` pairs; an optional
  trailing ``-> [unit]`` declares the return dimension.  A function may
  carry several ``Units:`` lines (they merge).

* an ``Annotated`` type hint whose metadata carries a bracketed unit
  string::

      def step(state, acceleration: Annotated[float, "[m/s^2]"], dt: float): ...

Both feed :func:`extract_function_units`, which returns the declared
per-parameter and return dimensions plus every *annotation problem*
found on the way (malformed unit, unknown parameter name) — the checker
turns those into SFL104 findings rather than silently ignoring them,
because an annotation that does not parse is an annotation that does
not protect anything.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.lint.dim.lattice import Dim, UnitSyntaxError, parse_unit

__all__ = ["FunctionUnits", "UnitIssue", "extract_function_units"]

_UNITS_LINE = re.compile(r"^\s*Units:\s*(?P<payload>.*\S)\s*$")
_ENTRY = re.compile(r"^(?P<name>\w+)\s*\[(?P<unit>[^\[\]]*)\]$")
_ARROW = re.compile(r"\s*->\s*\[(?P<unit>[^\[\]]*)\]\s*$")


@dataclass(frozen=True, slots=True)
class UnitIssue:
    """One problem with a unit declaration (feeds SFL104)."""

    line: int
    message: str


@dataclass(frozen=True)
class FunctionUnits:
    """The declared dimensions of one function.

    Attributes
    ----------
    param_order:
        Positional parameter names in call order (including ``self``
        for methods, which callers skip when resolving ``obj.m(...)``).
    params:
        Parameter name -> declared :class:`Dim`.
    returns:
        Declared return dimension, if any.
    issues:
        Malformed or misaddressed declarations found during extraction.
    """

    param_order: Tuple[str, ...] = ()
    params: Dict[str, Dim] = field(default_factory=dict)
    returns: Optional[Dim] = None
    issues: Tuple[UnitIssue, ...] = ()

    @property
    def has_declarations(self) -> bool:
        """Whether anything at all was declared."""
        return bool(self.params) or self.returns is not None


def _annotated_metadata(annotation: ast.expr) -> List[ast.Constant]:
    """String metadata constants of an ``Annotated[...]`` hint, if any."""
    if not isinstance(annotation, ast.Subscript):
        return []
    target = annotation.value
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else ""
    )
    if name != "Annotated":
        return []
    inner = annotation.slice
    elements = inner.elts[1:] if isinstance(inner, ast.Tuple) else []
    return [
        element
        for element in elements
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


def _unit_from_annotated(
    annotation: Optional[ast.expr],
    issues: List[UnitIssue],
) -> Optional[Dim]:
    if annotation is None:
        return None
    for constant in _annotated_metadata(annotation):
        text = constant.value.strip()
        bracketed = text.startswith("[") and text.endswith("]")
        try:
            return parse_unit(text[1:-1] if bracketed else text)
        except UnitSyntaxError as exc:
            if bracketed:
                # An explicit bracket is unambiguously a unit: a parse
                # failure is a broken declaration, not free-form metadata.
                issues.append(UnitIssue(constant.lineno, str(exc)))
            continue
    return None


def _docstring_lines(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
    """Yield ``(absolute_line, text)`` for each raw docstring line."""
    if not func.body:
        return
    first = func.body[0]
    if not (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    ):
        return
    for offset, text in enumerate(first.value.value.splitlines()):
        yield first.value.lineno + offset, text


def _parse_units_payload(
    payload: str,
    line: int,
    known_names: frozenset,
    params: Dict[str, Dim],
    issues: List[UnitIssue],
) -> Optional[Dim]:
    """Parse one ``Units:`` payload; returns the declared return dim."""
    returns: Optional[Dim] = None
    arrow = _ARROW.search(payload)
    if arrow is not None:
        try:
            returns = parse_unit(arrow.group("unit"))
        except UnitSyntaxError as exc:
            issues.append(UnitIssue(line, f"return unit: {exc}"))
        payload = payload[: arrow.start()]
    for raw_entry in payload.split(","):
        entry = raw_entry.strip()
        if not entry:
            continue
        match = _ENTRY.match(entry)
        if match is None:
            issues.append(
                UnitIssue(
                    line,
                    f"unparseable Units: entry {entry!r} "
                    "(expected 'name [unit]')",
                )
            )
            continue
        name = match.group("name")
        try:
            dim = parse_unit(match.group("unit"))
        except UnitSyntaxError as exc:
            issues.append(UnitIssue(line, f"{name}: {exc}"))
            continue
        if name == "return":
            returns = dim
        elif name not in known_names:
            issues.append(
                UnitIssue(
                    line,
                    f"Units: names {name!r}, which is not a parameter "
                    "of this function",
                )
            )
        else:
            params[name] = dim
    return returns


def extract_function_units(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> FunctionUnits:
    """Collect the declared dimensions of ``func``.

    ``Annotated`` hints win over docstring entries for the same
    parameter (they are closer to the code), though in practice the
    repo uses one spelling per function.
    """
    issues: List[UnitIssue] = []
    positional = [*func.args.posonlyargs, *func.args.args]
    param_order = tuple(arg.arg for arg in positional)
    every_arg = [
        *positional,
        *func.args.kwonlyargs,
        *([func.args.vararg] if func.args.vararg else []),
        *([func.args.kwarg] if func.args.kwarg else []),
    ]
    known_names = frozenset(arg.arg for arg in every_arg)

    params: Dict[str, Dim] = {}
    returns: Optional[Dim] = None
    for line, text in _docstring_lines(func):
        match = _UNITS_LINE.match(text)
        if match is None:
            continue
        declared = _parse_units_payload(
            match.group("payload"), line, known_names, params, issues
        )
        if declared is not None:
            returns = declared

    for arg in every_arg:
        dim = _unit_from_annotated(arg.annotation, issues)
        if dim is not None:
            params[arg.arg] = dim
    annotated_return = _unit_from_annotated(func.returns, issues)
    if annotated_return is not None:
        returns = annotated_return

    return FunctionUnits(
        param_order=param_order,
        params=params,
        returns=returns,
        issues=tuple(issues),
    )
