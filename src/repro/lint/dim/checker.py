"""The safedim abstract interpreter.

One intraprocedural pass per function: the environment maps local names
to abstract dimensions (:data:`~repro.lint.dim.lattice.UNKNOWN`,
:data:`~repro.lint.dim.lattice.NUM`, or a concrete
:class:`~repro.lint.dim.lattice.Dim`), seeded from the function's
declared parameter units.  Statements are interpreted in order;
branches are interpreted on copies of the environment and merged with
the lattice join, so a name that is ``[m]`` on one path and ``[s]`` on
another degrades to unknown instead of guessing.  The pass is
deliberately *optimistic*: it only reports when **both** sides of an
operation have known, conflicting dimensions, so unannotated code stays
silent and every finding is rooted in two explicit declarations (or a
declaration plus a curated field unit).

Containers are transparent: an ``Interval`` of metres *is* ``[m]`` here
— ``iv.lo``, ``iv.width`` and ``iv.shift(dx)`` all stay in ``[m]`` —
because the safety algebra treats interval endpoints exactly like the
scalars they bound.

The statement-walking skeleton (assignment targets, branch merging,
loop widening) is shared with the shape pass through
:class:`repro.lint.interp.AbstractInterpreter`; this module holds only
the dimensional expression semantics and the checks.

Violations carry a ``kind`` that the SFL100–SFL105 rule family splits
on; the expensive analysis runs once per file and is cached across the
six rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.dim.annotations import FunctionUnits, extract_function_units
from repro.lint.dim.domain import (
    FIELD_UNITS,
    INTERVAL_METHODS,
    MATH_DIMENSIONLESS,
    MATH_SAME_DIM,
    MATH_SQRT,
    PASSTHROUGH_FUNCS,
    PHYSICAL_PARAMS,
    PRESERVING_ATTRS,
    IntervalMethod,
)
from repro.lint.dim.lattice import (
    NUM,
    UNKNOWN,
    AbstractDim,
    Dim,
    is_dim,
    join,
)
from repro.lint.dim.signatures import (
    SignatureTable,
    build_import_map,
    build_signature_table,
)
from repro.lint.interp import AbstractInterpreter, dotted_chain, iter_functions

__all__ = ["DimViolation", "analyze"]

#: Violation kinds, consumed by the SFL100–SFL105 rule family.
KIND_ADD = "add"
KIND_COMPARE = "compare"
KIND_CALL = "call"
KIND_RETURN = "return"
KIND_ANNOTATION = "annotation"
KIND_MISSING = "missing"

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: math.* module attributes that are plain numbers.
_MATH_CONSTANTS = frozenset({"inf", "nan", "pi", "e", "tau"})

#: Builtins that preserve their first argument's dimension.
_SAME_DIM_BUILTINS = frozenset({"abs", "float", "int", "round"})


@dataclass(frozen=True, slots=True)
class DimViolation:
    """One dimensional inconsistency found by the pass."""

    line: int
    column: int
    kind: str
    message: str


def _fmt(value: AbstractDim) -> str:
    """Bracketed rendering of a known dimension for messages."""
    return f"[{value}]" if is_dim(value) else "[?]"


class _FunctionInterpreter(AbstractInterpreter):
    """Abstract interpretation of one function body over dimensions."""

    def __init__(
        self,
        module: str,
        class_name: Optional[str],
        func: _FuncNode,
        units: FunctionUnits,
        table: SignatureTable,
        imports: Dict[str, str],
        violations: List[DimViolation],
    ) -> None:
        super().__init__(func)
        self.module = module
        self.class_name = class_name
        self.units = units
        self.table = table
        self.imports = imports
        self.violations = violations
        all_args = [
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        ]
        for arg in all_args:
            self.env[arg.arg] = units.params.get(arg.arg, UNKNOWN)

    # -- lattice hooks --------------------------------------------------
    def unknown(self) -> AbstractDim:
        return UNKNOWN

    def join_values(self, a: AbstractDim, b: AbstractDim) -> AbstractDim:
        return join(a, b)

    # -- reporting ------------------------------------------------------
    def _report(self, node: ast.AST, kind: str, message: str) -> None:
        self.violations.append(
            DimViolation(
                line=getattr(node, "lineno", self.func.lineno),
                column=getattr(node, "col_offset", 0),
                kind=kind,
                message=message,
            )
        )

    # -- expression evaluation -----------------------------------------
    def _eval_Constant(self, node: ast.Constant) -> AbstractDim:
        if isinstance(node.value, (int, float, complex)):
            return NUM
        return UNKNOWN

    def _eval_Attribute(self, node: ast.Attribute) -> AbstractDim:
        if node.attr in PRESERVING_ATTRS:
            return self.eval(node.value)
        if node.attr in FIELD_UNITS:
            return FIELD_UNITS[node.attr]
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_name is not None
        ):
            own = self.table.lookup(f"{self.module}.{self.class_name}")
            if own is not None and node.attr in own.params:
                return own.params[node.attr]
        if node.attr in _MATH_CONSTANTS and isinstance(
            node.value, ast.Name
        ):
            if self.imports.get(node.value.id) == "math":
                return NUM
        self.eval(node.value)
        return UNKNOWN

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AbstractDim:
        operand = self.eval(node.operand)
        if isinstance(node.op, ast.Not):
            return NUM
        return operand

    def _eval_BoolOp(self, node: ast.BoolOp) -> AbstractDim:
        result: AbstractDim = NUM
        for value in node.values:
            result = join(result, self.eval(value))
        return result

    def _eval_BinOp(self, node: ast.BinOp) -> AbstractDim:
        left = self.eval(node.left)
        right = self.eval(node.right)
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub)):
            verb = "adding" if isinstance(op, ast.Add) else "subtracting"
            return self._additive(node, left, right, verb)
        if isinstance(op, ast.Mult):
            return self._multiplicative(left, right, invert=False)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._multiplicative(left, right, invert=True)
        if isinstance(op, ast.Mod):
            # x % y is additive-like; stay quiet but propagate x.
            if left is NUM and is_dim(right):
                return right
            return left if left is not UNKNOWN else UNKNOWN
        if isinstance(op, ast.Pow):
            return self._power(left, node.right)
        return UNKNOWN

    def _additive(
        self,
        node: ast.AST,
        left: AbstractDim,
        right: AbstractDim,
        verb: str,
    ) -> AbstractDim:
        if is_dim(left) and is_dim(right):
            if left != right:
                self._report(
                    node,
                    KIND_ADD,
                    f"{verb} {_fmt(right)} to {_fmt(left)}: unlike "
                    "dimensions never belong in the same sum",
                )
                return UNKNOWN
            return left
        if is_dim(left) and right is NUM:
            return left
        if is_dim(right) and left is NUM:
            return right
        if left is NUM and right is NUM:
            return NUM
        return UNKNOWN

    @staticmethod
    def _multiplicative(
        left: AbstractDim, right: AbstractDim, *, invert: bool
    ) -> AbstractDim:
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        if left is NUM and right is NUM:
            return NUM
        left_dim = left if is_dim(left) else Dim(Fraction(0), Fraction(0))
        right_dim = right if is_dim(right) else Dim(Fraction(0), Fraction(0))
        assert isinstance(left_dim, Dim) and isinstance(right_dim, Dim)
        return left_dim / right_dim if invert else left_dim * right_dim

    def _power(
        self, base: AbstractDim, exponent_node: ast.expr
    ) -> AbstractDim:
        exponent = self.eval(exponent_node)
        if base is NUM:
            return NUM
        if not is_dim(base):
            return UNKNOWN
        if isinstance(exponent_node, ast.Constant) and isinstance(
            exponent_node.value, (int, float)
        ):
            try:
                return base ** Fraction(exponent_node.value)
            except (ValueError, OverflowError):
                return UNKNOWN
        del exponent
        return UNKNOWN

    def _eval_Compare(self, node: ast.Compare) -> AbstractDim:
        operands = [node.left, *node.comparators]
        dims = [self.eval(operand) for operand in operands]
        for index, op in enumerate(node.ops):
            left, right = dims[index], dims[index + 1]
            if not isinstance(
                op,
                (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq,
                 ast.In, ast.NotIn),
            ):
                continue
            if is_dim(left) and is_dim(right) and left != right:
                self._report(
                    node,
                    KIND_COMPARE,
                    f"comparing {_fmt(left)} with {_fmt(right)}: the "
                    "ordering of unlike dimensions is meaningless",
                )
        return NUM

    # -- calls ----------------------------------------------------------
    def _eval_Call(self, node: ast.Call) -> AbstractDim:
        arg_dims = [self.eval(arg) for arg in node.args]
        keyword_dims = {
            keyword.arg: self.eval(keyword.value)
            for keyword in node.keywords
            if keyword.arg is not None
        }
        for keyword in node.keywords:
            if keyword.arg is None:  # **kwargs: evaluated, unmapped
                self.eval(keyword.value)

        func = node.func
        if isinstance(func, ast.Name):
            return self._call_name(node, func.id, arg_dims, keyword_dims)
        if isinstance(func, ast.Attribute):
            return self._call_attribute(node, func, arg_dims, keyword_dims)
        self.eval(func)
        return UNKNOWN

    def _call_name(
        self,
        node: ast.Call,
        name: str,
        arg_dims: List[AbstractDim],
        keyword_dims: Dict[str, AbstractDim],
    ) -> AbstractDim:
        fq = self.imports.get(name)
        if fq is None and self.table.lookup(f"{self.module}.{name}"):
            fq = f"{self.module}.{name}"
        if fq is not None:
            return self._call_resolved(
                node, fq, name, arg_dims, keyword_dims, skip_self=False
            )
        if name in ("min", "max"):
            return self._check_homogeneous(node, name, arg_dims)
        if name in _SAME_DIM_BUILTINS and arg_dims:
            return arg_dims[0]
        if name == "len":
            return NUM
        return UNKNOWN

    def _call_attribute(
        self,
        node: ast.Call,
        func: ast.Attribute,
        arg_dims: List[AbstractDim],
        keyword_dims: Dict[str, AbstractDim],
    ) -> AbstractDim:
        chain = dotted_chain(func)
        if chain is not None and chain[0] in self.imports:
            fq = ".".join([self.imports[chain[0]], *chain[1:]])
            if fq.startswith("math."):
                return self._call_math(node, fq[5:], arg_dims)
            if self.table.lookup(fq) is not None:
                return self._call_resolved(
                    node, fq, chain[-1], arg_dims, keyword_dims,
                    skip_self=False,
                )
        if (
            chain is not None
            and chain[0] == "self"
            and len(chain) == 2
            and self.class_name is not None
        ):
            fq = f"{self.module}.{self.class_name}.{chain[1]}"
            if self.table.lookup(fq) is not None:
                return self._call_resolved(
                    node, fq, chain[1], arg_dims, keyword_dims,
                    skip_self=True,
                )
        method = func.attr
        if method in INTERVAL_METHODS:
            return self._call_interval(
                node, method, INTERVAL_METHODS[method], func, arg_dims
            )
        by_name = self.table.lookup_method(method)
        if by_name is not None and by_name.has_declarations:
            self.eval(func.value)
            return self._check_against_units(
                node, method, by_name, arg_dims, keyword_dims,
                skip_self=True,
            )
        self.eval(func.value)
        return UNKNOWN

    def _call_math(
        self, node: ast.Call, name: str, arg_dims: List[AbstractDim]
    ) -> AbstractDim:
        if name == MATH_SQRT and arg_dims:
            base = arg_dims[0]
            if is_dim(base):
                assert isinstance(base, Dim)
                return base ** Fraction(1, 2)
            return base
        if name in MATH_SAME_DIM and arg_dims:
            return arg_dims[0]
        if name == "hypot":
            return self._check_homogeneous(node, "math.hypot", arg_dims)
        if name == "isclose":
            self._check_homogeneous(node, "math.isclose", arg_dims)
            return NUM
        if name in MATH_DIMENSIONLESS:
            return NUM
        return UNKNOWN

    def _check_homogeneous(
        self, node: ast.Call, name: str, arg_dims: Sequence[AbstractDim]
    ) -> AbstractDim:
        """All known args must share one dimension (min/max/hypot/...)."""
        result: AbstractDim = NUM
        for dim in arg_dims:
            if is_dim(result) and is_dim(dim) and result != dim:
                self._report(
                    node,
                    KIND_COMPARE,
                    f"{name}() mixes {_fmt(result)} and {_fmt(dim)}: "
                    "ordering unlike dimensions is meaningless",
                )
                return UNKNOWN
            result = join(result, dim)
        return result

    def _call_interval(
        self,
        node: ast.Call,
        method: str,
        spec: IntervalMethod,
        func: ast.Attribute,
        arg_dims: List[AbstractDim],
    ) -> AbstractDim:
        base = self.eval(func.value)
        for index in spec.base_args:
            if index < len(arg_dims):
                argument = arg_dims[index]
                if is_dim(base) and is_dim(argument) and base != argument:
                    self._report(
                        node,
                        KIND_CALL,
                        f"Interval.{method}() on an {_fmt(base)} interval "
                        f"given an {_fmt(argument)} argument",
                    )
        if spec.result == "base":
            return base
        if spec.result == "arg0":
            return arg_dims[0] if arg_dims else UNKNOWN
        if spec.result == "num":
            return NUM
        return UNKNOWN

    def _call_resolved(
        self,
        node: ast.Call,
        fq: str,
        display: str,
        arg_dims: List[AbstractDim],
        keyword_dims: Dict[str, AbstractDim],
        *,
        skip_self: bool,
    ) -> AbstractDim:
        units = self.table.lookup(fq)
        if units is None:
            return UNKNOWN
        short = fq.rsplit(".", 1)[-1]
        if short in PASSTHROUGH_FUNCS and not units.has_declarations:
            return arg_dims[0] if arg_dims else UNKNOWN
        if short == "Interval" and len(arg_dims) >= 2:
            # The Interval constructor is dimension-polymorphic: both
            # endpoints must agree, and the result carries their dim.
            return self._check_homogeneous(node, "Interval", arg_dims[:2])
        return self._check_against_units(
            node, display, units, arg_dims, keyword_dims, skip_self=skip_self
        )

    def _check_against_units(
        self,
        node: ast.Call,
        display: str,
        units: FunctionUnits,
        arg_dims: List[AbstractDim],
        keyword_dims: Dict[str, AbstractDim],
        *,
        skip_self: bool,
    ) -> AbstractDim:
        order = units.param_order
        if skip_self and order and order[0] in ("self", "cls"):
            order = order[1:]
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)
        if not has_star:
            for index, dim in enumerate(arg_dims):
                if index >= len(order):
                    break
                self._check_argument(
                    node, display, order[index], units, dim
                )
        for name, dim in keyword_dims.items():
            self._check_argument(node, display, name, units, dim)
        return units.returns if units.returns is not None else UNKNOWN

    def _check_argument(
        self,
        node: ast.Call,
        display: str,
        name: str,
        units: FunctionUnits,
        dim: AbstractDim,
    ) -> None:
        declared = units.params.get(name)
        if declared is None or not is_dim(dim):
            return
        if dim != declared:
            self._report(
                node,
                KIND_CALL,
                f"argument '{name}' of {display}() is declared "
                f"[{declared}] but receives {_fmt(dim)}",
            )

    # -- statement checks ----------------------------------------------
    def _store_attribute(
        self, target: ast.Attribute, value: AbstractDim
    ) -> None:
        declared = FIELD_UNITS.get(target.attr)
        if declared is not None and is_dim(value) and value != declared:
            self._report(
                target,
                KIND_RETURN,
                f"assigning {_fmt(value)} to attribute "
                f"'{target.attr}', whose repo-wide dimension is "
                f"[{declared}]",
            )

    def _augmented_result(
        self,
        statement: ast.AugAssign,
        current: AbstractDim,
        value: AbstractDim,
    ) -> AbstractDim:
        op = statement.op
        if isinstance(op, (ast.Add, ast.Sub)):
            verb = "adding" if isinstance(op, ast.Add) else "subtracting"
            return self._additive(statement, current, value, verb)
        if isinstance(op, ast.Mult):
            return self._multiplicative(current, value, invert=False)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._multiplicative(current, value, invert=True)
        return UNKNOWN

    def _exec_AnnAssign(self, statement: ast.AnnAssign) -> None:
        from repro.lint.dim.annotations import _unit_from_annotated

        issues: list = []
        declared = _unit_from_annotated(statement.annotation, issues)
        for issue in issues:
            self._report(
                statement,
                KIND_ANNOTATION,
                f"bad unit annotation: {issue.message}",
            )
        value = (
            self.eval(statement.value)
            if statement.value is not None
            else UNKNOWN
        )
        if declared is not None and is_dim(value) and value != declared:
            self._report(
                statement,
                KIND_RETURN,
                f"assigned value is {_fmt(value)} but the annotation "
                f"declares [{declared}]",
            )
        if isinstance(statement.target, ast.Name):
            self.env[statement.target.id] = (
                declared if declared is not None else value
            )

    def _exec_Return(self, statement: ast.Return) -> None:
        value = self.eval(statement.value)
        declared = self.units.returns
        if declared is not None and is_dim(value) and value != declared:
            self._report(
                statement,
                KIND_RETURN,
                f"returns {_fmt(value)} but the function declares "
                f"-> [{declared}]",
            )


def _check_missing_units(
    class_name: Optional[str],
    func: _FuncNode,
    units: FunctionUnits,
    violations: List[DimViolation],
) -> None:
    if func.name.startswith("_"):
        return
    if class_name is not None and class_name.startswith("_"):
        return
    physical = [
        arg.arg
        for arg in (
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        )
        if arg.arg in PHYSICAL_PARAMS and arg.arg not in units.params
    ]
    if physical:
        violations.append(
            DimViolation(
                line=func.lineno,
                column=func.col_offset,
                kind=KIND_MISSING,
                message=(
                    "physical parameter(s) "
                    + ", ".join(repr(name) for name in physical)
                    + " carry no machine-checkable unit; add a "
                    "'Units: name [unit]' docstring line or an "
                    "Annotated hint (grammar: docs/LINTING.md)"
                ),
            )
        )


def _analyze_uncached(context, tree: ast.Module) -> Tuple[DimViolation, ...]:
    table: Optional[SignatureTable] = getattr(context, "signatures", None)
    if table is None:
        table = build_signature_table([(context.module, tree)])
    imports = build_import_map(context.module, tree)
    violations: List[DimViolation] = []
    for class_name, func in iter_functions(tree):
        dotted = (
            f"{context.module}.{class_name}.{func.name}"
            if class_name
            else f"{context.module}.{func.name}"
        )
        units = table.lookup(dotted) or extract_function_units(func)
        for issue in units.issues:
            violations.append(
                DimViolation(
                    line=issue.line,
                    column=0,
                    kind=KIND_ANNOTATION,
                    message=issue.message,
                )
            )
        _check_missing_units(class_name, func, units, violations)
        interpreter = _FunctionInterpreter(
            module=context.module,
            class_name=class_name,
            func=func,
            units=units,
            table=table,
            imports=imports,
            violations=violations,
        )
        interpreter.run()
    return tuple(violations)


#: (path, source) -> analysis result; the six SFL10x rules all consume
#: the same per-file analysis, so a tiny cache makes the family cost one
#: pass instead of six.
_CACHE: Dict[Tuple[str, str], Tuple[DimViolation, ...]] = {}
_CACHE_LIMIT = 8


def analyze(context, tree: ast.Module) -> Tuple[DimViolation, ...]:
    """Dimensional violations of one parsed file (cached per file)."""
    key = (context.path, context.source)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = _analyze_uncached(context, tree)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = result
    return result
