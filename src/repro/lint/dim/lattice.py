"""The dimension lattice of the safedim pass.

Every quantity in the paper's kinematic algebra is a product of powers
of two SI base dimensions — length (metre) and time (second) — so a
*dimension* here is a pair of rational exponents ``(length, time)``:
``[m]`` is ``(1, 0)``, ``[m/s²]`` is ``(1, -2)``, ``[1]`` is ``(0, 0)``.
Rational (not integer) exponents keep ``math.sqrt`` closed over the
lattice: the discriminant ``v² − 2·a·d`` has dimension ``m²/s²`` and its
square root is back to ``[m/s]``.

The abstract domain the checker interprets over has three kinds of
value:

* :data:`UNKNOWN` (``None``) — no information; absorbs everything.
* :data:`NUM` — a bare numeric literal.  Literals are *polymorphic*:
  ``2.0 * a`` keeps the dimension of ``a``, and ``distance > 0.0`` is
  not a mismatch.  This is what makes the pass quiet on idiomatic
  guard-and-clamp code while still catching ``speed + accel``.
* a :class:`Dim` — a known dimension.

:func:`parse_unit` implements the bracket grammar used by docstring
``Units:`` directives and ``Annotated`` hints (see
:mod:`repro.lint.dim.annotations` and docs/LINTING.md)::

    unit    := "1" | product ( "/" product )*
    product := factor ( "*" factor )*
    factor  := ("m" | "s") ( "^" signed-int )?

with ``²`` accepted as a synonym for ``^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

from repro.lint.specs import SpecSyntaxError

__all__ = [
    "Dim",
    "NUM",
    "UNKNOWN",
    "AbstractDim",
    "UnitSyntaxError",
    "parse_unit",
    "join",
    "is_dim",
]


class UnitSyntaxError(SpecSyntaxError):
    """A bracketed unit token that does not follow the grammar."""


@dataclass(frozen=True, slots=True)
class Dim:
    """A dimension: rational exponents of length and time.

    Attributes
    ----------
    length:
        Exponent of the metre.
    time:
        Exponent of the second.
    """

    length: Fraction
    time: Fraction

    def __mul__(self, other: "Dim") -> "Dim":
        return Dim(self.length + other.length, self.time + other.time)

    def __truediv__(self, other: "Dim") -> "Dim":
        return Dim(self.length - other.length, self.time - other.time)

    def __pow__(self, exponent: Fraction) -> "Dim":
        return Dim(self.length * exponent, self.time * exponent)

    @property
    def is_dimensionless(self) -> bool:
        """Whether this is the declared-dimensionless ``[1]``."""
        return self.length == 0 and self.time == 0

    def __str__(self) -> str:
        return format_dim(self)


#: The dimensionless dimension ``[1]``.
DIMENSIONLESS = Dim(Fraction(0), Fraction(0))

#: Canonical dimensions, for readable construction in tables and tests.
METRE = Dim(Fraction(1), Fraction(0))
SECOND = Dim(Fraction(0), Fraction(1))
SPEED = Dim(Fraction(1), Fraction(-1))
ACCEL = Dim(Fraction(1), Fraction(-2))


class _Num:
    """Singleton marking a polymorphic numeric literal."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NUM"


#: The polymorphic-literal abstract value (compatible with any Dim).
NUM = _Num()

#: The no-information abstract value.
UNKNOWN = None

#: What an expression may evaluate to in the abstract interpretation.
AbstractDim = Union[None, _Num, Dim]


def is_dim(value: AbstractDim) -> bool:
    """Whether ``value`` is a concrete :class:`Dim` (not NUM/UNKNOWN)."""
    return isinstance(value, Dim)


def _format_power(base: str, exponent: Fraction) -> str:
    if exponent == 1:
        return base
    if exponent.denominator == 1:
        return f"{base}^{exponent.numerator}"
    return f"{base}^{exponent.numerator}/{exponent.denominator}"


def format_dim(dim: Dim) -> str:
    """Render a dimension in the canonical bracket-grammar spelling.

    The numerator collects positive exponents, the denominator the
    negated negative ones: ``m/s^2``, ``1/s``, ``m^2/s^2``, ``1``.
    """
    numerator = []
    denominator = []
    for base, exponent in (("m", dim.length), ("s", dim.time)):
        if exponent > 0:
            numerator.append(_format_power(base, exponent))
        elif exponent < 0:
            denominator.append(_format_power(base, -exponent))
    text = "*".join(numerator) if numerator else "1"
    if denominator:
        text += "/" + "/".join(denominator)
    return text


_BASES = {"m": METRE, "s": SECOND}


def _parse_factor(token: str) -> Dim:
    token = token.strip()
    if token == "1":
        return DIMENSIONLESS
    base, caret, exponent_text = token.partition("^")
    base = base.strip()
    if base not in _BASES:
        raise UnitSyntaxError(
            f"unknown base unit {base!r} (the grammar knows 'm', 's', '1')"
        )
    if not caret:
        return _BASES[base]
    try:
        exponent = Fraction(exponent_text.strip())
    except (ValueError, ZeroDivisionError) as exc:
        raise UnitSyntaxError(
            f"bad exponent {exponent_text!r} in unit factor {token!r}"
        ) from exc
    return _BASES[base] ** exponent


def _parse_product(text: str) -> Dim:
    result = DIMENSIONLESS
    for token in text.replace("·", "*").split("*"):
        if not token.strip():
            raise UnitSyntaxError(f"empty factor in unit {text!r}")
        result = result * _parse_factor(token)
    return result


def parse_unit(text: str) -> Dim:
    """Parse a unit expression (bracket contents) into a :class:`Dim`.

    Raises
    ------
    UnitSyntaxError
        On anything outside the grammar (unknown base, empty factor,
        malformed exponent).
    """
    normalised = text.strip().replace("²", "^2").replace("³", "^3")
    if not normalised:
        raise UnitSyntaxError("empty unit")
    chunks = normalised.split("/")
    result = _parse_product(chunks[0])
    for chunk in chunks[1:]:
        result = result / _parse_product(chunk)
    return result


def join(a: AbstractDim, b: AbstractDim) -> AbstractDim:
    """Least upper bound used when control-flow paths merge.

    ``NUM`` is below every concrete dimension (a literal adapts to the
    branch that knows more); two *different* concrete dimensions join to
    :data:`UNKNOWN` — the merge point genuinely carries either.
    """
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    if isinstance(a, _Num):
        return b
    if isinstance(b, _Num):
        return a
    if a == b:  # safelint: disable=SFL001 -- Dim equality over exact Fractions, not floats
        return a
    return UNKNOWN
