"""The cross-module signature table.

The dimensional pass is *intra*procedural — it never inlines callees —
but call sites are still checked against the callee's declared units.
For that the engine builds one :class:`SignatureTable` per run, indexing
every function, method and dataclass constructor of every file being
linted by fully-qualified dotted name.  ``lint_source`` (single-string
entry point, used by tests) builds a table from just that string, so
fixtures remain self-contained.

Method calls on objects whose type the checker cannot know
(``geometry.oncoming_distance_to_back(...)``) resolve through the
*unambiguous-method-name* index: if exactly one method with that name is
declared across the whole run — or all declarations agree — the call is
checked against it; conflicting homonyms disable the check rather than
guess.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.lint.dim.annotations import (
    FunctionUnits,
    UnitIssue,
    _unit_from_annotated,
    extract_function_units,
)
from repro.lint.dim.lattice import Dim

__all__ = ["SignatureTable", "build_signature_table", "build_import_map"]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Sentinel marking a method name declared incompatibly in two classes.
_CONFLICT = object()


def _class_field_units(node: ast.ClassDef) -> FunctionUnits:
    """Constructor-like units of a class from its fields and docstring.

    Dataclasses have no ``__init__`` in the AST; their keyword interface
    is the ordered annotated fields.  Field units come from a ``Units:``
    directive in the *class* docstring (same grammar as functions) or an
    ``Annotated`` field hint.
    """
    order = []
    params: Dict[str, Dim] = {}
    issues: list = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            name = statement.target.id
            if name.isupper():
                continue  # class-level constant, not a field
            order.append(name)

    docstring = ast.get_docstring(node, clean=False) or ""
    if "Units:" in docstring:
        # Reuse the function-level parser by faking a function whose
        # parameters are the field names.
        shim = ast.parse(
            "def _shim({}):\n    pass".format(", ".join(order))
        ).body[0]
        assert isinstance(shim, ast.FunctionDef)
        shim.body.insert(
            0, ast.Expr(value=ast.Constant(value=docstring))
        )
        ast.fix_missing_locations(shim)
        extracted = extract_function_units(shim)
        params.update(extracted.params)
        base_line = node.body[0].lineno if node.body else node.lineno
        issues.extend(
            UnitIssue(base_line, issue.message) for issue in extracted.issues
        )

    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            dim = _annotated_field_unit(statement, issues)
            if dim is not None:
                params[statement.target.id] = dim

    return FunctionUnits(
        param_order=tuple(order),
        params=params,
        returns=None,
        issues=tuple(issues),
    )


def _annotated_field_unit(
    statement: ast.AnnAssign, issues: list
) -> Optional[Dim]:
    return _unit_from_annotated(statement.annotation, issues)


class SignatureTable:
    """Declared units of every function/method/class in a lint run."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionUnits] = {}
        self._by_method_name: Dict[str, object] = {}

    def add_module(self, module: str, tree: ast.Module) -> None:
        """Index one parsed module."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._functions[f"{module}.{node.name}"] = (
                    extract_function_units(node)
                )
            elif isinstance(node, ast.ClassDef):
                self._functions[f"{module}.{node.name}"] = (
                    _class_field_units(node)
                )
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        units = extract_function_units(member)
                        self._functions[
                            f"{module}.{node.name}.{member.name}"
                        ] = units
                        self._index_method(member.name, units)

    def _index_method(self, name: str, units: FunctionUnits) -> None:
        existing = self._by_method_name.get(name)
        if existing is None:
            self._by_method_name[name] = units
        elif existing is not _CONFLICT:
            assert isinstance(existing, FunctionUnits)
            same = (
                existing.params == units.params
                and existing.returns == units.returns
                and existing.param_order == units.param_order
            )
            if not same:
                self._by_method_name[name] = _CONFLICT

    def lookup(self, dotted: str) -> Optional[FunctionUnits]:
        """Units of a fully-qualified function/method/class, if indexed."""
        return self._functions.get(dotted)

    def lookup_method(self, name: str) -> Optional[FunctionUnits]:
        """Units of a method name unambiguous across the whole run."""
        found = self._by_method_name.get(name)
        if found is _CONFLICT or found is None:
            return None
        assert isinstance(found, FunctionUnits)
        return found

    def __len__(self) -> int:
        return len(self._functions)


def build_signature_table(
    modules: Iterable[Tuple[str, ast.Module]],
) -> SignatureTable:
    """Index every ``(module_name, parsed_tree)`` pair into one table."""
    table = SignatureTable()
    for module, tree in modules:
        table.add_module(module, tree)
    return table


def build_import_map(module: str, tree: ast.Module) -> Dict[str, str]:
    """Local name -> fully-qualified dotted name, from the import stmts.

    Handles plain imports (``import math`` -> ``math``; ``import a.b``
    binds ``a``), aliased imports, from-imports and relative
    from-imports (resolved against ``module``'s package).  The map is
    best-effort: a name the map misses simply resolves no call check.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module.split(".")
                if node.level <= len(parts):
                    base = ".".join(parts[: len(parts) - node.level])
                else:
                    continue
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}"
                )
    return imports
