"""A process-level shared parse cache for the lint passes.

Within one :func:`~repro.lint.engine.lint_paths` call every pass
(safelint, safedim, safeshape, safeflow) already shares a single parse
per file; what used to re-parse the tree was *repeated invocations in
the same process* — each gate test in a test run, every iteration of a
lint benchmark, and each gate of the CLI's ``--gates`` mode.  This
cache keys on ``(device, inode, mtime_ns, size)`` so a file re-read
between edits is re-parsed exactly when its bytes could have changed,
and hands back the same source text and tree object otherwise.

Sharing tree objects across runs is sound because every rule is a
read-only :class:`ast.NodeVisitor` — nothing in the lint stack mutates
a tree.  ``make bench-record`` captures the cold-vs-warm speedup in
``BENCH_lint.json``.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

__all__ = ["cache_info", "clear_cache", "read_and_parse"]

#: path -> (stat fingerprint, source, tree or None when unparseable).
_CACHE: Dict[
    str, Tuple[Tuple[int, int, int, int], str, Optional[ast.Module]]
] = {}
#: Generous bound — the whole src tree is ~couple hundred files; the
#: cap only guards against linting something unboundedly larger.
_LIMIT = 2048

_HITS = 0
_MISSES = 0


def _fingerprint(stat: os.stat_result) -> Tuple[int, int, int, int]:
    return (stat.st_dev, stat.st_ino, stat.st_mtime_ns, stat.st_size)


def read_and_parse(path: Path) -> Tuple[str, Optional[ast.Module]]:
    """``(source, tree)`` of a file; ``tree`` is None when unparseable.

    Raises :class:`OSError` for unreadable files, exactly like the
    uncached ``read_text`` path did.
    """
    global _HITS, _MISSES
    key = str(path)
    fingerprint = _fingerprint(os.stat(path))
    cached = _CACHE.get(key)
    if cached is not None and cached[0] == fingerprint:
        _HITS += 1
        return cached[1], cached[2]
    _MISSES += 1
    source = path.read_text(encoding="utf-8")
    try:
        tree: Optional[ast.Module] = ast.parse(source, filename=key)
    except SyntaxError:
        tree = None
    if len(_CACHE) >= _LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = (fingerprint, source, tree)
    return source, tree


def clear_cache() -> None:
    """Drop every cached parse (tests and benchmarks use this)."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0


def cache_info() -> Dict[str, int]:
    """Hit/miss/size counters for benchmarks and diagnostics."""
    return {"hits": _HITS, "misses": _MISSES, "size": len(_CACHE)}
