"""SFL003 — no bare/broad ``except`` in safety-critical packages.

The exception hierarchy (:mod:`repro.errors`) exists so that callers
can catch *library* failures precisely; a ``except Exception:`` in the
monitor, filter or engine would also swallow the programming errors
(shape mismatches, ``TypeError``) that falsify the safety theorem —
turning "the monitor crashed" into "the monitor silently approved".
Catch the narrowest ``ReproError`` subclass (or the concrete stdlib
error) instead.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["BroadExceptRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name) and node.id in _BROAD:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in _BROAD:
        return node.attr
    return None


@register
class BroadExceptRule(Rule):
    """Flag ``except:``, ``except Exception:`` and friends."""

    rule_id = "SFL003"
    name = "broad-except-in-critical-code"
    rationale = (
        "In the monitor/filter/engine, a broad except converts a "
        "crashed safety check into a silently-approved one. Catch the "
        "narrowest ReproError subclass so programming errors still "
        "surface."
    )
    scope = "critical"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Check one except clause."""
        if node.type is None:
            self.report(
                node,
                "bare 'except:' in a safety-critical package; catch a "
                "specific exception type",
            )
        else:
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for item in types:
                name = _broad_name(item)
                if name is not None:
                    self.report(
                        node,
                        f"'except {name}' in a safety-critical package; "
                        "catch the narrowest ReproError subclass instead",
                    )
                    break
        self.generic_visit(node)
