"""SFL009 — no ``eval``/``exec`` and no pickle in the library.

Model and result serialization in this repo is deliberately plain JSON
(:mod:`repro.nn.serialization`, :mod:`repro.sim.serialization`): a
stored certificate must be inspectable and loadable without executing
anything.  ``eval``/``exec`` and ``pickle.load`` reintroduce arbitrary
code execution at load time — a supply-chain hole in a safety artifact
— and also defeat static analysis (this tool included).  The
``multiprocessing`` module pickling its *own* task tuples internally is
fine; importing ``pickle`` directly in library code is not.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["NoDynamicCodeRule"]


@register
class NoDynamicCodeRule(Rule):
    """Flag ``eval``/``exec`` calls and direct ``pickle`` imports."""

    rule_id = "SFL009"
    name = "no-dynamic-code"
    rationale = (
        "Stored models and certificates are plain JSON by design; "
        "eval/exec/pickle make loading a safety artifact execute "
        "arbitrary code and blind every static check."
    )
    scope = "all"

    def visit_Call(self, node: ast.Call) -> None:
        """Check one call expression."""
        if isinstance(node.func, ast.Name) and node.func.id in (
            "eval",
            "exec",
        ):
            self.report(
                node,
                f"{node.func.id}() executes dynamic code; safety "
                "artifacts must stay declarative (JSON)",
            )
        self.generic_visit(node)

    def _flag_pickle(self, node: ast.AST, module: str) -> None:
        self.report(
            node,
            f"direct {module} import; persist via the JSON "
            "serialization modules instead (pickle executes code at "
            "load time)",
            severity=Severity.WARNING,
        )

    def visit_Import(self, node: ast.Import) -> None:
        """Check an import statement."""
        for alias in node.names:
            if alias.name.split(".")[0] in ("pickle", "cPickle", "dill"):
                self._flag_pickle(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Check a from-import statement."""
        root = (node.module or "").split(".")[0]
        if root in ("pickle", "cPickle", "dill"):
            self._flag_pickle(node, root)
        self.generic_visit(node)
