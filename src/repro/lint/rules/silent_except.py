"""SFL010 — no silently-swallowed exceptions.

An ``except ...: pass`` discards the only evidence that something went
wrong.  In ordinary code that is bad hygiene; in a codebase whose
output is a *safety certificate* it is data loss — a dropped
serialization error or a swallowed filter reset turns into a quietly
wrong experiment table.  Handle the error (map it into the
:mod:`repro.errors` hierarchy, record it on the result object) or let
it propagate.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["SilentExceptRule"]


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


@register
class SilentExceptRule(Rule):
    """Flag handlers whose entire body is ``pass``/``...``."""

    rule_id = "SFL010"
    name = "silent-exception-swallow"
    rationale = (
        "A swallowed exception deletes the evidence of failure; in a "
        "pipeline that emits safety certificates that means quietly "
        "wrong numbers. Map the error into repro.errors or let it "
        "propagate."
    )
    scope = "all"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        """Check one except clause."""
        if all(_is_noop(stmt) for stmt in node.body):
            self.report(
                node,
                "exception handler swallows the error (body is only "
                "pass/...); handle it or let it propagate",
            )
        self.generic_visit(node)
