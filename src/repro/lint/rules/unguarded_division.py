"""SFL006 — unguarded division by a local variable in window math.

The passing-time and slack algebra divides by velocities, decelerations
and time budgets that can legitimately reach zero (a stopped vehicle, a
zero acceleration cap).  An unguarded ``d / v`` returns ``inf``/``nan``
that then flows through interval intersection and the monitor's
comparisons — and ``nan`` comparisons are all-False, which *reads* as
"no conflict window" and waves the ego through.  The codebase's idiom
is to guard first (``if v <= 0.0: return NEVER``), validate at the
boundary (``check_positive``), or floor the divisor
(``max(time_budget, 1e-6)``).

The analysis is a deliberately simple, function-local linear scan (no
dominance analysis): a *bare local name* used as a divisor must first
appear in a conditional/assert test, be passed through a ``check_*``
validator, be assigned from ``max``/``min`` with a nonzero literal
floor, or be derived from already-guarded/attribute-only expressions.
Attributes (``limits.a_min``) and call results are exempt: constructor
validation owns their invariants.  The scan over-approximates guards
(any earlier test counts, branch structure is ignored) — it exists to
catch the *absent* guard, not to prove the present one correct.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lint.registry import register
from repro.lint.rules.base import Rule, bare_names

__all__ = ["UnguardedDivisionRule"]


def _nonzero_literal_arg(call: ast.Call) -> bool:
    for arg in call.args:
        node = arg
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and node.value != 0
        ):
            return True
    return False


def _is_guarding_call(call: ast.Call) -> bool:
    """``check_*`` validators and nonzero-floored ``max``/``min``/``abs``."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name is None:
        return False
    if name.startswith("check_"):
        return True
    if name in ("max", "min") and _nonzero_literal_arg(call):
        return True
    return False


@register
class UnguardedDivisionRule(Rule):
    """Flag ``x / name`` where no guard on ``name`` precedes it."""

    rule_id = "SFL006"
    name = "unguarded-division"
    rationale = (
        "nan/inf from a zero divisor flows through interval algebra "
        "into monitor comparisons, where nan reads as 'no conflict'. "
        "Guard the divisor, validate it at the boundary, or floor it."
    )
    scope = "math"

    def _handle_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """Linearly scan one function body for unguarded divisions."""
        self._scan_body(node.body, set())
        # Nested defs are scanned from within _scan_body with the
        # enclosing guard set, so no generic_visit here.

    visit_FunctionDef = _handle_function
    visit_AsyncFunctionDef = _handle_function

    # ------------------------------------------------------------------
    # Linear, order-preserving scan
    # ------------------------------------------------------------------
    def _scan_body(self, body: Iterable[ast.stmt], guarded: Set[str]) -> None:
        for stmt in body:
            self._scan_stmt(stmt, guarded)

    def _scan_stmt(self, stmt: ast.stmt, guarded: Set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scan_body(stmt.body, set(guarded))
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_body(stmt.body, set(guarded))
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._check_expr(stmt.test, guarded)
            guarded.update(n.id for n in bare_names(stmt.test))
            self._scan_body(stmt.body, guarded)
            self._scan_body(stmt.orelse, guarded)
            return
        if isinstance(stmt, ast.Assert):
            self._check_expr(stmt.test, guarded)
            guarded.update(n.id for n in bare_names(stmt.test))
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._scan_assign(stmt, guarded)
            return
        if isinstance(stmt, ast.Expr):
            self._check_expr(stmt.value, guarded)
            if isinstance(stmt.value, ast.Call) and _is_guarding_call(
                stmt.value
            ):
                guarded.update(
                    n.id
                    for arg in stmt.value.args
                    for n in bare_names(arg)
                )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._check_expr(stmt.iter, guarded)
            self._scan_body(stmt.body, guarded)
            self._scan_body(stmt.orelse, guarded)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._check_expr(item.context_expr, guarded)
            self._scan_body(stmt.body, guarded)
            return
        if isinstance(stmt, ast.Try):
            self._scan_body(stmt.body, guarded)
            for handler in stmt.handlers:
                self._scan_body(handler.body, guarded)
            self._scan_body(stmt.orelse, guarded)
            self._scan_body(stmt.finalbody, guarded)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._check_expr(stmt.value, guarded)
            return
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._check_expr(stmt.exc, guarded)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._check_expr(child, guarded)

    def _scan_assign(self, stmt: ast.stmt, guarded: Set[str]) -> None:
        value = getattr(stmt, "value", None)
        if value is None:
            return
        self._check_expr(value, guarded)
        if isinstance(value, ast.Call) and _is_guarding_call(value):
            # `self._dt = check_positive(dt, "dt")` validates `dt` too.
            guarded.update(
                n.id for arg in value.args for n in bare_names(arg)
            )
        targets: List[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]
        target_names = [
            t.id for t in targets if isinstance(t, ast.Name)
        ]
        if not target_names:
            return
        value_guarded = self._value_is_guarded(value, guarded)
        for name in target_names:
            if value_guarded:
                guarded.add(name)
            else:
                guarded.discard(name)

    def _value_is_guarded(self, value: ast.expr, guarded: Set[str]) -> bool:
        if isinstance(value, ast.Call) and _is_guarding_call(value):
            return True
        names = [n.id for n in bare_names(value)]
        # Attribute-only / literal-only expressions inherit constructor
        # invariants; expressions over guarded names stay guarded.
        return all(name in guarded for name in names)

    # ------------------------------------------------------------------
    # Division checks inside one expression
    # ------------------------------------------------------------------
    def _check_expr(self, expr: ast.expr, guarded: Set[str]) -> None:
        if isinstance(expr, ast.IfExp):
            self._check_expr(expr.test, guarded)
            branch_guarded = set(guarded)
            branch_guarded.update(n.id for n in bare_names(expr.test))
            self._check_expr(expr.body, branch_guarded)
            self._check_expr(expr.orelse, branch_guarded)
            return
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Div, ast.FloorDiv, ast.Mod)
        ):
            self._check_expr(expr.left, guarded)
            self._check_divisor(expr, expr.right, guarded)
            self._check_expr(expr.right, guarded)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._check_expr(child, guarded)

    def _check_divisor(
        self, division: ast.BinOp, divisor: ast.expr, guarded: Set[str]
    ) -> None:
        for name in bare_names(divisor):
            if name.id not in guarded:
                self.report(
                    division,
                    f"division by {name.id!r} with no preceding guard, "
                    "validator, or nonzero floor; nan/inf here corrupts "
                    "the window algebra",
                )
                return
