"""SFL007 — planner ``plan()`` outputs must be clamped before return.

The safety theorem treats the planner output as an acceleration in
``[a_min, a_max]``; the vehicle model would physically clip it anyway,
but the *monitor's one-step reachability margin* is computed from the
commanded value, so an out-of-range command desynchronises "what the
monitor certified" from "what the plant does".  The codebase's idiom is
that every ``plan()``/``plan_from_window()`` return site is one of:

* a call through ``limits.clip_acceleration(...)`` or
  :func:`repro.planners.base.clipped`;
* a limit attribute itself (``limits.a_min`` / ``limits.a_max``);
* a numeric literal (``0.0`` — hold);
* delegation to a method reached through ``self`` (the delegate's own
  return sites are then subject to this rule where applicable);
* a conditional expression whose branches are each of the above.

Anything else — raw arithmetic, a bare variable — is flagged.
Deliberately unclamped planners (adversarial fixtures) carry an inline
``# safelint: disable=SFL007`` with a justification.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.rules.base import Rule, function_returns

__all__ = ["PlanClampRule"]

_PLAN_METHODS = frozenset({"plan", "plan_from_window"})
_CLAMP_CALLS = frozenset({"clip_acceleration", "clip"})
_CLAMP_FUNCS = frozenset({"clipped"})
_LIMIT_ATTRS = frozenset({"a_min", "a_max"})


def _rooted_at_self(node: ast.expr) -> bool:
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _is_bounded(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.operand, ast.Constant
    ):
        return True
    if isinstance(node, ast.Attribute) and node.attr in _LIMIT_ATTRS:
        return True
    if isinstance(node, ast.IfExp):
        return _is_bounded(node.body) and _is_bounded(node.orelse)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _CLAMP_FUNCS:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _CLAMP_CALLS:
                return True
            if func.attr in _PLAN_METHODS:
                return True
            if _rooted_at_self(func):
                return True
    return False


@register
class PlanClampRule(Rule):
    """Flag unclamped return sites in planner ``plan()`` methods."""

    rule_id = "SFL007"
    name = "unclamped-plan-output"
    rationale = (
        "The monitor's one-step margin is computed from the commanded "
        "acceleration; returning a value outside [a_min, a_max] "
        "desynchronises the certificate from the plant. Route every "
        "return through clip_acceleration()/clipped() or a limit "
        "attribute."
    )
    scope = "planner"

    def __init__(self, context) -> None:
        super().__init__(context)
        self._class_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Track class nesting while visiting the body."""
        self._class_depth += 1
        self.generic_visit(node)
        self._class_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check a function definition."""
        if self._class_depth > 0 and node.name in _PLAN_METHODS:
            for ret in function_returns(node):
                if ret.value is None:
                    self.report(
                        ret,
                        f"{node.name}() returns None; planners must "
                        "return a clamped acceleration",
                    )
                elif not _is_bounded(ret.value):
                    self.report(
                        ret,
                        f"{node.name}() return value is not visibly "
                        "clamped; route it through "
                        "limits.clip_acceleration() or clipped()",
                    )
        self.generic_visit(node)
