"""SFL011 — observation values must never flow into control arguments.

The observability layer (:mod:`repro.obs`) is *write-only* from the
system's point of view: instrumented code calls
``begin``/``end``/``instant``/``sample``/``count``/``gauge``/``observe``
and is never supposed to read anything back.  The load-bearing contract
(traced runs are bit-identical to untraced runs) dies silently the
moment a timing value or a metric snapshot feeds a planner, filter,
channel, or dynamics call — the run still *completes*, it is just no
longer the run the certificate was computed for.

This rule performs a per-function taint pass:

* **sources** — wall-clock reads (``perf_now()``, ``wall_now()``,
  ``time.perf_counter()``, ``time.monotonic()``) and *read*-API
  attribute chains on observer-ish names (``obs``, ``observer``,
  ``tracer``, ``metrics`` and their underscore forms) such as
  ``self._obs.metrics.snapshot()`` or ``tracer.events``;
* **propagation** — assignments whose right-hand side mentions a
  tainted name (through arithmetic, subscripts, attribute access, or
  calls on tainted values), iterated to a fixpoint;
* **sinks** — calls to control-path methods (``plan``, ``step``,
  ``evaluate``, ``update``, ``predict``, ``extrapolate``, ``estimate``,
  ``estimate_at``, ``measure``, ``send``, ``on_message``,
  ``on_sensor_reading``, ``apply_sensor``, ``transform``) and the
  ``clipped`` sanitiser; a tainted argument to any of them is flagged.

The *write* API (``begin``/``end``/``span``/``instant``/``sample``/
``count``/``gauge``/``observe``/``enabled``) is deliberately not a
source — branching on ``observer.enabled`` and handing span handles
back to ``end()`` is the sanctioned idiom.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["ObsFlowRule"]

#: Wall-clock reader calls whose results are observation values.
_CLOCK_FUNCS = frozenset(
    {"perf_now", "wall_now", "perf_counter", "monotonic"}
)

#: Names that conventionally hold an observer/tracer/metrics object.
_OBS_ROOTS = frozenset(
    {
        "obs",
        "observer",
        "tracer",
        "metrics",
        "_obs",
        "_observer",
        "_tracer",
        "_metrics",
    }
)

#: Read-API members of the observability objects; touching one of these
#: through an observer-ish root yields an observation value.
_READ_API = frozenset(
    {
        "snapshot",
        "events",
        "events_named",
        "counters",
        "gauges",
        "histograms",
        "counter_value",
        "counter_series",
        "gauge_value",
        "elapsed",
        "epoch",
        "metrics",
        "tracer",
    }
)

#: Control-path methods: a tainted argument here breaks bit-identity.
_SINK_METHODS = frozenset(
    {
        "plan",
        "step",
        "evaluate",
        "update",
        "predict",
        "extrapolate",
        "estimate",
        "estimate_at",
        "measure",
        "send",
        "on_message",
        "on_sensor_reading",
        "apply_sensor",
        "transform",
    }
)

#: Bare-name sinks (module-level sanitisers on the control path).
_SINK_FUNCS = frozenset({"clipped"})


def _attribute_root(node: ast.expr) -> ast.expr:
    """Innermost value of an attribute/call chain (``a`` of ``a.b.c()``)."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            return node


def _is_obs_rooted(node: ast.expr) -> bool:
    """Whether an expression hangs off an observer-ish name.

    Covers both bare roots (``obs.metrics``) and instance attributes
    (``self._obs.metrics``): any observer-ish name along the chain
    qualifies.
    """
    root = _attribute_root(node)
    if isinstance(root, ast.Name) and root.id in _OBS_ROOTS:
        return True
    return bool(_chain_attrs(node) & _OBS_ROOTS)


def _chain_attrs(node: ast.expr) -> Set[str]:
    """Every attribute name appearing along a chain expression."""
    attrs: Set[str] = set()
    while True:
        if isinstance(node, ast.Attribute):
            attrs.add(node.attr)
            node = node.value
        elif isinstance(node, (ast.Call, ast.Subscript)):
            node = node.func if isinstance(node, ast.Call) else node.value
        else:
            return attrs


def _is_source(node: ast.expr, tainted: Set[str]) -> bool:
    """Whether an expression produces or carries an observation value."""
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _CLOCK_FUNCS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _CLOCK_FUNCS
        ):
            return True
        if _is_obs_rooted(func) and _chain_attrs(func) & _READ_API:
            return True
        # A call on a tainted value stays tainted (e.g. t.total_seconds()).
        if any(
            _is_source(child, tainted)
            for child in ast.walk(node)
            if isinstance(child, ast.Name)
        ):
            return True
        return False
    if isinstance(node, ast.Attribute):
        if _is_obs_rooted(node) and _chain_attrs(node) & _READ_API:
            return True
        return _is_source(_attribute_root(node), tainted)
    if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.Subscript, ast.IfExp)):
        return any(
            isinstance(child, ast.Name) and child.id in tainted
            for child in ast.walk(node)
        ) or any(
            _is_source(child, tainted)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, (ast.Call, ast.Attribute))
        )
    return False


def _assignment_targets(node: ast.stmt) -> Set[str]:
    names: Set[str] = set()
    targets: list = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        for child in ast.walk(target):
            if isinstance(child, ast.Name):
                names.add(child.id)
    return names


@register
class ObsFlowRule(Rule):
    """Flag dataflow from observation values into control-path calls."""

    rule_id = "SFL011"
    name = "observation-feeds-control"
    rationale = (
        "The observability layer is write-only; the bit-identity "
        "contract (traced == untraced SimulationResult) breaks the "
        "moment a timing value or metric snapshot reaches a planner, "
        "filter, channel, or dynamics argument — silently, since the "
        "run still completes."
    )
    scope = "critical"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Taint-check one function body."""
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Taint-check one async function body."""
        self._check_function(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    def _check_function(self, node: ast.AST) -> None:
        tainted: Set[str] = set()
        # Fixpoint over assignments: two passes suffice for the straight
        # -line chains this rule targets (value -> alias -> sink arg).
        for _ in range(2):
            before = len(tainted)
            for stmt in ast.walk(node):
                if isinstance(
                    stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)
                ):
                    value = stmt.value
                    if value is not None and _is_source(value, tainted):
                        tainted |= _assignment_targets(stmt)
            if len(tainted) == before:
                break
        for call in ast.walk(node):
            if isinstance(call, ast.Call) and self._is_sink(call):
                for arg in list(call.args) + [
                    kw.value for kw in call.keywords
                ]:
                    if _is_source(arg, tainted):
                        self.report(
                            call,
                            "observation value flows into a control-path "
                            f"call ({self._sink_name(call)}); the "
                            "observability layer is write-only — traced "
                            "runs must stay bit-identical to untraced "
                            "runs",
                        )
                        break

    @staticmethod
    def _is_sink(call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr in _SINK_METHODS
        if isinstance(func, ast.Name):
            return func.id in _SINK_FUNCS
        return False

    @staticmethod
    def _sink_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return "?"
