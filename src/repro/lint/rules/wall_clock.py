"""SFL004 — no wall-clock reads inside the deterministic sim core.

All time inside :mod:`repro.sim` and :mod:`repro.core` is *simulated*
time: integer control steps mapped through
:class:`repro.sim.clock.MultiRateClock`.  A ``time.time()`` (or
``datetime.now()``) read makes a run depend on the host machine's load
and start instant, so certificates stop reproducing and replayed
message logs (:mod:`repro.filtering.replay`) no longer match the run
that produced them.  Benchmarks that need wall time live outside these
packages (``benchmarks/`` uses pytest-benchmark's own timers).

One module is exempt: :mod:`repro.obs.trace`, the observability
subsystem's single sanctioned wall-clock reader.  Profiling *is*
wall-clock measurement by definition; confining the reads to one
write-only tracer module (everything else obtains timestamps through
its ``perf_now``/``wall_now`` wrappers) keeps the exemption auditable,
and SFL011 separately guarantees that no observed value flows back into
planner/filter/dynamics arguments.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["WallClockRule"]

_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: The observability tracer is the repo's one sanctioned wall-clock
#: reader (see the module docstring); every other in-scope module goes
#: through its ``perf_now``/``wall_now`` wrappers.
EXEMPT_MODULES = frozenset({"repro.obs.trace"})


@register
class WallClockRule(Rule):
    """Flag wall-clock reads in the simulation/monitor core."""

    rule_id = "SFL004"
    name = "wall-clock-in-sim-core"
    rationale = (
        "Simulated time is integer step arithmetic via MultiRateClock; "
        "a wall-clock read makes runs machine-dependent, so safety "
        "certificates and message-replay logs stop reproducing."
    )
    scope = "sim"

    def visit_Call(self, node: ast.Call) -> None:
        """Check one call expression."""
        if self.context.module in EXEMPT_MODULES:
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            root = func.value
            if isinstance(root, ast.Name):
                if root.id == "time" and func.attr in _TIME_FUNCS:
                    self.report(
                        node,
                        f"wall-clock read time.{func.attr}() in the sim "
                        "core; derive time from the step index via "
                        "sim.clock",
                    )
                elif (
                    root.id in ("datetime", "date")
                    and func.attr in _DATETIME_FUNCS
                ):
                    self.report(
                        node,
                        f"wall-clock read {root.id}.{func.attr}() in the "
                        "sim core; simulated time must come from "
                        "sim.clock",
                    )
            elif (
                isinstance(root, ast.Attribute)
                and root.attr in ("datetime", "date")
                and func.attr in _DATETIME_FUNCS
            ):
                self.report(
                    node,
                    f"wall-clock read {root.attr}.{func.attr}() in the "
                    "sim core; simulated time must come from sim.clock",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Check a from-import statement."""
        if self.context.module in EXEMPT_MODULES:
            return
        if node.module == "time":
            imported = sorted(
                alias.name
                for alias in node.names
                if alias.name in _TIME_FUNCS
            )
            if imported:
                self.report(
                    node,
                    "importing wall-clock functions "
                    f"({', '.join(imported)}) into the sim core",
                )
        self.generic_visit(node)
