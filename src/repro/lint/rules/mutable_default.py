"""SFL002 — no mutable default arguments.

A shared default ``[]``/``{}`` is cross-simulation hidden state: two
batch runs sharing a planner instance would also share (and corrupt)
the default, destroying the reproducibility that every certification
claim in this repo rests on.  Use ``None`` plus an in-body default, or
``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast
from typing import Union

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    """Flag list/dict/set literals (or constructors) used as defaults."""

    rule_id = "SFL002"
    name = "mutable-default-argument"
    rationale = (
        "A mutable default is shared across every call and every "
        "simulation in a batch — hidden mutable state that breaks "
        "run-to-run reproducibility. Default to None (or a "
        "default_factory) and build the value in the body."
    )
    scope = "all"

    def _check(self, node: _FunctionNode) -> None:
        args = node.args
        defaults = [*args.defaults, *(d for d in args.kw_defaults if d)]
        for default in defaults:
            if _is_mutable(default):
                self.report(
                    default,
                    "mutable default argument; use None and construct "
                    "the value inside the function",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check a function definition."""
        self._check(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check an async function definition."""
        self._check(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        """Check a lambda's default arguments."""
        self._check(node)
