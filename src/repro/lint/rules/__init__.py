"""The safelint rule catalogue.

Importing this package registers every rule (each module decorates its
class with :func:`repro.lint.registry.register`).  To add a rule: write
a module with a :class:`repro.lint.rules.base.Rule` subclass, decorate
it, and import it below — engine, CLI and docs pick it up from the
registry.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401  (import-for-registration)
    broad_except,
    dim_rules,
    float_equality,
    flow_rules,
    global_rng,
    mutable_default,
    no_dynamic_code,
    obs_flow,
    plan_clamp,
    shape_rules,
    silent_except,
    units_docstring,
    unguarded_division,
    unseeded_rng,
    wall_clock,
)
from repro.lint.rules.base import FileContext, Rule

__all__ = ["FileContext", "Rule"]
