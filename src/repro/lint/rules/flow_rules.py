"""SFL300–SFL306: the safeflow purity/effect & vectorization family.

The heavy lifting happens in :mod:`repro.lint.flow.checker`, which runs
one analysis per file against the engine's program-wide effect table
(cached, so the seven rules cost a single pass) and tags each violation
with a *kind*; each rule here surfaces one kind under its own id so
suppressions, ``--select`` and the baseline can address them separately.

Severity split: the loop-shape rules (SFL300/302/304) are WARNINGs —
they flag code that is *slower* than it should be on the road to the
vectorized batch engine; the state rules (SFL301/303/305/306) are
ERRORs — hidden global mutation, unordered sources in results, or a
lying/missing ``Effects:`` declaration breaks the determinism and
batching contracts outright.  Both severities fail the gate; the split
is for human triage.
"""

from __future__ import annotations

import ast
from typing import ClassVar, List

from repro.lint.findings import Finding, Severity
from repro.lint.flow.checker import (
    KIND_ACCUMULATE,
    KIND_CONTRADICTION,
    KIND_GLOBAL,
    KIND_HOIST,
    KIND_NONDET,
    KIND_RNG,
    KIND_VECTORIZE,
    analyze,
)
from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = [
    "FlowPerElementRule",
    "FlowGlobalMutationRule",
    "FlowAccumulateRule",
    "FlowNondeterminismRule",
    "FlowHoistRule",
    "FlowContradictionRule",
    "FlowRngUndeclaredRule",
]


class _FlowRule(Rule):
    """Shared plumbing: surface one violation kind as findings."""

    kind: ClassVar[str] = ""
    scope: ClassVar[str] = "flow"

    def check(self, tree: ast.AST) -> List[Finding]:
        assert isinstance(tree, ast.Module)
        for violation in analyze(self.context, tree):
            if violation.kind != self.kind:
                continue
            self.findings.append(
                Finding(
                    path=self.context.path,
                    line=violation.line,
                    column=violation.column,
                    rule_id=self.rule_id,
                    message=violation.message,
                    severity=self.severity,
                    source_line=self.context.line_text(violation.line),
                )
            )
        return self.findings


@register
class FlowPerElementRule(_FlowRule):
    """SFL300: a numpy op dispatched once per Python loop iteration."""

    rule_id = "SFL300"
    name = "numpy-per-element"
    rationale = (
        "Calling a numpy function on one element per loop iteration "
        "pays the full dispatch overhead N times for work one batched "
        "call does in a single kernel; these loops are exactly what "
        "the vectorized engine replaces."
    )
    severity = Severity.WARNING
    kind = KIND_VECTORIZE


@register
class FlowGlobalMutationRule(_FlowRule):
    """SFL301: episode-reachable mutation of module-global state."""

    rule_id = "SFL301"
    name = "episode-mutates-global"
    rationale = (
        "A function reachable from run_episode that writes a module "
        "global or closure cell makes batched episodes observe each "
        "other; every batch lane must own its state."
    )
    severity = Severity.ERROR
    kind = KIND_GLOBAL


@register
class FlowAccumulateRule(_FlowRule):
    """SFL302: append-per-iteration then ``np.array`` materialization."""

    rule_id = "SFL302"
    name = "append-then-array"
    rationale = (
        "Growing a Python list one element at a time and converting it "
        "with np.array re-boxes every element; preallocating (or one "
        "vectorized expression) is both faster and batch-ready."
    )
    severity = Severity.WARNING
    kind = KIND_ACCUMULATE


@register
class FlowNondeterminismRule(_FlowRule):
    """SFL303: an unordered or environmental source feeds a return."""

    rule_id = "SFL303"
    name = "nondeterministic-return"
    rationale = (
        "Set iteration order, wall-clock reads and os.environ are not "
        "functions of (config, seed); a result derived from them "
        "breaks bit-identical replay and cross-machine agreement."
    )
    severity = Severity.ERROR
    kind = KIND_NONDET


@register
class FlowHoistRule(_FlowRule):
    """SFL304: a loop-invariant pure call evaluated every iteration."""

    rule_id = "SFL304"
    name = "hoistable-pure-call"
    rationale = (
        "A call whose target is provably pure and whose arguments do "
        "not change inside the loop computes the same value every "
        "iteration; hoist it once above the loop."
    )
    severity = Severity.WARNING
    kind = KIND_HOIST


@register
class FlowContradictionRule(_FlowRule):
    """SFL305: a declared ``Effects:`` spec the inference contradicts."""

    rule_id = "SFL305"
    name = "effects-contradiction"
    rationale = (
        "A declared effect set is an assume-guarantee boundary that "
        "callers trust instead of re-deriving; a declaration the "
        "inference exceeds (directly or through a callee) is a hole "
        "in every proof built on it."
    )
    severity = Severity.ERROR
    kind = KIND_CONTRADICTION


@register
class FlowRngUndeclaredRule(_FlowRule):
    """SFL306: an RNG stream threaded through an undeclared function."""

    rule_id = "SFL306"
    name = "rng-undeclared"
    rationale = (
        "The batch engine must thread a batched stream through every "
        "function an RNG flows through; a function that takes a "
        "stream without declaring 'Effects: draws-rng' hides a "
        "resequencing point from that migration."
    )
    severity = Severity.ERROR
    kind = KIND_RNG
