"""SFL008 — public physical-quantity APIs must document their units.

Every quantitative bug class in this domain has a unit-confusion
variant (a ``dt`` in milliseconds, a braking rate with the wrong sign
convention), and the paper's equations mix seconds, metres and m/s²
freely.  The repo convention is SI everywhere, but a *public*
module-level function that accepts a distance, velocity, acceleration
or time must say so in its docstring — that is what readers and the
API docs see, and it is the only machine-checkable trace of the
convention.

The check is a heuristic (hence ``warning`` severity): a public
module-level function with at least one physically-named parameter
must mention a unit token (``m/s``, ``m/s²``, ``metres``/``meters``,
``seconds`` or the documented speed-term convention) somewhere in its
docstring.
"""

from __future__ import annotations

import ast
import re

from repro.lint.findings import Severity
from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["UnitsDocstringRule"]

#: Parameter names that denote physical quantities.
_PHYSICAL = frozenset(
    {
        "distance",
        "velocity",
        "speed",
        "position",
        "acceleration",
        "accel",
        "dt",
        "dt_c",
        "dt_m",
        "dt_s",
        "gap",
        "headway",
        "time",
        "duration",
        "elapsed",
        "horizon",
        "stamp",
        "now",
        "v_cap",
        "v_floor",
        "a_cap",
        "a_floor",
        "v_min",
        "v_max",
        "a_min",
        "a_max",
        "v_buf",
        "a_buf",
    }
)

_UNIT_TOKEN = re.compile(
    r"m/s\^?2|m/s²|m/s\b|\bmetres?\b|\bmeters?\b|\bseconds?\b|\bm\b"
)


@register
class UnitsDocstringRule(Rule):
    """Flag public module-level functions with unit-less docstrings."""

    rule_id = "SFL008"
    name = "undocumented-units"
    rationale = (
        "The paper's equations mix seconds, metres and m/s²; unit "
        "confusion at a public API boundary is a silent factor-of-1000 "
        "bug. State the units in the docstring of every function "
        "taking physical quantities."
    )
    severity = Severity.WARNING
    scope = "units"

    def __init__(self, context) -> None:
        super().__init__(context)
        self._depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Track class nesting while visiting the body."""
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Check an async function definition."""
        self.visit_FunctionDef(node)  # same check, same nesting bookkeeping

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Check a function definition."""
        if self._depth == 0 and not node.name.startswith("_"):
            params = {
                arg.arg
                for arg in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                )
            }
            physical = sorted(params & _PHYSICAL)
            if physical:
                doc = ast.get_docstring(node) or ""
                if not _UNIT_TOKEN.search(doc):
                    self.report(
                        node,
                        "public function takes physical quantities "
                        f"({', '.join(physical)}) but its docstring "
                        "names no units (m, m/s, m/s², seconds)",
                    )
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1
