"""SFL100–SFL105: the safedim dimensional-analysis rule family.

The heavy lifting happens in :mod:`repro.lint.dim.checker`, which runs
one abstract interpretation per file (cached, so the six rules cost a
single pass) and tags each violation with a *kind*.  Each rule here
surfaces one kind under its own id, so suppressions, ``--select`` and
the baseline can address, say, unit-mismatched calls separately from
missing annotations.

Why this is a safety gate and not a style check: the paper's guarantee
rests on kinematic window algebra — positions ``[m]``, speeds
``[m/s]``, accelerations ``[m/s²]`` and times ``[s]`` combined through
``d = v·t + ½·a·t²``-shaped identities.  A term swap (adding a speed
where an acceleration·time product belongs) produces a *plausible*
number that silently widens or narrows the safe passing window; no
runtime assertion can see it because the types are all ``float``.
Dimensional consistency is a machine-checkable proxy for those
identities being wired correctly.
"""

from __future__ import annotations

import ast
from typing import ClassVar, List

from repro.lint.dim.checker import (
    KIND_ADD,
    KIND_ANNOTATION,
    KIND_CALL,
    KIND_COMPARE,
    KIND_MISSING,
    KIND_RETURN,
    analyze,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = [
    "DimAdditionRule",
    "DimComparisonRule",
    "DimCallRule",
    "DimReturnRule",
    "DimAnnotationRule",
    "DimMissingUnitsRule",
]


class _DimRule(Rule):
    """Shared plumbing: surface one violation kind as findings."""

    kind: ClassVar[str] = ""
    scope: ClassVar[str] = "dim"

    def check(self, tree: ast.AST) -> List[Finding]:
        assert isinstance(tree, ast.Module)
        for violation in analyze(self.context, tree):
            if violation.kind != self.kind:
                continue
            self.findings.append(
                Finding(
                    path=self.context.path,
                    line=violation.line,
                    column=violation.column,
                    rule_id=self.rule_id,
                    message=violation.message,
                    severity=self.severity,
                    source_line=self.context.line_text(violation.line),
                )
            )
        return self.findings


@register
class DimAdditionRule(_DimRule):
    """SFL100: adding or subtracting unlike dimensions."""

    rule_id = "SFL100"
    name = "dim-add"
    rationale = (
        "A sum of unlike dimensions (metres plus seconds, speed plus "
        "acceleration) is the classic dropped-factor bug in kinematic "
        "algebra: the result is a plausible float that corrupts every "
        "window bound computed from it."
    )
    severity = Severity.ERROR
    kind = KIND_ADD


@register
class DimComparisonRule(_DimRule):
    """SFL101: ordering comparisons between unlike dimensions."""

    rule_id = "SFL101"
    name = "dim-compare"
    rationale = (
        "Comparing a position with a velocity (or min/max over mixed "
        "dimensions) always encodes a confusion about which quantity a "
        "variable holds; safe-set membership tests built on such a "
        "comparison are meaningless."
    )
    severity = Severity.ERROR
    kind = KIND_COMPARE


@register
class DimCallRule(_DimRule):
    """SFL102: an argument's dimension contradicts the declaration."""

    rule_id = "SFL102"
    name = "dim-call"
    rationale = (
        "Passing [s] where the callee declares [m] (or an [m/s] term "
        "where [m/s^2] is expected) routes a correct value into the "
        "wrong slot of the kinematic identity — the single most likely "
        "way to invert the conservative/aggressive window asymmetry "
        "the safety proof depends on."
    )
    severity = Severity.ERROR
    kind = KIND_CALL


@register
class DimReturnRule(_DimRule):
    """SFL103: a returned/stored dimension contradicts the declaration."""

    rule_id = "SFL103"
    name = "dim-return"
    rationale = (
        "A function declaring '-> [s]' that returns metres (or code "
        "storing a speed into a field whose repo-wide meaning is a "
        "position) breaks every caller that trusted the declaration; "
        "declarations only protect callers if implementations are held "
        "to them."
    )
    severity = Severity.ERROR
    kind = KIND_RETURN


@register
class DimAnnotationRule(_DimRule):
    """SFL104: a unit annotation that does not parse or misaddresses."""

    rule_id = "SFL104"
    name = "dim-annotation"
    rationale = (
        "A Units: entry that names a non-parameter or fails the unit "
        "grammar checks nothing while looking like it does — worse "
        "than no annotation, because readers and the checker disagree "
        "about what is protected."
    )
    severity = Severity.ERROR
    kind = KIND_ANNOTATION


@register
class DimMissingUnitsRule(_DimRule):
    """SFL105: a physical parameter with no machine-checkable unit."""

    rule_id = "SFL105"
    name = "dim-missing-units"
    rationale = (
        "Public kinematics entry points taking physically-named "
        "parameters (distance, velocity, dt, ...) without a declared "
        "unit are blind spots: the dimensional pass can neither check "
        "their bodies nor their call sites, so mismatches concentrate "
        "exactly where the analysis is silent."
    )
    severity = Severity.WARNING
    kind = KIND_MISSING
