"""SFL001 — no float ``==``/``!=`` on kinematic or time expressions.

The paper's guarantee hinges on exact schedule alignment: the engine
compares timestamps, window bounds and positions every control step,
and a drifting float equality (``t == horizon`` after repeated
``t += dt``) silently turns "monitor evaluated at the message step"
into "monitor skipped".  :class:`repro.sim.clock.MultiRateClock` exists
precisely to keep that arithmetic in integers; this rule keeps new code
from re-introducing float comparisons.

Exemptions (exact by construction, the codebase's documented idioms):

* comparison against the literal ``0``/``0.0`` — the clamp-then-check
  idiom ``v = max(v, 0.0); if v == 0.0`` is exact;
* comparison against ``math.inf``/``math.nan`` attributes or the
  ``NEVER`` sentinel of the window algebra;
* comparison against a ``pytest.approx(...)`` call — that *is* the
  tolerance comparison this rule asks for.
"""

from __future__ import annotations

import ast
import re

from repro.lint.registry import register
from repro.lint.rules.base import Rule, is_zero_constant

__all__ = ["FloatEqualityRule"]

#: Identifier shapes treated as kinematic/time quantities.
_KINEMATIC = re.compile(
    r"""^(
        t|dt|dt_[a-z]+|tau\w*|time\w*|timestamp|stamp|now|elapsed|
        duration|horizon|deadline|
        p|pos|position\w*|x|
        v|vel|velocity\w*|speed\w*|
        a|acc|accel\w*|acceleration\w*|
        d|dist|distance\w*|gap\w*|
        entry|exit_?|lo|hi|window\w*
    )$""",
    re.VERBOSE,
)

_SENTINEL_NAMES = frozenset({"NEVER", "INF", "INFINITY"})
_SENTINEL_ATTRS = frozenset({"inf", "nan"})


def _is_kinematic(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return bool(_KINEMATIC.match(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_KINEMATIC.match(node.attr))
    return False


def _is_exempt(node: ast.AST) -> bool:
    if is_zero_constant(node):
        return True
    if isinstance(node, ast.Name) and node.id in _SENTINEL_NAMES:
        return True
    if isinstance(node, ast.Attribute) and node.attr in _SENTINEL_ATTRS:
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else getattr(func, "id", "")
        )
        if name == "approx":
            return True
    return False


@register
class FloatEqualityRule(Rule):
    """Flag ``==``/``!=`` where either side names a kinematic quantity."""

    rule_id = "SFL001"
    name = "float-kinematic-equality"
    rationale = (
        "Timestamps, positions and velocities accumulate float error; "
        "exact equality on them silently breaks the multi-rate schedule "
        "the safety proof assumes. Compare step indices (integers), use "
        "tolerances, or the MultiRateClock."
    )
    scope = "all"

    def visit_Compare(self, node: ast.Compare) -> None:
        """Check each ==/!= comparison for kinematic operands."""
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_exempt(left) or _is_exempt(right):
                continue
            if _is_kinematic(left) or _is_kinematic(right):
                self.report(
                    node,
                    "float equality on a kinematic/time expression; "
                    "compare integer step indices or use a tolerance "
                    "(see repro.sim.clock)",
                )
                break
        self.generic_visit(node)
