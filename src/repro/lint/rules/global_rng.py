"""SFL005 — no global-state randomness; inject a ``numpy`` Generator.

Every stochastic component in this repo (channel disturbance, sensor
noise, weight init, batch shuffling) draws from an injected
``np.random.Generator`` descended from one ``SeedSequence``
(:mod:`repro.utils.rng`), which is what makes a certification run a
*certificate* — re-runnable bit-for-bit, parallelizable without stream
collisions.  ``random.random()`` or the legacy ``np.random.uniform()``
module functions share one hidden global stream: any import-order
change or parallel worker reseeds it and the experiment stops
reproducing.

Constructing generators (``np.random.default_rng``, ``SeedSequence``,
``Generator``, bit generators) is allowed — that *is* the sanctioned
API; the rule bans draws from and seeding of the global stream.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["GlobalRngRule"]

#: np.random attributes that are constructors, not global-stream draws.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register
class GlobalRngRule(Rule):
    """Flag draws from the ``random`` / legacy ``np.random`` globals."""

    rule_id = "SFL005"
    name = "global-rng"
    rationale = (
        "Certification runs must be bit-for-bit re-runnable; the global "
        "RNG stream is shared hidden state that import order or "
        "parallelism silently reseeds. Thread an np.random.Generator "
        "(repro.utils.rng.RngStream) through instead."
    )
    scope = "all"

    def visit_Call(self, node: ast.Call) -> None:
        """Check one call expression."""
        func = node.func
        if isinstance(func, ast.Attribute):
            root = func.value
            if isinstance(root, ast.Name) and root.id == "random":
                self.report(
                    node,
                    f"global-state draw random.{func.attr}(); inject an "
                    "np.random.Generator instead",
                )
            elif (
                isinstance(root, ast.Attribute)
                and root.attr == "random"
                and isinstance(root.value, ast.Name)
                and root.value.id in ("np", "numpy")
                and func.attr not in _ALLOWED_NP_RANDOM
            ):
                self.report(
                    node,
                    f"legacy global-stream call np.random.{func.attr}(); "
                    "use an injected np.random.Generator",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        """Check a from-import statement."""
        if node.module == "random":
            self.report(
                node,
                "importing from the stdlib 'random' module; use an "
                "injected np.random.Generator",
            )
        self.generic_visit(node)
