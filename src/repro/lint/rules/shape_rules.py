"""SFL200–SFL205: the safeshape array shape/dtype rule family.

The heavy lifting happens in :mod:`repro.lint.shape.checker`, which
runs one abstract interpretation per file (cached, so the six rules
cost a single pass) and tags each violation with a *kind*.  Each rule
here surfaces one kind under its own id, so suppressions, ``--select``
and the baseline can address, say, matmul contractions separately from
missing annotations.

Why this is a safety gate and not a style check: the roadmap's
vectorized batch engine replaces per-scenario scalar code with
``[B, ...]`` array algebra, and numpy fails *open* — a transposed
Kalman gain, a row-vs-column state vector or a silently broadcast
residual produces plausible numbers of the wrong meaning, not an
exception.  A certified-clean shape discipline on the kinematics,
filtering and nn core is the precondition for trusting that migration.
"""

from __future__ import annotations

import ast
from typing import ClassVar, List

from repro.lint.findings import Finding, Severity
from repro.lint.registry import register
from repro.lint.rules.base import Rule
from repro.lint.shape.checker import (
    KIND_AXIS,
    KIND_BINDING,
    KIND_BROADCAST,
    KIND_DTYPE,
    KIND_MATMUL,
    KIND_MISSING,
    analyze,
)

__all__ = [
    "ShapeMatmulRule",
    "ShapeBroadcastRule",
    "ShapeAxisRule",
    "ShapeDtypeNarrowingRule",
    "ShapeMissingRule",
    "ShapeBindingRule",
]


class _ShapeRule(Rule):
    """Shared plumbing: surface one violation kind as findings."""

    kind: ClassVar[str] = ""
    scope: ClassVar[str] = "shape"

    def check(self, tree: ast.AST) -> List[Finding]:
        assert isinstance(tree, ast.Module)
        for violation in analyze(self.context, tree):
            if violation.kind != self.kind:
                continue
            self.findings.append(
                Finding(
                    path=self.context.path,
                    line=violation.line,
                    column=violation.column,
                    rule_id=self.rule_id,
                    message=violation.message,
                    severity=self.severity,
                    source_line=self.context.line_text(violation.line),
                )
            )
        return self.findings


@register
class ShapeMatmulRule(_ShapeRule):
    """SFL200: a matmul whose inner extents can never contract."""

    rule_id = "SFL200"
    name = "shape-matmul"
    rationale = (
        "An '@' whose inner extents provably differ — the classic "
        "transposed-gain bug — either crashes at runtime on one input "
        "or, worse, contracts the wrong axes of a batched operand and "
        "yields plausible numbers with the wrong meaning."
    )
    severity = Severity.ERROR
    kind = KIND_MATMUL


@register
class ShapeBroadcastRule(_ShapeRule):
    """SFL201: an elementwise op that cannot or mutually broadcasts."""

    rule_id = "SFL201"
    name = "shape-broadcast"
    rationale = (
        "Two extents that can never broadcast are a guaranteed crash; "
        "a *mutual* stretch — (2,1)+(2,) silently exploding to (2,2), "
        "matching neither operand — is numpy failing open on a "
        "row/column orientation bug, corrupting every element of the "
        "result while looking like a successful update."
    )
    severity = Severity.ERROR
    kind = KIND_BROADCAST


@register
class ShapeAxisRule(_ShapeRule):
    """SFL202: an axis argument outside the operand's known rank."""

    rule_id = "SFL202"
    name = "shape-axis"
    rationale = (
        "Reducing or stacking along an axis a known-rank operand does "
        "not have is either an immediate AxisError or — after a rank "
        "change elsewhere — a reduction over the *wrong* axis, turning "
        "per-scenario statistics into cross-scenario soup."
    )
    severity = Severity.ERROR
    kind = KIND_AXIS


@register
class ShapeDtypeNarrowingRule(_ShapeRule):
    """SFL203: an in-place accumulation into a narrower dtype."""

    rule_id = "SFL203"
    name = "shape-dtype-narrowing"
    rationale = (
        "numpy casts 'same-kind' silently on in-place ops: a float32 "
        "accumulator fed float64 increments truncates every step, and "
        "safety margins computed from the drifted sum are quietly "
        "wrong — the kind of bug that only shows at batch scale."
    )
    severity = Severity.ERROR
    kind = KIND_DTYPE


@register
class ShapeMissingRule(_ShapeRule):
    """SFL204: a public array API without machine-checkable shapes."""

    rule_id = "SFL204"
    name = "shape-missing"
    rationale = (
        "Public ndarray entry points without a declared shape are "
        "blind spots: the shape pass can neither check their bodies "
        "nor their call sites, so orientation bugs concentrate exactly "
        "where the analysis is silent.  Malformed shape specs land "
        "here too — an annotation that does not parse protects "
        "nothing while looking like it does."
    )
    severity = Severity.ERROR
    kind = KIND_MISSING


@register
class ShapeBindingRule(_ShapeRule):
    """SFL205: a value contradicting a declared shape or dim binding."""

    rule_id = "SFL205"
    name = "shape-binding"
    rationale = (
        "Shape declarations are contracts: an argument whose concrete "
        "extents contradict the callee's declaration, a symbolic dim "
        "bound to two different extents in one call, or a return value "
        "contradicting '-> [spec]' all mean caller and callee disagree "
        "about the data layout — the row-vs-column state swap that "
        "type checkers cannot see."
    )
    severity = Severity.ERROR
    kind = KIND_BINDING
