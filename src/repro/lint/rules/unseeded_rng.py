"""SFL012 — RNG constructors must be given an explicit seed.

SFL005 bans *draws* from hidden global streams; this rule closes the
complementary hole on the sanctioned path: constructing a generator
without a seed (``np.random.default_rng()``, ``RngStream()``,
``random.Random()``) pulls OS entropy, so two invocations of the same
certification campaign draw different disturbances and the run stops
being a re-runnable certificate.  Every generator must descend from an
explicit seed — a literal, a config field, or a spawned
``SeedSequence`` — and ``seed=None`` spelled out is the same entropy
pull with extra letters.
"""

from __future__ import annotations

import ast

from repro.lint.registry import register
from repro.lint.rules.base import Rule

__all__ = ["UnseededRngRule"]

#: Constructor names whose first argument (or ``seed=`` keyword) is the
#: seed.  Covers numpy (``default_rng``, legacy ``RandomState``), the
#: stdlib (``Random``) and the repo's own :class:`repro.utils.rng.RngStream`.
_SEEDED_CONSTRUCTORS = frozenset(
    {"default_rng", "RandomState", "Random", "RngStream"}
)

#: Keyword spellings that satisfy the requirement when non-None.
_SEED_KEYWORDS = frozenset({"seed", "seed_seq", "seed_material"})


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class UnseededRngRule(Rule):
    """Flag RNG constructions that fall back to OS entropy."""

    rule_id = "SFL012"
    name = "unseeded-rng"
    rationale = (
        "An unseeded generator draws OS entropy, so the same campaign "
        "command produces different disturbance realizations on every "
        "invocation — the certificate stops being re-runnable and a "
        "failure found today cannot be reproduced tomorrow. Thread an "
        "explicit seed (or a spawned SeedSequence) into every "
        "constructor."
    )
    scope = "all"

    def visit_Call(self, node: ast.Call) -> None:
        """Check one call expression."""
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _SEEDED_CONSTRUCTORS:
            seeded = any(
                not _is_none(argument) for argument in node.args
            ) or any(
                keyword.arg in _SEED_KEYWORDS
                and not _is_none(keyword.value)
                for keyword in node.keywords
            )
            if not seeded:
                self.report(
                    node,
                    f"{name}() constructed without a seed draws OS "
                    "entropy; pass an explicit seed so the run stays "
                    "re-runnable",
                )
        self.generic_visit(node)
