"""The rule base class and shared AST helpers.

A rule is an :class:`ast.NodeVisitor` subclass with class-level
metadata (id, name, rationale, severity, scope) and a :meth:`report`
helper.  The engine instantiates one rule object per (rule, file) pair,
calls :meth:`check` with the parsed tree, and collects
``rule.findings`` — rules never do I/O and never see other files, which
keeps them trivially unit-testable against source strings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterator, List, Optional, Sequence

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.dim.signatures import SignatureTable
    from repro.lint.flow.fixpoint import EffectTable
    from repro.lint.shape.signatures import ShapeTable

__all__ = [
    "FileContext",
    "Rule",
    "bare_names",
    "is_zero_constant",
    "function_returns",
]


@dataclass(frozen=True)
class FileContext:
    """What a rule may know about the file it is checking.

    Attributes
    ----------
    path:
        Display path of the file (POSIX separators).
    module:
        Dotted module name (``repro.sim.engine``) used for scope checks;
        test fixtures inject fake names such as ``repro.sim.fixture``.
    source:
        Full source text.
    lines:
        ``source.splitlines()``, for fingerprinting findings.
    signatures:
        Cross-file unit-signature table built by the engine for the
        dimensional rules (SFL100–SFL105); ``None`` outside an engine
        run, in which case the dim checker falls back to a table built
        from the file itself.
    shape_signatures:
        Cross-file shape-signature table built by the engine for the
        shape rules (SFL200–SFL205); same fallback convention.
    effect_table:
        Program-wide effect table built by the engine for the flow
        rules (SFL300–SFL306); same fallback convention (the flow
        checker builds a single-file table when absent).
    """

    path: str
    module: str
    source: str
    lines: Sequence[str]
    signatures: Optional["SignatureTable"] = None
    shape_signatures: Optional["ShapeTable"] = None
    effect_table: Optional["EffectTable"] = None

    def line_text(self, line: int) -> str:
        """Stripped text of a 1-based line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule(ast.NodeVisitor):
    """Base class of every safelint rule.

    Subclasses set the class attributes below and implement ordinary
    ``visit_*`` methods, calling :meth:`report` on violations.

    Attributes
    ----------
    rule_id:
        Stable public identifier (``SFLxxx``) used in suppression
        comments and baselines.
    name:
        Short kebab-case name for listings.
    rationale:
        One paragraph tying the rule to the paper's safety argument
        (surfaced by ``--list-rules`` and docs/LINTING.md).
    severity:
        Default severity of this rule's findings.
    scope:
        Package-family key resolved through
        :meth:`repro.lint.config.LintConfig.packages_for`.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    scope: ClassVar[str] = "all"

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.findings: List[Finding] = []

    def check(self, tree: ast.AST) -> List[Finding]:
        """Run the rule over a parsed tree and return its findings."""
        self.visit(tree)
        return self.findings

    def report(
        self, node: ast.AST, message: str, *, severity: Severity | None = None
    ) -> None:
        """Record a finding spanning ``node``'s source extent."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                path=self.context.path,
                line=line,
                column=column,
                rule_id=self.rule_id,
                message=message,
                severity=severity or self.severity,
                source_line=self.context.line_text(line),
                end_line=getattr(node, "end_lineno", None) or line,
                end_column=getattr(node, "end_col_offset", None) or column,
            )
        )


def bare_names(node: ast.AST) -> Iterator[ast.Name]:
    """Yield plain ``Name`` loads, skipping attribute/call/subscript trees.

    ``limits.a_min`` or ``max(v, eps)`` carry their own invariants
    (constructor validation, explicit flooring), so rules reasoning
    about *unvalidated locals* must not descend into them.
    """
    if isinstance(node, ast.Name):
        yield node
        return
    if isinstance(node, (ast.Attribute, ast.Call, ast.Subscript, ast.Lambda)):
        return
    for child in ast.iter_child_nodes(node):
        yield from bare_names(child)


def is_zero_constant(node: ast.AST) -> bool:
    """Whether ``node`` is the literal ``0``/``0.0`` (incl. ``-0.0``)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def function_returns(func: ast.AST) -> Iterator[ast.Return]:
    """Yield ``return`` statements of ``func`` itself, not nested defs."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))
