"""The grandfathering baseline file.

When safelint is introduced to a tree with pre-existing findings, the
team either fixes them or records them in a *baseline*: a JSON file
mapping finding fingerprints (path + rule + source line, no line
numbers — see :class:`repro.lint.findings.Finding`) to a short note.
Baselined findings are subtracted from the report, so the gate stays
green while the debt is paid down; any **new** violation still fails.

The repo policy (docs/LINTING.md) is that the baseline holds only
justified, reviewed entries — true false-positives carry an inline
``# safelint: disable`` comment instead, and real violations get fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class Baseline:
    """An immutable set of grandfathered finding fingerprints."""

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """Split findings into (fresh, number-baselined)."""
        fresh = [f for f in findings if f not in self]
        return fresh, len(findings) - len(fresh)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; an absent file is an empty baseline.

    Raises
    ------
    LintError
        If the file exists but is not a valid baseline document.
    """
    if not path.exists():
        return Baseline()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"unreadable baseline file {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != _FORMAT_VERSION
        or not isinstance(document.get("entries"), dict)
    ):
        raise LintError(
            f"baseline file {path} is not a version-{_FORMAT_VERSION} "
            "safelint baseline"
        )
    entries = {}
    for fingerprint, meta in document["entries"].items():
        if not isinstance(meta, dict):
            raise LintError(
                f"baseline entry {fingerprint!r} in {path} must be an object"
            )
        entries[str(fingerprint)] = {
            str(k): str(v) for k, v in meta.items()
        }
    return Baseline(entries=entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Write the current findings as the new baseline and return it."""
    entries = {
        f.fingerprint: {
            "rule": f.rule_id,
            "path": f.path,
            "line": str(f.line),
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule_id))
    }
    document = {"version": _FORMAT_VERSION, "entries": entries}
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return Baseline(entries=entries)
