"""The finding data model and the stable JSON report schema.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* hashes the file path, rule id and the stripped source line
— deliberately **not** the line number — so baselines survive unrelated
edits that shift code up or down.

``SCHEMA_VERSION`` guards the JSON output contract: any change to the
shape of :func:`report_to_dict` must bump it, and
``tests/test_lint_engine.py`` pins the exact key set.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, List, Sequence

__all__ = ["Severity", "Finding", "SCHEMA_VERSION", "report_to_dict"]

#: Version of the ``--format json`` output schema.
#: 2: findings gained ``end_line``/``end_column``.
SCHEMA_VERSION = 2


class Severity(str, Enum):
    """How strongly a rule's finding should be treated.

    Both severities fail the lint gate; the distinction is for human
    triage (``WARNING`` rules are heuristic and may need suppressions).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        File path as given to the engine (POSIX separators).
    line, column:
        1-based line and 0-based column of the offending node.
    rule_id:
        The ``SFLxxx`` identifier of the rule that fired.
    message:
        Human-readable description of the violation.
    severity:
        Triage severity (both severities fail the gate).
    source_line:
        The stripped text of the offending line (fingerprint input).
    end_line, end_column:
        End of the offending span (1-based line, 0-based exclusive
        column).  Constructors that only know a point location may
        leave them at 0; they are normalized to the start position, so
        consumers can always rely on ``end_line >= line``.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    severity: Severity
    source_line: str = ""
    end_line: int = 0
    end_column: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)
            object.__setattr__(self, "end_column", self.column)
        elif self.end_line == self.line and self.end_column < self.column:
            object.__setattr__(self, "end_column", self.column)

    @property
    def fingerprint(self) -> str:
        """Location-drift-tolerant identity used by the baseline file."""
        payload = f"{self.path}::{self.rule_id}::{self.source_line}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (part of the schema contract)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
            "rule": self.rule_id,
            "message": self.message,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }

    def format_text(self) -> str:
        """The one-line ``path:line:col: RULE message`` rendering."""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )


def report_to_dict(
    findings: Sequence[Finding],
    *,
    files_checked: int,
    suppressed: int,
    baselined: int,
) -> Dict[str, Any]:
    """Assemble the full ``--format json`` document.

    The key set is schema-stable (see ``SCHEMA_VERSION``); consumers may
    rely on every key below existing in every report.
    """
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    ordered: List[Finding] = sorted(
        findings, key=lambda f: (f.path, f.line, f.column, f.rule_id)
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "safelint",
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in ordered],
        "summary": {
            "total": len(ordered),
            "suppressed": suppressed,
            "baselined": baselined,
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
