"""The safelint engine: files -> AST -> rules -> filtered findings.

One parse per file, every applicable rule visiting the same tree; the
engine then applies inline suppressions and subtracts the baseline.
Rules are pure per-file visitors, so the engine is the only place that
touches the filesystem, the suppression map and the baseline — and the
only place tests need to stub.

``lint_paths`` runs in two passes: the first parses every file and
feeds the trees to the cross-module signature tables (the dim pass's
:class:`~repro.lint.dim.signatures.SignatureTable` and the shape
pass's :class:`~repro.lint.shape.signatures.ShapeTable`), the second
runs the rules with those tables available through
:attr:`~repro.lint.rules.base.FileContext.signatures` and
:attr:`~repro.lint.rules.base.FileContext.shape_signatures`, plus the
safeflow pass's program-wide
:class:`~repro.lint.flow.fixpoint.EffectTable` through
:attr:`~repro.lint.rules.base.FileContext.effect_table` — this is
what lets the (per-file) dimensional, shape and flow rules check call
sites against declarations in *other* files, while rules themselves
still never do I/O.  File reads and parses go through the process-level
:mod:`repro.lint.astcache`, so repeated invocations in one process
(gate tests, benchmarks, the CLI's ``--gates`` mode) parse each file
once.

A file that does not parse yields a single ``SFL000`` finding (not an
exception): the gate must fail on broken code, not crash.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.astcache import read_and_parse
from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.dim.signatures import SignatureTable, build_signature_table
from repro.lint.flow.fixpoint import EffectTable, build_effect_table
from repro.lint.shape.signatures import ShapeTable, build_shape_table
from repro.lint.findings import Finding, Severity
from repro.lint.registry import all_rules
from repro.lint.rules.base import FileContext
from repro.lint.suppressions import parse_suppressions

__all__ = [
    "LintResult",
    "build_effect_table_for",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Pseudo-rule id for files that fail to parse (not suppressible).
PARSE_ERROR_ID = "SFL000"


@dataclass(frozen=True)
class LintResult:
    """Aggregate outcome of one engine run.

    Attributes
    ----------
    findings:
        Surviving findings (post suppression and baseline), sorted.
    files_checked:
        Number of Python files parsed.
    suppressed:
        Findings dropped by inline ``# safelint: disable`` comments.
    baselined:
        Findings dropped by the baseline file.
    """

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0

    @property
    def ok(self) -> bool:
        """Whether the gate passes (no surviving findings)."""
        return not self.findings


def _module_name(path: Path) -> str:
    """Infer the dotted module from a path (``src/repro/...`` aware)."""
    parts = path.with_suffix("").parts
    for anchor in ("repro",):
        if anchor in parts:
            dotted = parts[parts.index(anchor):]
            if dotted[-1] == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted) if dotted else anchor
    return path.stem


def _package_modules(parsed):
    """The subset of ``(module, tree)`` pairs inside the real package.

    The effect table resolves untyped receivers through a program-wide
    method-name index, so it must only see importable package modules:
    stem-named files (tests, benchmarks, scripts) define test doubles
    whose methods would otherwise smear their effects over same-named
    methods in ``src`` — and the src gate's verdict would depend on
    which test files happened to be on the command line.
    """
    return {
        module: tree
        for module, tree in parsed
        if module == "repro" or module.startswith("repro.")
    }


def _lint_one(
    source: str,
    path: str,
    module: Optional[str],
    config: LintConfig,
    *,
    signatures: Optional[SignatureTable] = None,
    shape_signatures: Optional[ShapeTable] = None,
    effect_table: Optional[EffectTable] = None,
    tree: Optional[ast.Module] = None,
) -> Tuple[List[Finding], int]:
    """Lint one source string -> (surviving findings, suppressed count)."""
    if module is None:
        module = _module_name(Path(path))
    lines = source.splitlines()
    context = FileContext(
        path=path,
        module=module,
        source=source,
        lines=lines,
        signatures=signatures,
        shape_signatures=shape_signatures,
        effect_table=effect_table,
    )
    try:
        if tree is None:
            tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            column=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
            severity=Severity.ERROR,
            source_line=context.line_text(exc.lineno or 1),
        )
        return [finding], 0

    raw: List[Finding] = []
    for rule_class in all_rules():
        if not config.rule_enabled(rule_class.rule_id):
            continue
        if not config.module_in_scope(module, rule_class.scope):
            continue
        raw.extend(rule_class(context).check(tree))

    suppressions = parse_suppressions(lines)
    surviving = [
        f
        for f in raw
        if not suppressions.is_suppressed(f.rule_id, f.line)
    ]
    # Deterministic order even for single-file runs: rules run in
    # registration order, so without this sort a finding's position
    # would depend on which pass produced it.
    surviving.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return surviving, len(raw) - len(surviving)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    module: Optional[str] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one source string; returns suppression-filtered findings.

    ``module`` overrides the inferred dotted module name so tests can
    exercise package-scoped rules on fixture files (e.g. pass
    ``module="repro.sim.fixture"`` to put a fixture in scope of the
    sim-core rules).
    """
    findings, _ = _lint_one(source, path, module, config or LintConfig())
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """Expand files/directories into sorted ``.py`` files.

    Hidden directories and ``__pycache__`` are skipped.  A path that is
    neither a Python file nor a directory raises
    :class:`~repro.errors.LintError`.
    """
    seen = set()
    for entry in paths:
        if entry.is_file():
            if entry.suffix != ".py":
                raise LintError(f"not a Python file: {entry}")
            candidates: Iterable[Path] = [entry]
        elif entry.is_dir():
            candidates = sorted(entry.rglob("*.py"))
        else:
            raise LintError(f"no such file or directory: {entry}")
        for candidate in candidates:
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.parts
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def build_effect_table_for(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
) -> EffectTable:
    """The program-wide effect table of files/directories.

    The CLI's ``--batch-report`` uses this to answer reachability
    questions without running any rules.
    """
    config = config or LintConfig()
    modules = {}
    for file_path in iter_python_files(paths):
        if config.path_excluded(file_path.as_posix()):
            continue
        try:
            _, tree = read_and_parse(file_path)
        except OSError as exc:
            raise LintError(f"unreadable file {file_path}: {exc}") from exc
        if tree is not None:
            modules[_module_name(file_path)] = tree
    return build_effect_table(_package_modules(modules.items()))


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    *,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint files/directories and return the aggregate result."""
    config = config or LintConfig()
    baseline = baseline or Baseline()

    # Pass 1: read and parse everything, building the cross-module
    # signature table for the dimensional rules.  Unparseable files are
    # carried with ``tree=None`` so pass 2 reports their SFL000.
    entries: List[Tuple[str, str, str, Optional[ast.Module]]] = []
    for file_path in iter_python_files(paths):
        posix = file_path.as_posix()
        if config.path_excluded(posix):
            continue
        try:
            source, tree = read_and_parse(file_path)
        except OSError as exc:
            raise LintError(f"unreadable file {file_path}: {exc}") from exc
        module = _module_name(file_path)
        entries.append((posix, source, module, tree))
    parsed = [
        (module, tree)
        for _, _, module, tree in entries
        if tree is not None
    ]
    signatures = build_signature_table(parsed)
    shape_signatures = build_shape_table(parsed)
    effect_table = build_effect_table(_package_modules(parsed))

    # Pass 2: run the rules with the table in scope.
    findings: List[Finding] = []
    suppressed = 0
    files = 0
    for posix, source, module, tree in entries:
        files += 1
        file_findings, file_suppressed = _lint_one(
            source,
            posix,
            module,
            config,
            signatures=signatures,
            shape_signatures=shape_signatures,
            effect_table=effect_table,
            tree=tree,
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    fresh, baselined = baseline.partition(findings)
    fresh.sort(key=lambda f: (f.path, f.line, f.column, f.rule_id))
    return LintResult(
        findings=fresh,
        files_checked=files,
        suppressed=suppressed,
        baselined=baselined,
    )
