"""Shared annotation-spec machinery for the dim and shape passes.

Both analysis families declare per-parameter facts the same two ways —
a docstring directive line (``Units: dt [s]`` / ``Shapes: x [B,4]``)
and string metadata on an ``Annotated`` hint — and both need the same
plumbing: find the directive lines of a docstring, split a payload into
``name <spec>`` entries plus an optional ``-> <spec>`` return clause,
and pull string constants out of ``Annotated[...]`` slices.  This
module holds that plumbing once, parameterised by the *spec grammar*
(a callable that parses the bracket contents and raises
:class:`SpecSyntaxError` on anything outside its grammar), so the two
passes cannot drift apart on how declarations are spelled.

The grammar callables live with their lattices
(:func:`repro.lint.dim.lattice.parse_unit`,
:func:`repro.lint.shape.lattice.parse_shape_spec`); what is shared here
is *where declarations live*, not *what they mean*.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

__all__ = [
    "SpecSyntaxError",
    "SpecIssue",
    "annotated_metadata",
    "docstring_lines",
    "directive_pattern",
    "parse_directive_payload",
    "parse_keyword_payload",
    "spec_from_annotated",
]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

SpecT = TypeVar("SpecT")


class SpecSyntaxError(ValueError):
    """A declaration spec that does not follow its grammar.

    Both the unit grammar (``m/s^2``) and the shape grammar (``B,4``)
    raise this (or a subclass) so the shared directive parser can turn
    any malformed spec into an issue without knowing which pass it
    serves.
    """


@dataclass(frozen=True, slots=True)
class SpecIssue:
    """One problem with a declaration (malformed or misaddressed).

    The dim pass surfaces these as SFL104, the shape pass as SFL204 —
    an annotation that does not parse is an annotation that does not
    protect anything.
    """

    line: int
    message: str


def annotated_metadata(annotation: Optional[ast.expr]) -> List[ast.Constant]:
    """String metadata constants of an ``Annotated[...]`` hint, if any.

    Returns the ``ast.Constant`` nodes (not just their values) so
    callers can anchor issues at the exact metadata line.
    """
    if not isinstance(annotation, ast.Subscript):
        return []
    target = annotation.value
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else ""
    )
    if name != "Annotated":
        return []
    inner = annotation.slice
    elements = inner.elts[1:] if isinstance(inner, ast.Tuple) else []
    return [
        element
        for element in elements
        if isinstance(element, ast.Constant) and isinstance(element.value, str)
    ]


def docstring_lines(func: _FuncNode) -> Iterator[Tuple[int, str]]:
    """Yield ``(absolute_line, text)`` for each raw docstring line."""
    if not func.body:
        return
    first = func.body[0]
    if not (
        isinstance(first, ast.Expr)
        and isinstance(first.value, ast.Constant)
        and isinstance(first.value.value, str)
    ):
        return
    for offset, text in enumerate(first.value.value.splitlines()):
        yield first.value.lineno + offset, text


def directive_pattern(directive: str) -> re.Pattern:
    """The compiled line pattern of a ``<Directive>:`` docstring line."""
    return re.compile(
        r"^\s*" + re.escape(directive) + r":\s*(?P<payload>.*\S)\s*$"
    )


#: ``name [spec]`` or ``name keyword`` (the shape grammar has bare
#: keyword specs such as ``scalar``; the dim grammar rejects them in
#: its parse callable).
_ENTRY = re.compile(r"^(?P<name>\w+)\s*(?P<spec>\[[^\[\]]*\]|[A-Za-z_]\w*)$")
_ARROW = re.compile(r"\s*->\s*(?P<spec>\[[^\[\]]*\]|[A-Za-z_]\w*)\s*$")


def _strip_brackets(spec: str) -> Tuple[str, bool]:
    spec = spec.strip()
    if spec.startswith("[") and spec.endswith("]"):
        return spec[1:-1], True
    return spec, False


def _split_entries(payload: str) -> List[str]:
    """Split a payload on top-level commas only.

    Shape specs carry commas *inside* their brackets (``x [B,4]``), so
    a naive ``split(',')`` would shred them.
    """
    entries: List[str] = []
    depth = 0
    current: List[str] = []
    for character in payload:
        if character == "[":
            depth += 1
        elif character == "]":
            depth = max(0, depth - 1)
        if character == "," and depth == 0:
            entries.append("".join(current))
            current = []
        else:
            current.append(character)
    entries.append("".join(current))
    return entries


def parse_directive_payload(
    payload: str,
    line: int,
    *,
    directive: str,
    parse_spec: Callable[[str, bool], SpecT],
    known_names: frozenset,
    params: Dict[str, SpecT],
    issues: List[SpecIssue],
) -> Optional[SpecT]:
    """Parse one directive payload into ``params``; return the return spec.

    ``parse_spec(text, bracketed)`` receives the spec with brackets
    stripped plus whether they were present, and must raise
    :class:`SpecSyntaxError` on anything outside its grammar.  Entries
    naming a non-parameter, and entries that fail the grammar, are
    recorded as issues rather than silently dropped.
    """
    returns: Optional[SpecT] = None
    arrow = _ARROW.search(payload)
    if arrow is not None:
        text, bracketed = _strip_brackets(arrow.group("spec"))
        try:
            returns = parse_spec(text, bracketed)
        except SpecSyntaxError as exc:
            issues.append(SpecIssue(line, f"return spec: {exc}"))
        payload = payload[: arrow.start()]
    for raw_entry in _split_entries(payload):
        entry = raw_entry.strip()
        if not entry:
            continue
        match = _ENTRY.match(entry)
        if match is None:
            issues.append(
                SpecIssue(
                    line,
                    f"unparseable {directive}: entry {entry!r} "
                    "(expected 'name [spec]')",
                )
            )
            continue
        name = match.group("name")
        text, bracketed = _strip_brackets(match.group("spec"))
        try:
            spec = parse_spec(text, bracketed)
        except SpecSyntaxError as exc:
            issues.append(SpecIssue(line, f"{name}: {exc}"))
            continue
        if name == "return":
            returns = spec
        elif name not in known_names:
            issues.append(
                SpecIssue(
                    line,
                    f"{directive}: names {name!r}, which is not a "
                    "parameter of this function",
                )
            )
        else:
            params[name] = spec
    return returns


def parse_keyword_payload(
    payload: str,
    line: int,
    *,
    directive: str,
    vocabulary: frozenset,
    bottom_keyword: Optional[str],
    issues: List[SpecIssue],
) -> Optional[frozenset]:
    """Parse a *function-level* keyword directive payload.

    Where :func:`parse_directive_payload` handles per-parameter
    ``name [spec]`` grammars (units, shapes), this handles directives
    that declare facts about the function as a whole — a comma-separated
    list of bare keywords drawn from ``vocabulary``, e.g.::

        Effects: draws-rng, mutates-args

    ``bottom_keyword`` (``pure`` for the effect grammar) stands for the
    empty set and must appear alone; combining it with other keywords,
    or naming a keyword outside the vocabulary, is recorded as an issue
    (a declaration that does not parse protects nothing).  Returns the
    parsed frozenset, or ``None`` when no entry survived.
    """
    keywords = []
    bad = False
    for raw in payload.split(","):
        word = raw.strip()
        if not word:
            continue
        if word == bottom_keyword or word in vocabulary:
            keywords.append(word)
        else:
            known = ", ".join(sorted(vocabulary))
            issues.append(
                SpecIssue(
                    line,
                    f"unknown {directive} keyword {word!r} "
                    f"(known: {bottom_keyword}, {known})",
                )
            )
            bad = True
    if bottom_keyword is not None and bottom_keyword in keywords:
        if len(keywords) > 1:
            issues.append(
                SpecIssue(
                    line,
                    f"{directive}: {bottom_keyword!r} must stand alone, "
                    "not alongside other keywords",
                )
            )
            keywords = [word for word in keywords if word != bottom_keyword]
        else:
            return frozenset()
    if not keywords:
        return None if bad or not payload.strip() else frozenset()
    return frozenset(keywords)


def spec_from_annotated(
    annotation: Optional[ast.expr],
    *,
    parse_spec: Callable[[str, bool], SpecT],
    issues: List[SpecIssue],
) -> Optional[SpecT]:
    """Extract a spec from ``Annotated`` string metadata, if present.

    Metadata that parses under the grammar wins; explicitly bracketed
    metadata that *fails* the grammar is a broken declaration and is
    recorded as an issue (unbracketed failures are treated as free-form
    metadata addressed to some other tool and skipped).  A parse
    callable may also return ``None`` to say "valid, but addressed to
    the *other* pass" — the dim pass skips shape specs this way and
    vice versa — in which case scanning continues.
    """
    if annotation is None:
        return None
    for constant in annotated_metadata(annotation):
        text, bracketed = _strip_brackets(constant.value)
        try:
            spec = parse_spec(text, bracketed)
        except SpecSyntaxError as exc:
            if bracketed:
                issues.append(SpecIssue(constant.lineno, str(exc)))
            continue
        if spec is not None:
            return spec
    return None
