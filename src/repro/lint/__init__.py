"""safelint — repo-specific static analysis for the safety argument.

The paper's contribution is a *provable* guarantee; this package is the
machine-checked defense against the coding patterns that silently void
it: drifting float equality on timestamps, wall-clock reads inside the
deterministic sim loop, global-state randomness, unguarded divisions in
the window algebra, unclamped planner outputs.  See docs/LINTING.md for
the rule catalogue and the rationale of each rule.

Programmatic use::

    from repro.lint import lint_source, lint_paths, LintConfig

    findings = lint_source(code, module="repro.sim.example")
    result = lint_paths([Path("src")], LintConfig())

Command line: ``python -m repro.lint [paths] --format text|json`` (or
the ``repro-lint`` console script).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, load_project_config
from repro.lint.engine import (
    LintResult,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.lint.findings import SCHEMA_VERSION, Finding, Severity
from repro.lint.registry import all_rules, get_rule, rule_ids

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "SCHEMA_VERSION",
    "Severity",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_project_config",
    "rule_ids",
    "write_baseline",
]
