"""Lint configuration: rule selection and package scopes.

Rules are scoped to package families rather than hard-coded paths, so
the same rule set lints both the real tree and the test fixtures (tests
inject a fake module name such as ``repro.sim.fixture``):

* ``critical`` — packages where a swallowed exception can mask a safety
  bug (broad/bare ``except`` ban);
* ``sim`` — the deterministic simulation core (wall-clock ban);
* ``math`` — the kinematic/window algebra (unguarded-division rule);
* ``planner`` — packages holding ``plan()`` implementations (clamp
  rule);
* ``units`` — public physical-quantity APIs (docstring-units rule);
* ``dim`` — the kinematics core covered by the safedim dimensional
  analysis (SFL100–SFL105);
* ``shape`` — the array core covered by the safeshape shape/dtype
  analysis (SFL200–SFL205);
* ``flow`` — the episode hot path covered by the safeflow
  purity/effect analysis (SFL300–SFL306);
* ``all`` — everything.

``select``/``ignore`` entries are *prefixes*: ``SFL1`` selects the
whole SFL100–SFL105 dimensional family, ``SFL001`` exactly one rule.

Defaults live here; a ``[tool.safelint]`` table in ``pyproject.toml``
overrides them (keys ``select``, ``ignore``, ``baseline``, ``exclude``
and the ``*-packages`` lists, with dashes or underscores).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import FrozenSet, Optional, Tuple

from repro.errors import LintError

__all__ = ["LintConfig", "load_project_config", "find_pyproject"]

_DEFAULT_CRITICAL: Tuple[str, ...] = (
    "repro.planners",
    "repro.filtering",
    "repro.scenarios",
    "repro.sim",
    "repro.core",
)
_DEFAULT_SIM: Tuple[str, ...] = ("repro.sim", "repro.core")
_DEFAULT_MATH: Tuple[str, ...] = (
    "repro.scenarios",
    "repro.core",
    "repro.filtering",
    "repro.dynamics",
)
_DEFAULT_PLANNER: Tuple[str, ...] = (
    "repro.planners",
    "repro.scenarios",
    "repro.core",
)
_DEFAULT_UNITS: Tuple[str, ...] = (
    "repro.scenarios",
    "repro.dynamics",
    "repro.core",
    "repro.filtering",
)
_DEFAULT_DIM: Tuple[str, ...] = (
    "repro.dynamics",
    "repro.filtering",
    "repro.scenarios",
    "repro.planners",
    "repro.sensing",
    "repro.core",
)
_DEFAULT_SHAPE: Tuple[str, ...] = (
    "repro.nn",
    "repro.filtering",
    "repro.dynamics",
    "repro.scenarios",
    "repro.sim",
)
_DEFAULT_FLOW: Tuple[str, ...] = (
    "repro.sim",
    "repro.planners",
    "repro.filtering",
    "repro.dynamics",
    "repro.comm",
)


@dataclass(frozen=True)
class LintConfig:
    """Everything the engine needs besides the paths to lint.

    Attributes
    ----------
    select:
        Rule-id prefixes to run; ``None`` means every registered rule.
    ignore:
        Rule-id prefixes to skip (applied after ``select``).
    baseline:
        Path of the grandfathering baseline file, if any.
    exclude:
        Path fragments; any file whose path contains one as a segment
        sequence is skipped (``tests/lint_fixtures`` keeps the
        deliberately-bad fixtures out of the gate).
    critical_packages, sim_packages, math_packages, planner_packages,
    units_packages, dim_packages, shape_packages, flow_packages:
        Dotted module prefixes defining each rule scope.
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    baseline: Optional[Path] = None
    exclude: Tuple[str, ...] = ()
    critical_packages: Tuple[str, ...] = _DEFAULT_CRITICAL
    sim_packages: Tuple[str, ...] = _DEFAULT_SIM
    math_packages: Tuple[str, ...] = _DEFAULT_MATH
    planner_packages: Tuple[str, ...] = _DEFAULT_PLANNER
    units_packages: Tuple[str, ...] = _DEFAULT_UNITS
    dim_packages: Tuple[str, ...] = _DEFAULT_DIM
    shape_packages: Tuple[str, ...] = _DEFAULT_SHAPE
    flow_packages: Tuple[str, ...] = _DEFAULT_FLOW

    def packages_for(self, scope: str) -> Tuple[str, ...]:
        """The module-prefix list of a named scope (empty for ``all``)."""
        return {
            "all": (),
            "critical": self.critical_packages,
            "sim": self.sim_packages,
            "math": self.math_packages,
            "planner": self.planner_packages,
            "units": self.units_packages,
            "dim": self.dim_packages,
            "shape": self.shape_packages,
            "flow": self.flow_packages,
        }[scope]

    def module_in_scope(self, module: str, scope: str) -> bool:
        """Whether ``module`` falls inside a rule's scope."""
        prefixes = self.packages_for(scope)
        if not prefixes:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def rule_enabled(self, rule_id: str) -> bool:
        """Whether a rule survives ``select``/``ignore``.

        Entries match by prefix, so ``SFL1`` covers the whole
        SFL100–SFL105 family while ``SFL001`` (zero-padded) still names
        exactly one rule.
        """
        if any(rule_id.startswith(prefix) for prefix in self.ignore):
            return False
        return self.select is None or any(
            rule_id.startswith(prefix) for prefix in self.select
        )

    def path_excluded(self, path: str) -> bool:
        """Whether a POSIX path matches an ``exclude`` fragment."""
        padded = f"/{path.strip('/')}/"
        return any(
            f"/{fragment.strip('/')}/" in padded
            for fragment in self.exclude
            if fragment.strip("/")
        )


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _get_list(table: dict, key: str) -> Optional[Tuple[str, ...]]:
    value = table.get(key, table.get(key.replace("-", "_")))
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintError(f"[tool.safelint] {key} must be a list of strings")
    return tuple(value)


def load_project_config(pyproject: Path) -> LintConfig:
    """Build a :class:`LintConfig` from a ``pyproject.toml``.

    A missing ``[tool.safelint]`` table yields the defaults; a malformed
    one raises :class:`~repro.errors.LintError`.
    """
    try:
        with pyproject.open("rb") as handle:
            document = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise LintError(f"unreadable {pyproject}: {exc}") from exc
    table = document.get("tool", {}).get("safelint", {})
    if not isinstance(table, dict):
        raise LintError("[tool.safelint] must be a table")

    config = LintConfig()
    select = _get_list(table, "select")
    if select is not None:
        config = replace(config, select=frozenset(select))
    ignore = _get_list(table, "ignore")
    if ignore is not None:
        config = replace(config, ignore=frozenset(ignore))
    baseline = table.get("baseline")
    if baseline is not None:
        if not isinstance(baseline, str):
            raise LintError("[tool.safelint] baseline must be a string path")
        config = replace(config, baseline=pyproject.parent / baseline)
    exclude = _get_list(table, "exclude")
    if exclude is not None:
        config = replace(config, exclude=exclude)
    for key, attr in (
        ("critical-packages", "critical_packages"),
        ("sim-packages", "sim_packages"),
        ("math-packages", "math_packages"),
        ("planner-packages", "planner_packages"),
        ("units-packages", "units_packages"),
        ("dim-packages", "dim_packages"),
        ("shape-packages", "shape_packages"),
        ("flow-packages", "flow_packages"),
    ):
        value = _get_list(table, key)
        if value is not None:
            config = replace(config, **{attr: value})
    return config
