"""Inline suppression comments.

Two forms, mirroring the conventions of pylint/ruff:

* ``# safelint: disable=SFL001,SFL007`` on (or at the end of) a line
  suppresses those rules **on that line only**; ``# safelint: disable``
  with no ``=`` suppresses every rule on the line.
* ``# safelint: disable-file=SFL008`` anywhere in the file suppresses
  the listed rules for the **whole file** (``disable-file`` with no
  ``=`` disables everything — reserve it for generated code).

Suppressions are the reviewed, in-tree escape hatch for *intentional*
deviations (e.g. a deliberately unclamped test-fixture planner); the
baseline file (:mod:`repro.lint.baseline`) is for grandfathering
findings during adoption.  Prefer the comment: it sits next to the code
it excuses and dies with it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Sequence

__all__ = ["SuppressionMap", "parse_suppressions", "ALL_RULES"]

#: Sentinel rule id meaning "every rule".
ALL_RULES = "*"

_DIRECTIVE = re.compile(
    r"#\s*safelint:\s*(?P<kind>disable(?:-file)?)"
    r"\s*(?:=\s*(?P<ids>[A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*))?"
)


@dataclass(frozen=True)
class SuppressionMap:
    """Parsed suppression directives of one source file.

    Attributes
    ----------
    by_line:
        1-based line number -> frozen set of suppressed rule ids (may
        contain :data:`ALL_RULES`).
    file_wide:
        Rule ids suppressed for the whole file.
    """

    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_wide: FrozenSet[str] = frozenset()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is suppressed at ``line``."""
        if ALL_RULES in self.file_wide or rule_id in self.file_wide:
            return True
        ids = self.by_line.get(line)
        if ids is None:
            return False
        return ALL_RULES in ids or rule_id in ids


def _parse_ids(raw: str | None) -> FrozenSet[str]:
    if raw is None:
        return frozenset({ALL_RULES})
    ids = {part.strip() for part in raw.split(",") if part.strip()}
    return frozenset(ids) if ids else frozenset({ALL_RULES})


def parse_suppressions(lines: Sequence[str]) -> SuppressionMap:
    """Extract the suppression map from raw source lines.

    The scan is purely lexical (a directive inside a string literal
    would count); in exchange it is robust to code that does not parse,
    cheap, and independent of the AST pass.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    file_wide: FrozenSet[str] = frozenset()
    for number, text in enumerate(lines, start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        ids = _parse_ids(match.group("ids"))
        if match.group("kind") == "disable-file":
            file_wide = file_wide | ids
        else:
            by_line[number] = by_line.get(number, frozenset()) | ids
    return SuppressionMap(by_line=by_line, file_wide=file_wide)
