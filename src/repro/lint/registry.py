"""The rule registry.

Every rule module registers its visitor class with :func:`register`;
the engine asks :func:`all_rules` for the catalogue.  Keeping
registration declarative (a decorator on the class) means adding a rule
is: write the visitor, decorate it, import the module from
``repro.lint.rules`` — the engine, CLI, ``--list-rules`` and the docs
generator pick it up with no further wiring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Type

from repro.errors import LintError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.rules.base import Rule

__all__ = ["register", "all_rules", "get_rule", "rule_ids"]

_REGISTRY: Dict[str, Type["Rule"]] = {}


def register(rule_class: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the registry.

    Raises
    ------
    LintError
        On a duplicate or malformed rule id (ids are the public,
        suppression-comment-facing contract, so collisions are bugs).
    """
    rule_id = getattr(rule_class, "rule_id", "")
    if not rule_id or not rule_id.startswith("SFL"):
        raise LintError(
            f"rule class {rule_class.__name__} must define a rule_id "
            "of the form 'SFLxxx'"
        )
    if rule_id in _REGISTRY:
        raise LintError(
            f"duplicate rule id {rule_id} "
            f"({_REGISTRY[rule_id].__name__} vs {rule_class.__name__})"
        )
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Type["Rule"]]:
    """Every registered rule class, ordered by rule id."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    """The sorted registered rule ids."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Type["Rule"]:
    """Look a rule up by id.

    Raises
    ------
    LintError
        If the id is unknown (e.g. a typo in ``--select``).
    """
    _ensure_loaded()
    try:
        return _REGISTRY[rule_id]
    except KeyError as exc:
        raise LintError(
            f"unknown rule id {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from exc


def _ensure_loaded() -> None:
    """Import the rule package so decorators have run."""
    import repro.lint.rules  # noqa: F401  (import-for-side-effect)
