"""The shared intraprocedural abstract-interpretation skeleton.

The dim pass (SFL100–SFL105) and the shape pass (SFL200–SFL205) are
the same analysis over different lattices: seed an environment from the
function's declared parameter facts, interpret statements in order,
interpret branches on copies of the environment and merge with the
lattice join so a name that differs across paths degrades to *unknown*
instead of guessing.  This module holds that skeleton once.

:class:`AbstractInterpreter` is parameterised by three hooks —
:meth:`~AbstractInterpreter.unknown` (the no-information value),
:meth:`~AbstractInterpreter.join_values` (the least upper bound), and
the ``_eval_*`` expression methods each domain supplies.  Statement
handling (assignment targets, control-flow merging, loops widened to
one join with the pre-state, opaque nested defs) is identical across
domains and lives here; domains override only the statements where
their checks attach (``Return``, ``AnnAssign``, augmented assignment,
attribute stores).

The expression fallback mirrors the statement fallback: an unmodelled
node evaluates its child expressions for their side effects (nested
calls and comparisons still get checked) and yields no information.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "AbstractInterpreter",
    "dotted_chain",
    "assigned_names",
    "iter_functions",
]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_chain(node: ast.expr) -> Optional[List[str]]:
    """Flatten a pure Name/Attribute chain to its parts, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def assigned_names(target: ast.expr) -> Iterator[str]:
    """Yield plain names bound by an assignment/loop target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from assigned_names(target.value)


def iter_functions(
    tree: ast.Module,
) -> List[Tuple[Optional[str], _FuncNode]]:
    """Module-level functions and class methods, with owning class."""
    found: List[Tuple[Optional[str], _FuncNode]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            found.append((None, node))
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    found.append((node.name, member))
    return found


class AbstractInterpreter:
    """One abstract interpretation of one function body.

    Subclasses hold their own construction signature; they must set
    ``self.func`` (the function node, used as the fallback location for
    reports) and may pre-seed ``self.env`` before calling :meth:`run`.
    """

    def __init__(self, func: _FuncNode) -> None:
        self.func = func
        self.env: Dict[str, Any] = {}

    # -- domain hooks ---------------------------------------------------
    def unknown(self) -> Any:
        """The no-information abstract value of this domain."""
        return None

    def join_values(self, a: Any, b: Any) -> Any:
        """Least upper bound used when control-flow paths merge."""
        raise NotImplementedError

    # -- expression evaluation -----------------------------------------
    def eval(self, node: Optional[ast.expr]) -> Any:
        """Abstract value of an expression (reporting on the way)."""
        if node is None:
            return self.unknown()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        # Unmodelled node: evaluate child expressions for their side
        # effects (nested comparisons/calls) and return no information.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return self.unknown()

    def _eval_Name(self, node: ast.Name) -> Any:
        return self.env.get(node.id, self.unknown())

    def _eval_IfExp(self, node: ast.IfExp) -> Any:
        self.eval(node.test)
        return self.join_values(self.eval(node.body), self.eval(node.orelse))

    def _eval_Tuple(self, node: ast.Tuple) -> Any:
        for element in node.elts:
            self.eval(element)
        return self.unknown()

    _eval_List = _eval_Tuple
    _eval_Set = _eval_Tuple

    def _eval_Dict(self, node: ast.Dict) -> Any:
        for key in node.keys:
            if key is not None:
                self.eval(key)
        for value in node.values:
            self.eval(value)
        return self.unknown()

    def _eval_Starred(self, node: ast.Starred) -> Any:
        self.eval(node.value)
        return self.unknown()

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> Any:
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                self.eval(value.value)
        return self.unknown()

    def _eval_Lambda(self, node: ast.Lambda) -> Any:
        return self.unknown()

    def _eval_comprehension_like(self, node) -> Any:
        for generator in node.generators:
            self.eval(generator.iter)
            for name in assigned_names(generator.target):
                self.env[name] = self.unknown()
            for condition in generator.ifs:
                self.eval(condition)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
            self.eval(node.value)
        else:
            self.eval(node.elt)
        return self.unknown()

    _eval_ListComp = _eval_comprehension_like
    _eval_SetComp = _eval_comprehension_like
    _eval_GeneratorExp = _eval_comprehension_like
    _eval_DictComp = _eval_comprehension_like

    # -- statement interpretation --------------------------------------
    def run(self) -> None:
        """Interpret the function body."""
        self._exec_block(self.func.body)

    def _exec_block(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self._exec(statement)

    def _exec(self, statement: ast.stmt) -> None:
        method = getattr(
            self, f"_exec_{type(statement).__name__}", None
        )
        if method is not None:
            method(statement)
            return
        # Unmodelled statement: evaluate its expressions.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                self.eval(child)

    def _exec_Expr(self, statement: ast.Expr) -> None:
        self.eval(statement.value)

    def _exec_Assign(self, statement: ast.Assign) -> None:
        if (
            isinstance(statement.value, ast.Tuple)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], (ast.Tuple, ast.List))
            and len(statement.targets[0].elts)
            == len(statement.value.elts)
        ):
            element_values = [
                self.eval(element) for element in statement.value.elts
            ]
            for target, value in zip(
                statement.targets[0].elts, element_values
            ):
                self._bind_target(target, value)
            return
        value = self.eval(statement.value)
        for target in statement.targets:
            self._bind_target(target, value)

    def _bind_target(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, self.unknown())
        elif isinstance(target, ast.Attribute):
            self._store_attribute(target, value)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, self.unknown())
        elif isinstance(target, ast.Subscript):
            self.eval(target.value)

    def _store_attribute(self, target: ast.Attribute, value: Any) -> None:
        """Hook for ``obj.attr = value`` stores (domains attach checks)."""
        self.eval(target.value)

    def _exec_AugAssign(self, statement: ast.AugAssign) -> None:
        value = self.eval(statement.value)
        if isinstance(statement.target, ast.Name):
            current = self.env.get(statement.target.id, self.unknown())
        elif isinstance(statement.target, ast.Attribute):
            current = self.eval(statement.target)
        else:
            current = self.unknown()
        result = self._augmented_result(statement, current, value)
        if isinstance(statement.target, ast.Name):
            self.env[statement.target.id] = result
        elif isinstance(statement.target, ast.Attribute):
            self._store_attribute(statement.target, result)

    def _augmented_result(
        self, statement: ast.AugAssign, current: Any, value: Any
    ) -> Any:
        """Abstract result of ``target op= value`` (domains add checks)."""
        return self.unknown()

    def _exec_If(self, statement: ast.If) -> None:
        self.eval(statement.test)
        self._merge_branches([statement.body, statement.orelse])

    def _exec_While(self, statement: ast.While) -> None:
        self.eval(statement.test)
        self._merge_branches([statement.body, []])
        self._exec_block(statement.orelse)

    def _exec_For(self, statement: ast.For) -> None:
        self.eval(statement.iter)
        before = dict(self.env)
        for name in assigned_names(statement.target):
            self.env[name] = self.unknown()
        self._exec_block(statement.body)
        self._merge_env(before)
        self._exec_block(statement.orelse)

    _exec_AsyncFor = _exec_For

    def _exec_With(self, statement: ast.With) -> None:
        for item in statement.items:
            self.eval(item.context_expr)
            if item.optional_vars is not None:
                for name in assigned_names(item.optional_vars):
                    self.env[name] = self.unknown()
        self._exec_block(statement.body)

    _exec_AsyncWith = _exec_With

    def _exec_Try(self, statement: ast.Try) -> None:
        branches = [statement.body]
        for handler in statement.handlers:
            branches.append(handler.body)
        self._merge_branches(branches)
        self._exec_block(statement.orelse)
        self._exec_block(statement.finalbody)

    def _exec_Assert(self, statement: ast.Assert) -> None:
        self.eval(statement.test)
        if statement.msg is not None:
            self.eval(statement.msg)

    def _exec_Raise(self, statement: ast.Raise) -> None:
        if statement.exc is not None:
            self.eval(statement.exc)

    def _exec_Delete(self, statement: ast.Delete) -> None:
        for target in statement.targets:
            if isinstance(target, ast.Name):
                self.env.pop(target.id, None)

    def _exec_FunctionDef(self, statement: ast.FunctionDef) -> None:
        # Nested defs are opaque: bind the name, skip the body (the
        # outer environment does not flow into closures soundly).
        self.env[statement.name] = self.unknown()

    _exec_AsyncFunctionDef = _exec_FunctionDef

    def _exec_ClassDef(self, statement: ast.ClassDef) -> None:
        self.env[statement.name] = self.unknown()

    def _exec_Global(self, statement: ast.Global) -> None:
        for name in statement.names:
            self.env[name] = self.unknown()

    _exec_Nonlocal = _exec_Global

    def _merge_branches(
        self, branch_bodies: Sequence[Sequence[ast.stmt]]
    ) -> None:
        """Interpret each branch on a copy and join the environments."""
        outcomes = []
        before = dict(self.env)
        for body in branch_bodies:
            self.env = dict(before)
            self._exec_block(body)
            outcomes.append(self.env)
        merged: Dict[str, Any] = {}
        keys = set()
        for outcome in outcomes:
            keys.update(outcome)
        for key in keys:
            value: Any = None
            first = True
            for outcome in outcomes:
                branch_value = outcome.get(key, self.unknown())
                value = (
                    branch_value
                    if first
                    else self.join_values(value, branch_value)
                )
                first = False
            merged[key] = value
        self.env = merged

    def _merge_env(self, other: Dict[str, Any]) -> None:
        """Join the current environment with ``other`` in place."""
        for key in set(self.env) | set(other):
            self.env[key] = self.join_values(
                self.env.get(key, self.unknown()), other.get(key, self.unknown())
            )
