"""Extraction of shape declarations from function definitions.

Two equivalent, machine-checked spellings (the repo convention, see
docs/API.md), mirroring the unit declarations of the dim pass:

* a ``Shapes:`` directive line in the docstring::

      Shapes: x [B,4], gain [2,2] -> [B,2]

  Entries are comma-separated ``name [spec]`` pairs (commas inside the
  brackets belong to the spec); an optional trailing ``-> [spec]``
  declares the return shape.  ``scalar`` and ``array`` are bare
  keywords: ``Shapes: dt scalar``.  A function may carry several
  ``Shapes:`` lines (they merge).

* an ``Annotated`` type hint whose metadata carries a shape string::

      def forward(self, x: Annotated[np.ndarray, "[B,4; f8]"]): ...

Both feed :func:`extract_function_shapes`; malformed or misaddressed
declarations come back as issues (surfaced as SFL204) rather than being
silently ignored.

The directive/``Annotated`` plumbing is shared with the dim pass
(:mod:`repro.lint.specs`); only the shape grammar
(:func:`repro.lint.shape.lattice.parse_shape`) lives in this package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.lint.shape.lattice import Shape, parse_shape
from repro.lint.specs import (
    SpecIssue,
    directive_pattern,
    docstring_lines,
    parse_directive_payload,
    spec_from_annotated,
)

__all__ = ["FunctionShapes", "ShapeIssue", "extract_function_shapes"]

#: A shape-annotation problem is a plain spec issue.
ShapeIssue = SpecIssue

_SHAPES_LINE = directive_pattern("Shapes")


def _parse_shape_metadata(text: str, bracketed: bool) -> Optional[Shape]:
    """``Annotated`` metadata grammar, skipping unit specs quietly.

    A parameter may carry ``Annotated[float, "[s]"]`` for the dim pass;
    that string is not a broken shape declaration, so anything passing
    the *unit* grammar yields ``None`` (keep scanning) instead of an
    issue.  The unit grammar is consulted first so the one overlapping
    spelling — ``"[1]"``, dimensionless *and* a length-1 vector — reads
    as the far more common unit.
    """
    from repro.lint.dim.lattice import UnitSyntaxError, parse_unit

    try:
        parse_unit(text)
    except UnitSyntaxError:
        return parse_shape(text, bracketed)
    return None


@dataclass(frozen=True)
class FunctionShapes:
    """The declared shapes of one function.

    Attributes
    ----------
    param_order:
        Positional parameter names in call order (including ``self``
        for methods, which callers skip when resolving ``obj.m(...)``).
    params:
        Parameter name -> declared :class:`Shape`.
    returns:
        Declared return shape, if any.
    issues:
        Malformed or misaddressed declarations found during extraction.
    """

    param_order: Tuple[str, ...] = ()
    params: Dict[str, Shape] = field(default_factory=dict)
    returns: Optional[Shape] = None
    issues: Tuple[ShapeIssue, ...] = ()

    @property
    def has_declarations(self) -> bool:
        """Whether anything at all was declared."""
        return bool(self.params) or self.returns is not None


def _shape_from_annotated(
    annotation: Optional[ast.expr],
    issues: List[ShapeIssue],
) -> Optional[Shape]:
    """Shape spec carried by ``Annotated`` metadata, if any."""
    return spec_from_annotated(
        annotation, parse_spec=_parse_shape_metadata, issues=issues
    )


def extract_function_shapes(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> FunctionShapes:
    """Collect the declared shapes of ``func``.

    ``Annotated`` hints win over docstring entries for the same
    parameter (they are closer to the code), though in practice the
    repo uses one spelling per function.
    """
    issues: List[ShapeIssue] = []
    positional = [*func.args.posonlyargs, *func.args.args]
    param_order = tuple(arg.arg for arg in positional)
    every_arg = [
        *positional,
        *func.args.kwonlyargs,
        *([func.args.vararg] if func.args.vararg else []),
        *([func.args.kwarg] if func.args.kwarg else []),
    ]
    known_names = frozenset(arg.arg for arg in every_arg)

    params: Dict[str, Shape] = {}
    returns: Optional[Shape] = None
    for line, text in docstring_lines(func):
        match = _SHAPES_LINE.match(text)
        if match is None:
            continue
        declared = parse_directive_payload(
            match.group("payload"),
            line,
            directive="Shapes",
            parse_spec=parse_shape,
            known_names=known_names,
            params=params,
            issues=issues,
        )
        if declared is not None:
            returns = declared

    for arg in every_arg:
        shape = _shape_from_annotated(arg.annotation, issues)
        if shape is not None:
            params[arg.arg] = shape
    annotated_return = _shape_from_annotated(func.returns, issues)
    if annotated_return is not None:
        returns = annotated_return

    return FunctionShapes(
        param_order=param_order,
        params=params,
        returns=returns,
        issues=tuple(issues),
    )
