"""The cross-module shape-signature table.

The shape pass is *intra*procedural — it never inlines callees — but
call sites are still checked against the callee's declared shapes, and
returned shapes flow from the callee's ``->`` declaration.  The engine
builds one :class:`ShapeTable` per run, indexing every function, method
and dataclass constructor of every linted file by fully-qualified
dotted name, exactly like the dim pass's
:class:`~repro.lint.dim.signatures.SignatureTable`.

Method calls on objects of unknown type resolve through the
*unambiguous-method-name* index: if every declaration of that method
name across the run agrees, the call is checked against it;
conflicting homonyms disable the check rather than guess.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.lint.shape.annotations import (
    FunctionShapes,
    ShapeIssue,
    _shape_from_annotated,
    extract_function_shapes,
)
from repro.lint.shape.lattice import Shape

__all__ = ["ShapeTable", "build_shape_table"]

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Sentinel marking a method name declared incompatibly in two classes.
_CONFLICT = object()


def _class_field_shapes(node: ast.ClassDef) -> FunctionShapes:
    """Constructor-like shapes of a class from its fields and docstring.

    Dataclasses have no ``__init__`` in the AST; their keyword interface
    is the ordered annotated fields.  Field shapes come from a
    ``Shapes:`` directive in the *class* docstring (same grammar as
    functions) or an ``Annotated`` field hint.
    """
    order = []
    params: Dict[str, Shape] = {}
    issues: list = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            name = statement.target.id
            if name.isupper():
                continue  # class-level constant, not a field
            order.append(name)

    docstring = ast.get_docstring(node, clean=False) or ""
    if "Shapes:" in docstring:
        # Reuse the function-level parser by faking a function whose
        # parameters are the field names.
        shim = ast.parse(
            "def _shim({}):\n    pass".format(", ".join(order))
        ).body[0]
        assert isinstance(shim, ast.FunctionDef)
        shim.body.insert(
            0, ast.Expr(value=ast.Constant(value=docstring))
        )
        ast.fix_missing_locations(shim)
        extracted = extract_function_shapes(shim)
        params.update(extracted.params)
        base_line = node.body[0].lineno if node.body else node.lineno
        issues.extend(
            ShapeIssue(base_line, issue.message)
            for issue in extracted.issues
        )

    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            shape = _shape_from_annotated(statement.annotation, issues)
            if shape is not None:
                params[statement.target.id] = shape

    return FunctionShapes(
        param_order=tuple(order),
        params=params,
        returns=None,
        issues=tuple(issues),
    )


class ShapeTable:
    """Declared shapes of every function/method/class in a lint run."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionShapes] = {}
        self._by_method_name: Dict[str, object] = {}

    def add_module(self, module: str, tree: ast.Module) -> None:
        """Index one parsed module."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._functions[f"{module}.{node.name}"] = (
                    extract_function_shapes(node)
                )
            elif isinstance(node, ast.ClassDef):
                self._functions[f"{module}.{node.name}"] = (
                    _class_field_shapes(node)
                )
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        shapes = extract_function_shapes(member)
                        self._functions[
                            f"{module}.{node.name}.{member.name}"
                        ] = shapes
                        self._index_method(member.name, shapes)

    def _index_method(self, name: str, shapes: FunctionShapes) -> None:
        existing = self._by_method_name.get(name)
        if existing is None:
            self._by_method_name[name] = shapes
        elif existing is not _CONFLICT:
            assert isinstance(existing, FunctionShapes)
            same = (
                existing.params == shapes.params
                and existing.returns == shapes.returns
                and existing.param_order == shapes.param_order
            )
            if not same:
                self._by_method_name[name] = _CONFLICT

    def lookup(self, dotted: str) -> Optional[FunctionShapes]:
        """Shapes of a fully-qualified function/method/class, if indexed."""
        return self._functions.get(dotted)

    def lookup_method(self, name: str) -> Optional[FunctionShapes]:
        """Shapes of a method name unambiguous across the whole run."""
        found = self._by_method_name.get(name)
        if found is _CONFLICT or found is None:
            return None
        assert isinstance(found, FunctionShapes)
        return found

    def __len__(self) -> int:
        return len(self._functions)


def build_shape_table(
    modules: Iterable[Tuple[str, ast.Module]],
) -> ShapeTable:
    """Index every ``(module_name, parsed_tree)`` pair into one table."""
    table = ShapeTable()
    for module, tree in modules:
        table.add_module(module, tree)
    return table
