"""safeshape: static array shape/dtype analysis (SFL200–SFL205).

The vectorized batch engine on the roadmap turns every per-scenario
scalar path into ``[B, ...]`` array algebra; a transposed gain or a
silently broadcast residual there produces *plausible* numbers, not
exceptions.  This package certifies the path: an abstract shape
lattice (:mod:`~repro.lint.shape.lattice`), shape declarations shared
between docstrings and ``Annotated`` hints
(:mod:`~repro.lint.shape.annotations`), a cross-module signature table
(:mod:`~repro.lint.shape.signatures`), and an intraprocedural abstract
interpreter modeling the repo's numpy surface
(:mod:`~repro.lint.shape.checker`).
"""

from repro.lint.shape.annotations import (
    FunctionShapes,
    ShapeIssue,
    extract_function_shapes,
)
from repro.lint.shape.checker import ShapeViolation, analyze
from repro.lint.shape.lattice import (
    ANY_ARRAY,
    SCALAR,
    UNKNOWN,
    Shape,
    ShapeSyntaxError,
    broadcast,
    format_shape,
    join,
    matmul,
    parse_shape,
)
from repro.lint.shape.signatures import ShapeTable, build_shape_table

__all__ = [
    "ANY_ARRAY",
    "SCALAR",
    "UNKNOWN",
    "FunctionShapes",
    "Shape",
    "ShapeIssue",
    "ShapeSyntaxError",
    "ShapeTable",
    "ShapeViolation",
    "analyze",
    "broadcast",
    "build_shape_table",
    "extract_function_shapes",
    "format_shape",
    "join",
    "matmul",
    "parse_shape",
]
