"""Curated numpy knowledge of the safeshape pass.

The checker models exactly the numpy surface this repo's kinematics,
filtering and nn core actually use — array builders, elementwise ufuncs
with broadcasting, axis reductions, linear algebra, and the reshaping
family.  Everything else evaluates to *unknown* and stays silent; the
pass is optimistic by construction.

Tables, not code: keeping the knowledge declarative makes the modeled
surface auditable at a glance and trivially extensible when the
vectorized batch engine pulls in new idioms.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "ELEMENTWISE_UNARY",
    "ELEMENTWISE_BINARY",
    "ELEMENTWISE_TERNARY",
    "REDUCTIONS",
    "BUILDER_FUNCS",
    "LIKE_FUNCS",
    "PASSTHROUGH_FUNCS",
    "MATMUL_FUNCS",
    "SAME_SHAPE_METHODS",
    "FLATTEN_METHODS",
    "SCALAR_METHODS",
    "ARRAY_PARAM_NAMES",
]

#: numpy functions applying one array elementwise (shape-preserving).
ELEMENTWISE_UNARY: FrozenSet[str] = frozenset({
    "abs",
    "absolute",
    "arccos",
    "arcsin",
    "arctan",
    "cbrt",
    "ceil",
    "cos",
    "cosh",
    "exp",
    "expm1",
    "floor",
    "isfinite",
    "isinf",
    "isnan",
    "log",
    "log1p",
    "log2",
    "log10",
    "negative",
    "reciprocal",
    "rint",
    "sign",
    "sin",
    "sinh",
    "sqrt",
    "square",
    "tan",
    "tanh",
})

#: numpy functions combining two arrays by broadcasting.
ELEMENTWISE_BINARY: FrozenSet[str] = frozenset({
    "add",
    "arctan2",
    "divide",
    "equal",
    "fmax",
    "fmin",
    "greater",
    "greater_equal",
    "hypot",
    "less",
    "less_equal",
    "logical_and",
    "logical_or",
    "maximum",
    "minimum",
    "mod",
    "multiply",
    "not_equal",
    "power",
    "subtract",
    "true_divide",
})

#: numpy functions combining three arrays by broadcasting.
ELEMENTWISE_TERNARY: FrozenSet[str] = frozenset({"clip", "where"})

#: Axis reductions (function and method spellings share this set).
REDUCTIONS: FrozenSet[str] = frozenset({
    "all",
    "any",
    "argmax",
    "argmin",
    "max",
    "mean",
    "median",
    "min",
    "nanmax",
    "nanmean",
    "nanmin",
    "nansum",
    "prod",
    "std",
    "sum",
    "var",
})

#: Builders whose first argument is the result shape.
BUILDER_FUNCS: FrozenSet[str] = frozenset({"zeros", "ones", "empty", "full"})

#: Builders copying another array's shape.
LIKE_FUNCS: FrozenSet[str] = frozenset({
    "zeros_like",
    "ones_like",
    "empty_like",
    "full_like",
})

#: Functions returning their first argument's shape unchanged.
PASSTHROUGH_FUNCS: FrozenSet[str] = frozenset({
    "asarray",
    "ascontiguousarray",
    "asfarray",
    "atleast_1d",
    "copy",
    "nan_to_num",
    "sort",
})

#: Function spellings of the matmul contraction.
MATMUL_FUNCS: FrozenSet[str] = frozenset({"matmul", "dot"})

#: Array methods preserving shape (dtype untouched unless noted).
SAME_SHAPE_METHODS: FrozenSet[str] = frozenset({"copy", "clip", "round"})

#: Array methods collapsing to rank 1 of unknown extent.
FLATTEN_METHODS: FrozenSet[str] = frozenset({"ravel", "flatten"})

#: Array methods returning a scalar.
SCALAR_METHODS: FrozenSet[str] = frozenset({"item", "trace"})

#: Parameter names that strongly suggest an array API even without an
#: ``ndarray`` annotation; used by the SFL204 coverage rule.
ARRAY_PARAM_NAMES: FrozenSet[str] = frozenset({
    "matrix",
    "weights",
    "gain",
    "covariance",
})
