"""The array-shape lattice of the safeshape pass.

An abstract *shape* is what the checker knows statically about a numpy
value: its rank, its per-axis extents, and its dtype.  Each axis is one
of

* a concrete ``int`` extent (``2`` in ``[2,2]``),
* a *symbolic* name (``"B"`` in ``[B,4]``) standing for an extent that
  is fixed per call but unknown statically — the batch axis of the
  planner stack, the horizon ``N`` of a rollout, and
* :data:`None` — an unknown extent (spelled ``?`` in annotations).

The value lattice has three levels of information:

* :data:`UNKNOWN` (``None``) — nothing known, absorbs everything;
* ``Shape(dims=None)`` — known to be an array, rank unknown;
* ``Shape(dims=(...))`` — known rank with per-axis knowledge; rank 0
  (``dims=()``) is a scalar.

Dtypes are canonical short tokens (``f8``, ``f4``, ``f2``, ``i8``,
``i4``, ``bool``, ...) ordered by information capacity so the checker
can call ``f4 += f8`` a narrowing accumulation.  ``None`` means the
dtype is unknown.

:func:`broadcast` implements numpy's general broadcasting (align right,
1-extends) and additionally reports the *mutual-stretch* criterion used
by SFL201: an elementwise result whose shape differs from **both**
operands — ``(2,1) + (2,) -> (2,2)`` — is almost always an orientation
bug (row vector meets column vector), while one-sided stretching such
as the ``(B,2) + (2,)`` bias-add idiom is the bread and butter of numpy
code and stays silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.lint.specs import SpecSyntaxError

__all__ = [
    "Axis",
    "Shape",
    "SCALAR",
    "ANY_ARRAY",
    "UNKNOWN",
    "AbstractShape",
    "ShapeSyntaxError",
    "parse_shape",
    "format_shape",
    "join",
    "join_axis",
    "is_shape",
    "broadcast",
    "BroadcastResult",
    "matmul",
    "MatmulResult",
    "normalize_dtype",
    "dtype_order",
    "promote_dtype",
]

#: One axis: concrete extent, symbolic name, or unknown (``?``).
Axis = Union[int, str, None]


class ShapeSyntaxError(SpecSyntaxError):
    """A shape spec that does not follow the grammar."""


#: Canonical dtype tokens, ordered by information capacity.  The order
#: backs the SFL203 narrowing check: accumulating a later token into a
#: variable holding an earlier one silently loses precision.
_DTYPE_RANK = {
    "bool": 0,
    "u1": 1,
    "i1": 1,
    "u2": 2,
    "i2": 2,
    "u4": 3,
    "i4": 3,
    "u8": 4,
    "i8": 4,
    "f2": 5,
    "f4": 6,
    "f8": 7,
    "c8": 8,
    "c16": 9,
}

#: Accepted spellings -> canonical token (numpy names and letter codes).
_DTYPE_ALIASES = {
    **{token: token for token in _DTYPE_RANK},
    "float64": "f8",
    "float32": "f4",
    "float16": "f2",
    "float": "f8",
    "double": "f8",
    "int64": "i8",
    "int32": "i4",
    "int16": "i2",
    "int8": "i1",
    "int": "i8",
    "uint8": "u1",
    "uint16": "u2",
    "uint32": "u4",
    "uint64": "u8",
    "bool_": "bool",
    "complex64": "c8",
    "complex128": "c16",
}


def normalize_dtype(text: str) -> Optional[str]:
    """Canonical dtype token for a spelling, or ``None`` if unknown."""
    return _DTYPE_ALIASES.get(text.strip())


def dtype_order(token: str) -> int:
    """Information-capacity rank of a canonical dtype token."""
    return _DTYPE_RANK[token]


def promote_dtype(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Result dtype of combining two operands (widest wins).

    Unknown (``None``) is contagious: if either side is unknown the
    result is unknown, keeping the pass optimistic.
    """
    if a is None or b is None:
        return None
    return a if _DTYPE_RANK[a] >= _DTYPE_RANK[b] else b


@dataclass(frozen=True, slots=True)
class Shape:
    """What is statically known about one array value.

    Attributes
    ----------
    dims:
        Per-axis extents, or ``None`` when only "is an array" is known.
        ``()`` is a scalar (rank 0).
    dtype:
        Canonical dtype token, or ``None`` when unknown.
    """

    dims: Optional[Tuple[Axis, ...]]
    dtype: Optional[str] = None

    @property
    def rank(self) -> Optional[int]:
        """Number of axes, or ``None`` when the rank is unknown."""
        return None if self.dims is None else len(self.dims)

    @property
    def is_scalar(self) -> bool:
        """Whether this is a known rank-0 value."""
        return self.dims == ()

    def with_dims(self, dims: Optional[Tuple[Axis, ...]]) -> "Shape":
        """Same dtype, different dims."""
        return Shape(dims=dims, dtype=self.dtype)

    def __str__(self) -> str:
        return format_shape(self)


#: A known scalar of unknown dtype.
SCALAR = Shape(dims=())

#: Known to be an array; rank and dtype unknown.
ANY_ARRAY = Shape(dims=None)

#: The no-information abstract value.
UNKNOWN = None

#: What an expression may evaluate to in the abstract interpretation.
AbstractShape = Optional[Shape]


def is_shape(value: AbstractShape) -> bool:
    """Whether ``value`` carries any shape information at all."""
    return isinstance(value, Shape)


def _format_axis(axis: Axis) -> str:
    return "?" if axis is None else str(axis)


def format_shape(shape: Shape) -> str:
    """Canonical annotation-grammar rendering, for messages."""
    if shape.dims is None:
        body = "array"
    elif shape.dims == ():
        body = "scalar"
    else:
        body = "[" + ",".join(_format_axis(d) for d in shape.dims) + "]"
    if shape.dtype is not None:
        if body in ("array", "scalar"):
            return f"{body}; {shape.dtype}"
        return body[:-1] + f"; {shape.dtype}]"
    return body


def _parse_axis(token: str) -> Axis:
    token = token.strip()
    if token == "?":
        return None
    if token.lstrip("-").isdigit():
        value = int(token)
        if value < 0:
            raise ShapeSyntaxError(f"negative extent {token!r}")
        return value
    if token.isidentifier() and token[0].isupper():
        return token
    raise ShapeSyntaxError(
        f"bad axis {token!r} (want an int, an Uppercase-led symbolic "
        "name, or '?')"
    )


def parse_shape(text: str, bracketed: bool) -> Shape:
    """Parse one shape spec into a :class:`Shape`.

    The grammar (docs/LINTING.md)::

        spec  := "scalar" | "array" | "[" axes? (";" dtype)? "]"
        axes  := axis ("," axis)*
        axis  := INT | SYMBOL | "?"

    ``scalar`` and ``array`` are bare keywords (no brackets); bracketed
    forms are ``[B,4]``, ``[2,2]``, ``[N]``, ``[]`` (scalar), optionally
    with a dtype suffix: ``[B,4; f8]``.  Symbolic axes start with an
    uppercase letter — that is what keeps the shape grammar disjoint
    from the (lowercase) unit grammar, so ``[s]`` can never be misread
    as a rank-1 array.

    Raises
    ------
    ShapeSyntaxError
        On anything outside the grammar.
    """
    text = text.strip()
    if not bracketed:
        if text == "scalar":
            return SCALAR
        if text == "array":
            return ANY_ARRAY
        raise ShapeSyntaxError(
            f"bare shape keyword must be 'scalar' or 'array', got {text!r}"
        )
    body, semicolon, dtype_text = text.partition(";")
    dtype: Optional[str] = None
    if semicolon:
        dtype = normalize_dtype(dtype_text)
        if dtype is None:
            raise ShapeSyntaxError(
                f"unknown dtype {dtype_text.strip()!r} in shape spec"
            )
    body = body.strip()
    if not body:
        return Shape(dims=(), dtype=dtype)
    dims = tuple(_parse_axis(token) for token in body.split(","))
    return Shape(dims=dims, dtype=dtype)


def join_axis(left: Axis, right: Axis) -> Axis:
    """Least upper bound of two axes (differ -> unknown)."""
    return left if left == right else None


def join(a: AbstractShape, b: AbstractShape) -> AbstractShape:
    """Least upper bound used when control-flow paths merge."""
    if a is UNKNOWN or b is UNKNOWN:
        return UNKNOWN
    dtype = a.dtype if a.dtype == b.dtype else None
    if a.dims is None or b.dims is None or len(a.dims) != len(b.dims):
        return Shape(dims=None, dtype=dtype)
    dims = tuple(join_axis(x, y) for x, y in zip(a.dims, b.dims))
    return Shape(dims=dims, dtype=dtype)


@dataclass(frozen=True, slots=True)
class BroadcastResult:
    """Outcome of abstract broadcasting two operand shapes.

    Attributes
    ----------
    shape:
        The result shape (always a :class:`Shape`; unknown rank when an
        operand's rank is unknown).
    mismatch:
        The pair of concrete extents that can never broadcast, if any.
    mutual:
        Whether both operands were stretched (the SFL201 criterion).
    """

    shape: Shape
    mismatch: Optional[Tuple[int, int]] = None
    mutual: bool = False


def broadcast(a: Shape, b: Shape) -> BroadcastResult:
    """Numpy general broadcasting over abstract shapes.

    Axes align right; missing leading axes count as extent 1.  A pair
    of unequal concrete extents neither of which is 1 is a definite
    error (``mismatch``).  When each operand gets stretched along some
    axis by a concrete extent of the other — so the result matches
    *neither* input — ``mutual`` is set.
    """
    dtype = promote_dtype(a.dtype, b.dtype)
    if a.dims is None or b.dims is None:
        return BroadcastResult(shape=Shape(dims=None, dtype=dtype))
    rank = max(len(a.dims), len(b.dims))
    a_dims = (1,) * (rank - len(a.dims)) + a.dims
    b_dims = (1,) * (rank - len(b.dims)) + b.dims
    out = []
    a_stretched = b_stretched = False
    mismatch: Optional[Tuple[int, int]] = None
    for ax, bx in zip(a_dims, b_dims):
        if ax == bx:
            out.append(ax)
        elif ax == 1:
            out.append(bx)
            if isinstance(bx, int) and bx > 1:
                a_stretched = True
        elif bx == 1:
            out.append(ax)
            if isinstance(ax, int) and ax > 1:
                b_stretched = True
        elif isinstance(ax, int) and isinstance(bx, int):
            mismatch = mismatch or (ax, bx)
            out.append(None)
        else:
            # Symbolic vs concrete or two different symbols: either may
            # be 1 at runtime, so stay optimistic.
            out.append(None)
    return BroadcastResult(
        shape=Shape(dims=tuple(out), dtype=dtype),
        mismatch=mismatch,
        mutual=a_stretched and b_stretched,
    )


@dataclass(frozen=True, slots=True)
class MatmulResult:
    """Outcome of abstract ``a @ b``.

    Attributes
    ----------
    shape:
        The result shape.
    error:
        Human-readable description of a definite contraction error
        (inner-extent mismatch or a scalar operand), or ``None``.
    """

    shape: Shape
    error: Optional[str] = None


def _inner_conflict(ax: Axis, bx: Axis) -> bool:
    return isinstance(ax, int) and isinstance(bx, int) and ax != bx


def matmul(a: Shape, b: Shape) -> MatmulResult:
    """Numpy ``@`` semantics (vector promotion, batched leading axes)."""
    dtype = promote_dtype(a.dtype, b.dtype)
    if a.dims == () or b.dims == ():
        return MatmulResult(
            shape=Shape(dims=None, dtype=dtype),
            error="matmul does not accept scalar operands",
        )
    if a.dims is None or b.dims is None:
        return MatmulResult(shape=Shape(dims=None, dtype=dtype))
    a_dims, b_dims = a.dims, b.dims
    inner_a = a_dims[-1]
    inner_b = b_dims[0] if len(b_dims) == 1 else b_dims[-2]
    error = None
    if _inner_conflict(inner_a, inner_b):
        error = (
            f"inner extents {inner_a} and {inner_b} do not match "
            f"({format_shape(a)} @ {format_shape(b)})"
        )
    if len(a_dims) == 1 and len(b_dims) == 1:
        dims: Tuple[Axis, ...] = ()
    elif len(a_dims) == 1:
        dims = b_dims[:-2] + (b_dims[-1],)
    elif len(b_dims) == 1:
        dims = a_dims[:-1]
    else:
        lead = broadcast(
            Shape(dims=a_dims[:-2]), Shape(dims=b_dims[:-2])
        ).shape.dims
        if lead is None:  # pragma: no cover - both ranks known here
            lead = ()
        dims = lead + (a_dims[-2], b_dims[-1])
    return MatmulResult(shape=Shape(dims=dims, dtype=dtype), error=error)
