"""The safeshape abstract interpreter.

One intraprocedural pass per function over the shape lattice: the
environment maps local names to abstract shapes
(:class:`~repro.lint.shape.lattice.Shape` or ``UNKNOWN``), seeded from
the function's declared parameter shapes.  Statements are interpreted
in order on the shared skeleton of
:class:`repro.lint.interp.AbstractInterpreter`; this module supplies
the numpy expression semantics — ``@`` contraction, elementwise
broadcasting, builders, reductions, reshaping, indexing — and the
checks.

The pass is deliberately *optimistic*: it reports only definite
contradictions between two known facts (a concrete inner-extent
mismatch, a pair of extents that can never broadcast, an axis index
outside a known rank, an accumulator dtype strictly narrower than its
increment, a concrete extent contradicting a declaration).  Symbolic
extents unify rather than guess, so ``(B,2) + (2,)`` bias adds stay
silent while ``(2,1) + (2,)`` mutual stretches are flagged.

Violations carry a ``kind`` that the SFL200–SFL205 rule family splits
on; the analysis runs once per file and is cached across the six rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.lint.interp import AbstractInterpreter, dotted_chain, iter_functions
from repro.lint.shape.annotations import (
    FunctionShapes,
    _shape_from_annotated,
    extract_function_shapes,
)
from repro.lint.shape.domain import (
    BUILDER_FUNCS,
    ELEMENTWISE_BINARY,
    ELEMENTWISE_TERNARY,
    ELEMENTWISE_UNARY,
    FLATTEN_METHODS,
    LIKE_FUNCS,
    MATMUL_FUNCS,
    PASSTHROUGH_FUNCS,
    REDUCTIONS,
    SAME_SHAPE_METHODS,
    SCALAR_METHODS,
)
from repro.lint.shape.lattice import (
    ANY_ARRAY,
    SCALAR,
    UNKNOWN,
    AbstractShape,
    Axis,
    Shape,
    broadcast,
    dtype_order,
    format_shape,
    is_shape,
    join,
    matmul,
    normalize_dtype,
)
from repro.lint.shape.signatures import ShapeTable, build_shape_table
from repro.lint.dim.signatures import build_import_map

__all__ = ["ShapeViolation", "analyze"]

#: Violation kinds, consumed by the SFL200–SFL205 rule family.
KIND_MATMUL = "matmul"
KIND_BROADCAST = "broadcast"
KIND_AXIS = "axis"
KIND_DTYPE = "dtype"
KIND_MISSING = "missing"
KIND_BINDING = "binding"

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: numpy module attributes that are plain scalars.
_NUMPY_SCALAR_ATTRS = frozenset({"pi", "e", "inf", "nan", "euler_gamma"})

#: numpy scalar-type constructors (np.float64(x) and friends).
_NUMPY_SCALAR_TYPES = frozenset({
    "float64", "float32", "float16", "int64", "int32", "int16", "int8",
    "uint8", "bool_",
})


@dataclass(frozen=True, slots=True)
class ShapeViolation:
    """One shape/dtype inconsistency found by the pass."""

    line: int
    column: int
    kind: str
    message: str


def _dtype_from_node(node: Optional[ast.expr]) -> Optional[str]:
    """Canonical dtype of a ``dtype=`` argument node, best effort."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return normalize_dtype(node.value)
    if isinstance(node, ast.Attribute):
        return normalize_dtype(node.attr)
    if isinstance(node, ast.Name):
        return normalize_dtype(node.id)
    return None


def _literal_int(node: ast.expr) -> Optional[int]:
    """The value of an integer literal (incl. unary minus), if any."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_int(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _definite_conflict(
    declared: Shape,
    actual: Shape,
    bindings: Dict[str, Axis],
) -> Optional[str]:
    """Why ``actual`` can never satisfy ``declared``, or ``None``.

    Symbolic extents in ``declared`` unify through ``bindings`` (shared
    across a call site's arguments); a symbol bound to two different
    concrete extents is a conflict.  Anything unknown is compatible.
    """
    if declared.dims is None or actual.dims is None:
        return None
    if len(declared.dims) != len(actual.dims):
        return (
            f"rank {len(actual.dims)} value where rank "
            f"{len(declared.dims)} ({format_shape(declared)}) is declared"
        )
    for index, (want, got) in enumerate(zip(declared.dims, actual.dims)):
        if got is None:
            continue
        if isinstance(want, int):
            if isinstance(got, int) and want != got:
                return (
                    f"axis {index} has extent {got} where the "
                    f"declaration requires {want}"
                )
        elif isinstance(want, str):
            previous = bindings.get(want)
            if previous is None:
                bindings[want] = got
            elif (
                isinstance(previous, int)
                and isinstance(got, int)
                and previous != got
            ):
                return (
                    f"symbolic dim '{want}' already bound to {previous} "
                    f"but axis {index} has extent {got}"
                )
    return None


def _substitute(shape: Shape, bindings: Dict[str, Axis]) -> Shape:
    """Instantiate a declared shape with a call site's symbol bindings."""
    if shape.dims is None:
        return shape
    dims = tuple(
        bindings.get(dim) if isinstance(dim, str) else dim
        for dim in shape.dims
    )
    return Shape(dims=dims, dtype=shape.dtype)


class _FunctionInterpreter(AbstractInterpreter):
    """Abstract interpretation of one function body over shapes."""

    def __init__(
        self,
        module: str,
        class_name: Optional[str],
        func: _FuncNode,
        shapes: FunctionShapes,
        table: ShapeTable,
        imports: Dict[str, str],
        violations: List[ShapeViolation],
    ) -> None:
        super().__init__(func)
        self.module = module
        self.class_name = class_name
        self.shapes = shapes
        self.table = table
        self.imports = imports
        self.violations = violations
        all_args = [
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        ]
        for arg in all_args:
            self.env[arg.arg] = shapes.params.get(arg.arg, UNKNOWN)

    # -- lattice hooks --------------------------------------------------
    def unknown(self) -> AbstractShape:
        return UNKNOWN

    def join_values(self, a: AbstractShape, b: AbstractShape) -> AbstractShape:
        return join(a, b)

    # -- reporting ------------------------------------------------------
    def _report(self, node: ast.AST, kind: str, message: str) -> None:
        self.violations.append(
            ShapeViolation(
                line=getattr(node, "lineno", self.func.lineno),
                column=getattr(node, "col_offset", 0),
                kind=kind,
                message=message,
            )
        )

    # -- expression evaluation -----------------------------------------
    def _eval_Constant(self, node: ast.Constant) -> AbstractShape:
        if isinstance(node.value, (bool, int, float, complex)):
            # Python scalars are weakly typed: they adapt to the array
            # they meet (so ``f4_array + 1.0`` is not a widening).
            return SCALAR
        return UNKNOWN

    def _eval_Attribute(self, node: ast.Attribute) -> AbstractShape:
        value = self.eval(node.value)
        if node.attr == "T":
            if is_shape(value) and value.dims is not None:
                return value.with_dims(tuple(reversed(value.dims)))
            return value if is_shape(value) else UNKNOWN
        if node.attr in ("real", "imag"):
            return value if is_shape(value) else UNKNOWN
        if node.attr in ("ndim", "size"):
            return Shape(dims=(), dtype="i8") if is_shape(value) else UNKNOWN
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.class_name is not None
        ):
            own = self.table.lookup(f"{self.module}.{self.class_name}")
            if own is not None and node.attr in own.params:
                return own.params[node.attr]
        if node.attr in _NUMPY_SCALAR_ATTRS and isinstance(
            node.value, ast.Name
        ):
            if self.imports.get(node.value.id) == "numpy":
                return SCALAR
        return UNKNOWN

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> AbstractShape:
        operand = self.eval(node.operand)
        if isinstance(node.op, ast.Not):
            return SCALAR
        return operand

    def _eval_BoolOp(self, node: ast.BoolOp) -> AbstractShape:
        result: AbstractShape = self.eval(node.values[0])
        for value in node.values[1:]:
            result = join(result, self.eval(value))
        return result

    def _eval_BinOp(self, node: ast.BinOp) -> AbstractShape:
        left = self.eval(node.left)
        right = self.eval(node.right)
        if isinstance(node.op, ast.MatMult):
            return self._matmul(node, left, right)
        if isinstance(
            node.op,
            (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
             ast.Mod, ast.Pow),
        ):
            return self._elementwise(node, [left, right])
        return UNKNOWN

    def _matmul(
        self, node: ast.AST, left: AbstractShape, right: AbstractShape
    ) -> AbstractShape:
        if not is_shape(left) or not is_shape(right):
            return UNKNOWN
        result = matmul(left, right)
        if result.error is not None:
            self._report(node, KIND_MATMUL, result.error)
        return result.shape

    def _elementwise(
        self, node: ast.AST, operands: Sequence[AbstractShape]
    ) -> AbstractShape:
        """Broadcast-combine operands, reporting definite conflicts."""
        known = [value for value in operands if is_shape(value)]
        if len(known) != len(operands):
            return UNKNOWN
        result = known[0]
        for value in known[1:]:
            outcome = broadcast(result, value)
            if outcome.mismatch is not None:
                first, second = outcome.mismatch
                self._report(
                    node,
                    KIND_BROADCAST,
                    f"operands {format_shape(result)} and "
                    f"{format_shape(value)} can never broadcast "
                    f"(extents {first} vs {second})",
                )
            elif outcome.mutual:
                self._report(
                    node,
                    KIND_BROADCAST,
                    f"silent mutual broadcast: {format_shape(result)} "
                    f"and {format_shape(value)} stretch each other to "
                    f"{format_shape(outcome.shape)}, matching neither "
                    "operand — almost always a row/column orientation "
                    "bug",
                )
            result = outcome.shape
        return result

    def _eval_Compare(self, node: ast.Compare) -> AbstractShape:
        operands = [self.eval(item) for item in [node.left, *node.comparators]]
        result = self._elementwise(node, operands)
        if is_shape(result):
            return Shape(dims=result.dims, dtype="bool")
        return UNKNOWN

    # -- indexing -------------------------------------------------------
    def _eval_Subscript(self, node: ast.Subscript) -> AbstractShape:
        value = self.eval(node.value)
        items = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        for item in items:
            if not isinstance(item, ast.Slice):
                self.eval(item)
            else:
                for part in (item.lower, item.upper, item.step):
                    if part is not None:
                        self.eval(part)
        if not is_shape(value):
            return UNKNOWN
        if value.dims is None:
            return value
        dims = list(value.dims)
        out: List[Axis] = []
        position = 0
        for item in items:
            if self._is_newaxis(item):
                out.append(1)
                continue
            if isinstance(item, ast.Constant) and item.value is Ellipsis:
                # Give up on axis accounting but keep "is an array".
                return Shape(dims=None, dtype=value.dtype)
            if position >= len(dims):
                return Shape(dims=None, dtype=value.dtype)
            if isinstance(item, ast.Slice):
                out.append(self._sliced_axis(dims[position], item))
            elif isinstance(item, ast.List):
                # Fancy list index keeps the axis with unknown extent.
                out.append(None)
            # else: a scalar index (literal or variable) drops the axis.
            position += 1
        out.extend(dims[position:])
        return Shape(dims=tuple(out), dtype=value.dtype)

    @staticmethod
    def _is_newaxis(item: ast.expr) -> bool:
        if isinstance(item, ast.Constant) and item.value is None:
            return True
        return isinstance(item, ast.Attribute) and item.attr == "newaxis"

    @staticmethod
    def _sliced_axis(axis: Axis, item: ast.Slice) -> Axis:
        if item.lower is None and item.upper is None and item.step is None:
            return axis
        return None

    # -- calls ----------------------------------------------------------
    def _eval_Call(self, node: ast.Call) -> AbstractShape:
        arg_shapes = [self.eval(arg) for arg in node.args]
        keyword_shapes: Dict[str, AbstractShape] = {}
        for keyword in node.keywords:
            value = self.eval(keyword.value)
            if keyword.arg is not None:
                keyword_shapes[keyword.arg] = value

        func = node.func
        if isinstance(func, ast.Name):
            return self._call_name(node, func.id, arg_shapes, keyword_shapes)
        if isinstance(func, ast.Attribute):
            return self._call_attribute(node, func, arg_shapes, keyword_shapes)
        self.eval(func)
        return UNKNOWN

    def _call_name(
        self,
        node: ast.Call,
        name: str,
        arg_shapes: List[AbstractShape],
        keyword_shapes: Dict[str, AbstractShape],
    ) -> AbstractShape:
        fq = self.imports.get(name)
        if fq is None and self.table.lookup(f"{self.module}.{name}"):
            fq = f"{self.module}.{name}"
        if fq is not None:
            declared = self.table.lookup(fq)
            if declared is not None:
                return self._check_against_shapes(
                    node, name, declared, arg_shapes, keyword_shapes,
                    skip_self=False,
                )
        if name == "len":
            return Shape(dims=(), dtype="i8")
        if name in ("float", "int", "bool", "round"):
            return SCALAR
        if name == "abs" and arg_shapes:
            return arg_shapes[0]
        return UNKNOWN

    def _call_attribute(
        self,
        node: ast.Call,
        func: ast.Attribute,
        arg_shapes: List[AbstractShape],
        keyword_shapes: Dict[str, AbstractShape],
    ) -> AbstractShape:
        chain = dotted_chain(func)
        if chain is not None and self.imports.get(chain[0]) == "numpy":
            return self._call_numpy(
                node, tuple(chain[1:]), arg_shapes, keyword_shapes
            )
        if chain is not None and chain[0] in self.imports:
            fq = ".".join([self.imports[chain[0]], *chain[1:]])
            declared = self.table.lookup(fq)
            if declared is not None:
                return self._check_against_shapes(
                    node, chain[-1], declared, arg_shapes, keyword_shapes,
                    skip_self=False,
                )
        if (
            chain is not None
            and chain[0] == "self"
            and len(chain) == 2
            and self.class_name is not None
        ):
            fq = f"{self.module}.{self.class_name}.{chain[1]}"
            declared = self.table.lookup(fq)
            if declared is not None:
                return self._check_against_shapes(
                    node, chain[1], declared, arg_shapes, keyword_shapes,
                    skip_self=True,
                )
        receiver = self.eval(func.value)
        method_result = self._call_array_method(
            node, func.attr, receiver, arg_shapes, keyword_shapes
        )
        if method_result is not NotImplemented:
            return method_result
        by_name = self.table.lookup_method(func.attr)
        if by_name is not None and by_name.has_declarations:
            return self._check_against_shapes(
                node, func.attr, by_name, arg_shapes, keyword_shapes,
                skip_self=True,
            )
        return UNKNOWN

    # -- numpy functions ------------------------------------------------
    def _call_numpy(
        self,
        node: ast.Call,
        tail: Tuple[str, ...],
        arg_shapes: List[AbstractShape],
        keyword_shapes: Dict[str, AbstractShape],
    ) -> AbstractShape:
        if len(tail) == 2 and tail[0] == "linalg":
            return self._call_linalg(node, tail[1], arg_shapes)
        if len(tail) != 1:
            return UNKNOWN
        name = tail[0]
        dtype = _dtype_from_node(self._keyword_node(node, "dtype"))

        if name in BUILDER_FUNCS:
            dims = self._shape_from_shape_arg(node.args[0]) if node.args \
                else None
            if dtype is None and name != "empty":
                dtype = "f8"  # numpy's default fill dtype
            return Shape(dims=dims, dtype=dtype)
        if name in LIKE_FUNCS and arg_shapes:
            base = arg_shapes[0]
            if is_shape(base):
                return Shape(dims=base.dims, dtype=dtype or base.dtype)
            return ANY_ARRAY
        if name == "eye":
            first = _literal_int(node.args[0]) if node.args else None
            second = (
                _literal_int(node.args[1]) if len(node.args) > 1 else first
            )
            return Shape(dims=(first, second), dtype=dtype or "f8")
        if name == "arange":
            return Shape(dims=(None,), dtype=dtype)
        if name == "linspace":
            count = (
                _literal_int(node.args[2]) if len(node.args) > 2 else None
            )
            return Shape(dims=(count,), dtype=dtype or "f8")
        if name == "array":
            return self._np_array(node, arg_shapes, dtype)
        if name in PASSTHROUGH_FUNCS and arg_shapes:
            base = arg_shapes[0]
            if is_shape(base):
                return Shape(dims=base.dims, dtype=dtype or base.dtype)
            return UNKNOWN
        if name in _NUMPY_SCALAR_TYPES:
            return Shape(dims=(), dtype=normalize_dtype(name))
        if name in MATMUL_FUNCS and len(arg_shapes) >= 2:
            return self._matmul(node, arg_shapes[0], arg_shapes[1])
        if name in ELEMENTWISE_UNARY and arg_shapes:
            return arg_shapes[0] if is_shape(arg_shapes[0]) else UNKNOWN
        if name in ELEMENTWISE_BINARY and len(arg_shapes) >= 2:
            return self._elementwise(node, arg_shapes[:2])
        if name in ELEMENTWISE_TERNARY and arg_shapes:
            present = [s for s in arg_shapes[:3]]
            if all(is_shape(s) for s in present):
                return self._elementwise(node, present)
            return UNKNOWN
        if name in REDUCTIONS and arg_shapes:
            return self._reduction(
                node, name, arg_shapes[0], args_offset=1
            )
        if name == "reshape" and len(node.args) >= 2:
            return self._reshape(arg_shapes[0], node.args[1:])
        if name == "transpose" and arg_shapes:
            return self._transpose(arg_shapes[0], node.args[1:])
        if name == "expand_dims" and arg_shapes:
            return self._expand_dims(node, arg_shapes[0])
        if name == "squeeze" and arg_shapes:
            base = arg_shapes[0]
            return Shape(dims=None, dtype=base.dtype) if is_shape(base) \
                else UNKNOWN
        if name == "stack":
            return self._stack(node, stacked=True)
        if name == "concatenate":
            return self._stack(node, stacked=False)
        return UNKNOWN

    def _call_linalg(
        self, node: ast.Call, name: str, arg_shapes: List[AbstractShape]
    ) -> AbstractShape:
        if not arg_shapes or not is_shape(arg_shapes[0]):
            return UNKNOWN
        first = arg_shapes[0]
        if name in ("inv", "pinv", "cholesky"):
            return first
        if name == "solve" and len(arg_shapes) > 1:
            second = arg_shapes[1]
            return second if is_shape(second) else UNKNOWN
        if name == "norm":
            return SCALAR if self._keyword_node(node, "axis") is None \
                else Shape(dims=None, dtype=first.dtype)
        if name == "det":
            return SCALAR
        return UNKNOWN

    # -- array methods --------------------------------------------------
    def _call_array_method(
        self,
        node: ast.Call,
        method: str,
        receiver: AbstractShape,
        arg_shapes: List[AbstractShape],
        keyword_shapes: Dict[str, AbstractShape],
    ):
        """Model ``array.method(...)``; NotImplemented when unmodeled."""
        if not is_shape(receiver):
            if method in REDUCTIONS or method in (
                "reshape", "astype", "transpose",
            ) or method in SAME_SHAPE_METHODS | FLATTEN_METHODS \
                    | SCALAR_METHODS:
                return UNKNOWN
            return NotImplemented
        if method in REDUCTIONS:
            return self._reduction(node, method, receiver, args_offset=0)
        if method == "reshape":
            return self._reshape(receiver, list(node.args))
        if method == "astype":
            dtype = _dtype_from_node(node.args[0]) if node.args else None
            return Shape(dims=receiver.dims, dtype=dtype)
        if method == "transpose":
            return self._transpose(receiver, list(node.args))
        if method in SAME_SHAPE_METHODS:
            return receiver
        if method in FLATTEN_METHODS:
            return Shape(dims=(None,), dtype=receiver.dtype)
        if method in SCALAR_METHODS:
            return Shape(dims=(), dtype=receiver.dtype)
        if method == "fill":
            return UNKNOWN
        return NotImplemented

    # -- numpy helpers --------------------------------------------------
    @staticmethod
    def _keyword_node(node: ast.Call, name: str) -> Optional[ast.expr]:
        for keyword in node.keywords:
            if keyword.arg == name:
                return keyword.value
        return None

    def _shape_from_shape_arg(
        self, node: ast.expr
    ) -> Optional[Tuple[Axis, ...]]:
        """Dims described by a ``shape=`` argument (literal-aware)."""
        single = _literal_int(node)
        if single is not None:
            return (single,)
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(_literal_int(element) for element in node.elts)
        return None

    def _np_array(
        self,
        node: ast.Call,
        arg_shapes: List[AbstractShape],
        dtype: Optional[str],
    ) -> AbstractShape:
        if not node.args:
            return UNKNOWN
        literal = self._literal_dims(node.args[0])
        if literal is not None:
            dims, inferred = literal
            return Shape(dims=dims, dtype=dtype or inferred)
        base = arg_shapes[0]
        if is_shape(base):
            return Shape(dims=base.dims, dtype=dtype or base.dtype)
        return UNKNOWN

    def _literal_dims(
        self, node: ast.expr
    ) -> Optional[Tuple[Tuple[Axis, ...], Optional[str]]]:
        """Dims and element dtype of a nested list/tuple literal."""
        if isinstance(node, (ast.List, ast.Tuple)):
            if not node.elts:
                return (0,), None
            children = [self._literal_dims(child) for child in node.elts]
            if any(child is None for child in children):
                # Elements with known *shapes* still stack.
                element_shapes = [self.eval(child) for child in node.elts]
                if all(
                    is_shape(shape) and shape.dims is not None
                    for shape in element_shapes
                ):
                    inner = element_shapes[0]
                    for other in element_shapes[1:]:
                        joined = join(inner, other)
                        if joined is UNKNOWN or joined.dims is None:
                            return None
                        inner = joined
                    return (
                        (len(node.elts),) + inner.dims,
                        inner.dtype,
                    )
                return None
            first_dims = children[0][0]
            if any(child[0] != first_dims for child in children):
                return None
            dtypes = {child[1] for child in children}
            dtype = dtypes.pop() if len(dtypes) == 1 else None
            return (len(node.elts),) + first_dims, dtype
        if isinstance(node, ast.Constant) and isinstance(
            node.value, (bool, int, float)
        ):
            if isinstance(node.value, bool):
                return (), "bool"
            return (), ("f8" if isinstance(node.value, float) else "i8")
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            return self._literal_dims(node.operand)
        return None

    def _axis_arguments(
        self, node: ast.Call, args_offset: int
    ) -> Tuple[Optional[List[int]], bool, bool]:
        """(axes, axis_given, keepdims) of a reduction call."""
        axis_node = self._keyword_node(node, "axis")
        if axis_node is None and len(node.args) > args_offset:
            axis_node = node.args[args_offset]
        keepdims_node = self._keyword_node(node, "keepdims")
        keepdims = (
            isinstance(keepdims_node, ast.Constant)
            and keepdims_node.value is True
        )
        if axis_node is None or (
            isinstance(axis_node, ast.Constant) and axis_node.value is None
        ):
            return None, False, keepdims
        single = _literal_int(axis_node)
        if single is not None:
            return [single], True, keepdims
        if isinstance(axis_node, (ast.Tuple, ast.List)):
            axes = [_literal_int(element) for element in axis_node.elts]
            if all(axis is not None for axis in axes):
                return [axis for axis in axes if axis is not None], True, \
                    keepdims
        return None, True, keepdims

    def _reduction(
        self,
        node: ast.Call,
        name: str,
        base: AbstractShape,
        *,
        args_offset: int,
    ) -> AbstractShape:
        if not is_shape(base):
            return UNKNOWN
        axes, axis_given, keepdims = self._axis_arguments(node, args_offset)
        dtype = base.dtype
        if name in ("argmax", "argmin"):
            dtype = "i8"
        elif name in ("all", "any"):
            dtype = "bool"
        if base.dims is None:
            return Shape(dims=None, dtype=dtype)
        rank = len(base.dims)
        if axes is None:
            if axis_given:
                return Shape(dims=None, dtype=dtype)
            if keepdims:
                return Shape(dims=(1,) * rank, dtype=dtype)
            return Shape(dims=(), dtype=dtype)
        for axis in axes:
            if not (-rank <= axis < rank):
                self._report(
                    node,
                    KIND_AXIS,
                    f"axis {axis} is out of range for the rank-{rank} "
                    f"operand {format_shape(base)} of {name}()",
                )
                return Shape(dims=None, dtype=dtype)
        normalized = {axis % rank for axis in axes}
        dims = tuple(
            1 if index in normalized else extent
            for index, extent in enumerate(base.dims)
            if keepdims or index not in normalized
        )
        return Shape(dims=dims, dtype=dtype)

    def _reshape(
        self, base: AbstractShape, shape_args: List[ast.expr]
    ) -> AbstractShape:
        dtype = base.dtype if is_shape(base) else None
        if len(shape_args) == 1 and isinstance(
            shape_args[0], (ast.Tuple, ast.List)
        ):
            shape_args = list(shape_args[0].elts)
        dims: List[Axis] = []
        for argument in shape_args:
            literal = _literal_int(argument)
            dims.append(
                literal if literal is not None and literal >= 0 else None
            )
        if not dims:
            return Shape(dims=None, dtype=dtype)
        return Shape(dims=tuple(dims), dtype=dtype)

    def _transpose(
        self, base: AbstractShape, axis_args: List[ast.expr]
    ) -> AbstractShape:
        if not is_shape(base):
            return UNKNOWN
        if base.dims is None:
            return base
        if not axis_args:
            return base.with_dims(tuple(reversed(base.dims)))
        if len(axis_args) == 1 and isinstance(
            axis_args[0], (ast.Tuple, ast.List)
        ):
            axis_args = list(axis_args[0].elts)
        order = [_literal_int(argument) for argument in axis_args]
        rank = len(base.dims)
        if all(
            axis is not None and -rank <= axis < rank for axis in order
        ) and len(order) == rank:
            return base.with_dims(
                tuple(base.dims[axis % rank] for axis in order)  # type: ignore[union-attr]
            )
        return Shape(dims=None, dtype=base.dtype)

    def _expand_dims(
        self, node: ast.Call, base: AbstractShape
    ) -> AbstractShape:
        if not is_shape(base) or base.dims is None:
            return base if is_shape(base) else UNKNOWN
        axis_node = self._keyword_node(node, "axis")
        if axis_node is None and len(node.args) > 1:
            axis_node = node.args[1]
        axis = _literal_int(axis_node) if axis_node is not None else None
        rank = len(base.dims)
        if axis is None:
            return Shape(dims=None, dtype=base.dtype)
        if not (-(rank + 1) <= axis <= rank):
            self._report(
                node,
                KIND_AXIS,
                f"axis {axis} is out of range for expand_dims of the "
                f"rank-{rank} operand {format_shape(base)}",
            )
            return Shape(dims=None, dtype=base.dtype)
        position = axis % (rank + 1)
        dims = base.dims[:position] + (1,) + base.dims[position:]
        return Shape(dims=dims, dtype=base.dtype)

    def _stack(self, node: ast.Call, *, stacked: bool) -> AbstractShape:
        if not node.args or not isinstance(
            node.args[0], (ast.List, ast.Tuple)
        ):
            return UNKNOWN
        elements = [self.eval(element) for element in node.args[0].elts]
        if not elements or not all(
            is_shape(element) and element.dims is not None
            for element in elements
        ):
            return UNKNOWN
        common = elements[0]
        for other in elements[1:]:
            joined = join(common, other)
            if joined is UNKNOWN or joined.dims is None:
                return UNKNOWN
            common = joined
        assert common.dims is not None
        rank = len(common.dims)
        axis_node = self._keyword_node(node, "axis")
        if axis_node is None and len(node.args) > 1:
            axis_node = node.args[1]
        axis = 0 if axis_node is None else _literal_int(axis_node)
        if axis is None:
            return Shape(dims=None, dtype=common.dtype)
        limit = rank + 1 if stacked else rank
        if not (-limit <= axis < limit):
            name = "stack" if stacked else "concatenate"
            self._report(
                node,
                KIND_AXIS,
                f"axis {axis} is out of range for {name}() over "
                f"rank-{rank} elements {format_shape(common)}",
            )
            return Shape(dims=None, dtype=common.dtype)
        if stacked:
            position = axis % (rank + 1)
            dims = (
                common.dims[:position]
                + (len(elements),)
                + common.dims[position:]
            )
            return Shape(dims=dims, dtype=common.dtype)
        position = axis % rank if rank else 0
        extents = [element.dims[position] for element in elements]  # type: ignore[index]
        total: Axis = (
            sum(extents) if all(isinstance(e, int) for e in extents)
            else None
        )
        dims = (
            common.dims[:position] + (total,) + common.dims[position + 1:]
        )
        return Shape(dims=dims, dtype=common.dtype)

    # -- declared-signature checking -------------------------------------
    def _check_against_shapes(
        self,
        node: ast.Call,
        display: str,
        declared: FunctionShapes,
        arg_shapes: List[AbstractShape],
        keyword_shapes: Dict[str, AbstractShape],
        *,
        skip_self: bool,
    ) -> AbstractShape:
        order = declared.param_order
        if skip_self and order and order[0] in ("self", "cls"):
            order = order[1:]
        bindings: Dict[str, Axis] = {}
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)
        pairs: List[Tuple[str, AbstractShape]] = []
        if not has_star:
            pairs.extend(
                (order[index], shape)
                for index, shape in enumerate(arg_shapes)
                if index < len(order)
            )
        pairs.extend(keyword_shapes.items())
        for name, actual in pairs:
            want = declared.params.get(name)
            if want is None or not is_shape(actual):
                continue
            conflict = _definite_conflict(want, actual, bindings)
            if conflict is not None:
                self._report(
                    node,
                    KIND_BINDING,
                    f"argument '{name}' of {display}() is declared "
                    f"{format_shape(want)} but {conflict}",
                )
        if declared.returns is None:
            return UNKNOWN
        return _substitute(declared.returns, bindings)

    # -- statement checks ----------------------------------------------
    def _augmented_result(
        self,
        statement: ast.AugAssign,
        current: AbstractShape,
        value: AbstractShape,
    ) -> AbstractShape:
        if isinstance(statement.op, ast.MatMult):
            return self._matmul(statement, current, value)
        if (
            is_shape(current)
            and is_shape(value)
            and current.dims != ()
            and current.dtype is not None
            and value.dtype is not None
            and dtype_order(current.dtype) < dtype_order(value.dtype)
        ):
            self._report(
                statement,
                KIND_DTYPE,
                f"in-place accumulation narrows: the {current.dtype} "
                f"target silently truncates every {value.dtype} "
                "increment",
            )
        if not isinstance(
            statement.op,
            (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
             ast.Mod, ast.Pow),
        ):
            return UNKNOWN
        result = self._elementwise(statement, [current, value])
        if is_shape(result) and is_shape(current):
            # In-place ops keep the target's dtype.
            return Shape(dims=result.dims, dtype=current.dtype)
        return result

    def _exec_AnnAssign(self, statement: ast.AnnAssign) -> None:
        issues: list = []
        declared = _shape_from_annotated(statement.annotation, issues)
        for issue in issues:
            self._report(
                statement,
                KIND_MISSING,
                f"bad shape annotation: {issue.message}",
            )
        value = (
            self.eval(statement.value)
            if statement.value is not None
            else UNKNOWN
        )
        if declared is not None and is_shape(value):
            conflict = _definite_conflict(declared, value, {})
            if conflict is not None:
                self._report(
                    statement,
                    KIND_BINDING,
                    f"assigned value contradicts the annotation "
                    f"{format_shape(declared)}: {conflict}",
                )
        if isinstance(statement.target, ast.Name):
            self.env[statement.target.id] = (
                declared if declared is not None else value
            )

    def _exec_Return(self, statement: ast.Return) -> None:
        value = self.eval(statement.value)
        declared = self.shapes.returns
        if declared is not None and is_shape(value):
            conflict = _definite_conflict(declared, value, {})
            if conflict is not None:
                self._report(
                    statement,
                    KIND_BINDING,
                    f"returns a value contradicting the declared "
                    f"-> {format_shape(declared)}: {conflict}",
                )


def _annotation_head(node: ast.expr) -> Optional[str]:
    """The rightmost name of a ``Name``/``Attribute`` annotation head."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _mentions_ndarray(annotation: Optional[ast.expr]) -> bool:
    """Whether an annotation is *directly* an array type.

    ``np.ndarray``, ``NDArray[...]``, ``Optional[np.ndarray]``,
    ``Annotated[np.ndarray, ...]`` and ``np.ndarray | None`` all count.
    Containers that merely mention arrays (``Dict[str, np.ndarray]``,
    ``List[np.ndarray]``) do not: the shape grammar has nothing
    truthful to say about them, so SFL204 must not demand a spec there.
    """
    if annotation is None:
        return False
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return False
    head = _annotation_head(node)
    if head in ("ndarray", "NDArray"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _mentions_ndarray(node.left) or _mentions_ndarray(node.right)
    if isinstance(node, ast.Subscript):
        head = _annotation_head(node.value)
        if head in ("ndarray", "NDArray"):
            return True
        if head in ("Optional", "Union", "Annotated"):
            inner = node.slice
            elements = (
                list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            )
            if head == "Annotated":
                elements = elements[:1]
            return any(_mentions_ndarray(element) for element in elements)
    return False


def _check_missing_shapes(
    class_name: Optional[str],
    func: _FuncNode,
    shapes: FunctionShapes,
    violations: List[ShapeViolation],
) -> None:
    """SFL204: public array APIs must declare their shapes."""
    if func.name.startswith("_") and func.name != "__init__":
        return
    if class_name is not None and class_name.startswith("_"):
        return
    undeclared = [
        arg.arg
        for arg in (
            *func.args.posonlyargs,
            *func.args.args,
            *func.args.kwonlyargs,
        )
        if _mentions_ndarray(arg.annotation)
        and arg.arg not in shapes.params
    ]
    if _mentions_ndarray(func.returns) and shapes.returns is None:
        undeclared.append("return")
    if undeclared:
        violations.append(
            ShapeViolation(
                line=func.lineno,
                column=func.col_offset,
                kind=KIND_MISSING,
                message=(
                    "ndarray parameter(s) "
                    + ", ".join(repr(name) for name in undeclared)
                    + " carry no machine-checkable shape; add a "
                    "'Shapes: name [spec]' docstring line or an "
                    "Annotated hint (grammar: docs/LINTING.md)"
                ),
            )
        )


def _analyze_uncached(context, tree: ast.Module) -> Tuple[ShapeViolation, ...]:
    table: Optional[ShapeTable] = getattr(
        context, "shape_signatures", None
    )
    if table is None:
        table = build_shape_table([(context.module, tree)])
    imports = build_import_map(context.module, tree)
    violations: List[ShapeViolation] = []
    for class_name, func in iter_functions(tree):
        dotted = (
            f"{context.module}.{class_name}.{func.name}"
            if class_name
            else f"{context.module}.{func.name}"
        )
        shapes = table.lookup(dotted) or extract_function_shapes(func)
        for issue in shapes.issues:
            violations.append(
                ShapeViolation(
                    line=issue.line,
                    column=0,
                    kind=KIND_MISSING,
                    message=issue.message,
                )
            )
        _check_missing_shapes(class_name, func, shapes, violations)
        interpreter = _FunctionInterpreter(
            module=context.module,
            class_name=class_name,
            func=func,
            shapes=shapes,
            table=table,
            imports=imports,
            violations=violations,
        )
        interpreter.run()
    return tuple(violations)


#: (path, source) -> analysis result; the six SFL20x rules all consume
#: the same per-file analysis, so a tiny cache makes the family cost
#: one pass instead of six.
_CACHE: Dict[Tuple[str, str], Tuple[ShapeViolation, ...]] = {}
_CACHE_LIMIT = 8


def analyze(context, tree: ast.Module) -> Tuple[ShapeViolation, ...]:
    """Shape/dtype violations of one parsed file (cached per file)."""
    key = (context.path, context.source)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = _analyze_uncached(context, tree)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = result
    return result
