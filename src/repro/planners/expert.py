"""Rule-based expert planners for the unprotected left turn.

The paper trains its NN planners with the (unreleased) learning method of
Liu et al. (ICCPS'22); this reproduction substitutes imitation learning
from the rule-based experts below (see DESIGN.md §2).  Two parameter
presets reproduce the two personalities the evaluation needs:

* a **conservative** expert — generous time margins, sound passing
  windows, comfortable braking: safe but slow, like ``kappa_{n,cons}``;
* an **aggressive** expert — thin margins over compact (Eq. (8)-style)
  windows and harder acceleration: fast, but it commits to crossings
  that the oncoming vehicle's later behaviour can invalidate, producing
  the collision rate Table II reports for ``kappa_{n,aggr}``.

The expert's decision each step is GO (accelerate through the area) or
YIELD (approach and stop before the front line):

* GO when the area is already entered or cleared, when the oncoming
  window is empty or entirely in the past, or when the ego can clear the
  back line at full planned throttle ``entry_margin`` seconds before the
  window opens;
* YIELD otherwise: track a safe approach speed
  ``min(cruise, sqrt(2 b d))`` toward a stop ``stop_margin`` before the
  front line, switching to the exact required braking once it reaches
  the comfort level ``b``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError
from repro.planners.base import PlanningContext
from repro.scenarios.left_turn.geometry import (
    LeftTurnGeometry,
    earliest_arrival_time,
)
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.utils.intervals import Interval

__all__ = ["ExpertConfig", "LeftTurnExpertPlanner"]


@dataclass(frozen=True, slots=True)
class ExpertConfig:
    """Behaviour parameters of the rule-based expert.

    Attributes
    ----------
    cruise_speed:
        Approach speed target when no conflict window is open, m/s.
    conflict_cruise_speed:
        Approach speed target when the conflict window opens imminently,
        m/s.  A timid (low) value is what makes a planner *conservative*:
        it creeps toward the area whenever a conflict looms.  Aggressive
        planners keep this close to ``cruise_speed``.
    conflict_near_time, conflict_far_time:
        The urgency blend: when the window opens within
        ``conflict_near_time`` seconds the approach target is
        ``conflict_cruise_speed``; beyond ``conflict_far_time`` it is
        ``cruise_speed``; linear in between.  This is where the width of
        the estimated unsafe set pays off — a planner fed the compact
        aggressive window sees the conflict as further away and keeps
        its speed, which is precisely the efficiency mechanism of the
        paper's ultimate compound planner.
    go_accel:
        Throttle used when committing to the crossing, m/s².
    entry_margin:
        Required clearance (seconds) between the ego's projected exit and
        the oncoming window's opening for a go-before decision.  May be
        *negative*: an over-aggressive planner willing to cut into the
        estimated window, which is how the paper's unsafe
        ``kappa_{n,aggr}`` personality arises.
    stop_margin:
        Distance (metres) before the front line where a yielding ego
        aims to stop.
    comfort_brake:
        Comfortable deceleration magnitude, m/s² (must stay below the
        physical ``|a_min|`` so the yield law has reserve).
    speed_gain:
        Proportional gain of the approach-speed tracking law, 1/s.
    """

    cruise_speed: float = 12.0
    conflict_cruise_speed: float = 6.0
    conflict_near_time: float = 1.0
    conflict_far_time: float = 8.0
    go_accel: float = 2.5
    entry_margin: float = 1.5
    stop_margin: float = 2.0
    comfort_brake: float = 2.0
    speed_gain: float = 2.0

    def __post_init__(self) -> None:
        if self.cruise_speed <= 0.0:
            raise ConfigurationError("cruise_speed must be > 0")
        if self.conflict_cruise_speed <= 0.0:
            raise ConfigurationError("conflict_cruise_speed must be > 0")
        if self.conflict_far_time <= self.conflict_near_time:
            raise ConfigurationError(
                "conflict_far_time must exceed conflict_near_time"
            )
        if self.go_accel <= 0.0:
            raise ConfigurationError("go_accel must be > 0")
        if self.stop_margin < 0.0:
            raise ConfigurationError("stop_margin must be >= 0")
        if self.comfort_brake <= 0.0:
            raise ConfigurationError("comfort_brake must be > 0")
        if self.speed_gain <= 0.0:
            raise ConfigurationError("speed_gain must be > 0")

    @classmethod
    def conservative(cls) -> "ExpertConfig":
        """Preset behind ``kappa_{n,cons}``."""
        return cls(
            cruise_speed=12.0,
            conflict_cruise_speed=4.5,
            conflict_near_time=1.0,
            conflict_far_time=10.0,
            go_accel=2.2,
            entry_margin=2.5,
            stop_margin=2.5,
            comfort_brake=3.0,
            speed_gain=2.0,
        )

    @classmethod
    def aggressive(cls) -> "ExpertConfig":
        """Preset behind ``kappa_{n,aggr}``."""
        return cls(
            cruise_speed=14.0,
            conflict_cruise_speed=12.0,
            go_accel=3.5,
            entry_margin=-0.3,
            stop_margin=0.5,
            comfort_brake=3.0,
            speed_gain=2.5,
        )


class LeftTurnExpertPlanner:
    """GO/YIELD expert over a passing-window estimator.

    Parameters
    ----------
    geometry:
        The left-turn geometry.
    limits:
        Ego actuation limits.
    window_estimator:
        Estimator of the oncoming vehicle's occupancy window; a
        conservative estimator yields the conservative expert, an
        aggressive estimator (plus an aggressive :class:`ExpertConfig`)
        the aggressive one.
    config:
        Behaviour parameters.
    oncoming_index:
        Vehicle index of the oncoming vehicle.
    """

    def __init__(
        self,
        geometry: LeftTurnGeometry,
        limits: VehicleLimits,
        window_estimator: PassingWindowEstimator,
        config: ExpertConfig,
        oncoming_index: int = 1,
    ) -> None:
        if config.comfort_brake > -limits.a_min:
            raise ConfigurationError(
                "comfort_brake exceeds the vehicle's physical braking"
            )
        self._geometry = geometry
        self._limits = limits
        self._windows = window_estimator
        self._config = config
        self._oncoming_index = oncoming_index

    @property
    def config(self) -> ExpertConfig:
        """Behaviour parameters."""
        return self._config

    @property
    def limits(self) -> VehicleLimits:
        """The ego actuation limits the expert respects."""
        return self._limits

    @property
    def geometry(self) -> LeftTurnGeometry:
        """The scenario geometry."""
        return self._geometry

    @property
    def window_estimator(self) -> PassingWindowEstimator:
        """The window estimator this expert consults."""
        return self._windows

    # ------------------------------------------------------------------
    # Planner protocol
    # ------------------------------------------------------------------
    def plan(self, context: PlanningContext) -> float:
        """One GO/YIELD decision from the current estimates."""
        window = self._windows.window(
            context.estimate_of(self._oncoming_index)
        )
        return self.plan_from_window(
            context.time, context.ego.position, context.ego.velocity, window
        )

    def plan_from_window(
        self, time: float, position: float, velocity: float, window: Interval
    ) -> float:
        """The decision law on explicit inputs.

        Units: time [s], position [m], velocity [m/s] -> [m/s^2]

        Exposed separately so demonstration generation can query the
        expert on arbitrary (state, window) pairs without constructing
        fused estimates.
        """
        if self.should_go(time, position, velocity, window):
            return self._go_command(velocity)
        return self._yield_command(time, position, velocity, window)

    def conflict_ahead(self, time: float, window: Interval) -> bool:
        """Whether the oncoming window is still (partly) in the future.

        Units: time [s]
        """
        return not window.is_empty and window.hi > time

    def approach_speed(self, time: float, window: Interval) -> float:
        """Urgency-blended approach speed target (see :class:`ExpertConfig`).

        Units: time [s] -> [m/s]
        """
        cfg = self._config
        if window.is_empty:
            return cfg.cruise_speed
        time_to_window = window.lo - time
        span = cfg.conflict_far_time - cfg.conflict_near_time
        blend = (time_to_window - cfg.conflict_near_time) / span
        blend = min(max(blend, 0.0), 1.0)
        return (
            cfg.conflict_cruise_speed
            + (cfg.cruise_speed - cfg.conflict_cruise_speed) * blend
        )

    # ------------------------------------------------------------------
    # Decision pieces
    # ------------------------------------------------------------------
    def should_go(
        self, time: float, position: float, velocity: float, window: Interval
    ) -> bool:
        """The GO predicate.

        Units: time [s], position [m], velocity [m/s]

        GO fires in three situations:

        * committed — the ego already entered the area;
        * go-after — the window will have closed by the time the ego can
          *reach the front line* at full planned throttle (anticipatory:
          the ego accelerates toward the area while the oncoming vehicle
          is still clearing it, timed to arrive just behind it);
        * go-before — the ego can *clear the back line* at full planned
          throttle ``entry_margin`` seconds before the window opens.
        """
        geometry = self._geometry
        if position > geometry.p_front:
            # Entered (or cleared) the area: committed, keep going.
            return True
        if window.is_empty or window.hi <= time:
            # No conflict ahead: the oncoming vehicle cleared or never
            # arrives.
            return True
        v = max(velocity, 0.0)
        d_front = geometry.ego_distance_to_front(position)
        t_reach = earliest_arrival_time(
            d_front, v, self._limits.v_max, self._config.go_accel
        )
        if window.hi <= time + t_reach:
            return True
        d_back = geometry.ego_distance_to_back(position)
        t_clear = earliest_arrival_time(
            d_back, v, self._limits.v_max, self._config.go_accel
        )
        return time + t_clear + self._config.entry_margin <= window.lo

    def _go_command(self, velocity: float) -> float:
        """Throttle toward the crossing, easing off at the cruise speed."""
        cap = min(self._config.cruise_speed, self._limits.v_max)
        if velocity >= cap:
            return 0.0
        return self._config.go_accel

    def _yield_command(
        self, time: float, position: float, velocity: float, window: Interval
    ) -> float:
        """Approach-and-stop law toward ``stop_margin`` before the line.

        The approach speed target blends between timid and assertive with
        the urgency of the conflict window (:meth:`approach_speed`), and
        is capped by the speed from which a comfortable stop at the
        target point is still possible.
        """
        cfg = self._config
        v = max(velocity, 0.0)
        d_stop = (
            self._geometry.ego_distance_to_front(position) - cfg.stop_margin
        )
        if d_stop <= 0.0:
            # Past the intended stopping point but not yet past the front
            # line (should_go handles that): brake hard.
            return self._limits.a_min
        v_safe = math.sqrt(2.0 * cfg.comfort_brake * d_stop)
        v_target = min(self.approach_speed(time, window), v_safe)
        command = cfg.speed_gain * (v_target - v)
        if v > v_safe:
            # The tracking law alone may under-brake; switch to the exact
            # constant deceleration that stops at the target point.
            required = -v * v / (2.0 * d_stop)
            command = min(command, required)
        return self._limits.clip_acceleration(
            min(command, self._config.go_accel)
        )
