"""Intelligent Driver Model planner and a naive gap-chaser.

Two planners for the car-following scenario:

* :class:`IDMPlanner` — the classic Intelligent Driver Model (Treiber et
  al.), the "traditional model-based planner" archetype the paper's
  introduction contrasts NN planners against.  Well-tuned IDM is smooth
  and safe but conservative.
* :class:`GapChaserPlanner` — a deliberately aggressive baseline that
  drives at its desired speed and only brakes proportionally to gap
  deficit; it tailgates and violates the safety gap under hard leader
  braking, making it the car-following analogue of ``kappa_{n,aggr}``
  for compound-planner demonstrations.

Both consume the leader's fused estimate through the standard
:class:`~repro.planners.base.PlanningContext`.
"""

from __future__ import annotations

import math

from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError
from repro.planners.base import PlanningContext

__all__ = ["IDMPlanner", "GapChaserPlanner"]


class IDMPlanner:
    """Intelligent Driver Model acceleration law.

    .. math::

        a = a_{max}\\,[1 - (v/v_0)^4 - (s^*(v, \\Delta v)/s)^2],
        \\qquad
        s^* = s_0 + v T + \\frac{v\\,\\Delta v}{2\\sqrt{a_{max} b}}

    Parameters
    ----------
    limits:
        Ego actuation limits (outputs are clipped to them).
    desired_speed:
        Free-flow target speed ``v_0``.
    time_headway:
        Safe time headway ``T``.
    min_gap:
        Jam distance ``s_0``.
    comfort_brake:
        Comfortable deceleration ``b`` (positive).
    leader_index:
        Which estimate is the leader.
    """

    def __init__(
        self,
        limits: VehicleLimits,
        desired_speed: float = 25.0,
        time_headway: float = 1.5,
        min_gap: float = 6.0,
        comfort_brake: float = 2.0,
        leader_index: int = 1,
    ) -> None:
        if desired_speed <= 0.0:
            raise ConfigurationError("desired_speed must be > 0")
        if time_headway <= 0.0:
            raise ConfigurationError("time_headway must be > 0")
        if min_gap <= 0.0:
            raise ConfigurationError("min_gap must be > 0")
        if comfort_brake <= 0.0:
            raise ConfigurationError("comfort_brake must be > 0")
        self._limits = limits
        self._v0 = float(desired_speed)
        self._t = float(time_headway)
        self._s0 = float(min_gap)
        self._b = float(comfort_brake)
        self._leader = leader_index

    def plan(self, context: PlanningContext) -> float:
        """IDM acceleration from the leader's nominal estimate."""
        estimate = context.estimate_of(self._leader)
        v = max(context.ego.velocity, 0.0)
        gap = max(estimate.nominal.position - context.ego.position, 0.1)
        dv = v - estimate.nominal.velocity
        a_max = self._limits.a_max
        s_star = self._s0 + v * self._t + v * dv / (
            2.0 * math.sqrt(a_max * self._b)
        )
        accel = a_max * (
            1.0 - (v / self._v0) ** 4 - (max(s_star, 0.0) / gap) ** 2
        )
        return self._limits.clip_acceleration(accel)


class GapChaserPlanner:
    """Aggressive baseline: full speed unless the gap deficit is acute.

    Tracks ``desired_speed`` with a proportional law and superposes a
    braking term only when the *nominal* gap falls under
    ``brake_headway`` seconds — too late under adversarial leader
    braking, which is the point: wrapped in the compound planner the
    monitor provides the missing safety.
    """

    def __init__(
        self,
        limits: VehicleLimits,
        desired_speed: float = 28.0,
        brake_headway: float = 0.6,
        gain: float = 1.5,
        leader_index: int = 1,
    ) -> None:
        if desired_speed <= 0.0:
            raise ConfigurationError("desired_speed must be > 0")
        if brake_headway <= 0.0:
            raise ConfigurationError("brake_headway must be > 0")
        if gain <= 0.0:
            raise ConfigurationError("gain must be > 0")
        self._limits = limits
        self._v0 = float(desired_speed)
        self._headway = float(brake_headway)
        self._gain = float(gain)
        self._leader = leader_index

    def plan(self, context: PlanningContext) -> float:
        """Chase the desired speed; brake only on acute gap deficit."""
        estimate = context.estimate_of(self._leader)
        v = max(context.ego.velocity, 0.0)
        gap = estimate.nominal.position - context.ego.position
        command = self._gain * (self._v0 - v)
        if v > 0.0 and gap / max(v, 1e-6) < self._headway:
            command = self._limits.a_min
        return self._limits.clip_acceleration(command)
