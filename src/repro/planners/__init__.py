"""Planners: the protocol, rule-based experts, and NN-based planners."""

from repro.planners.base import Planner, PlanningContext, clipped
from repro.planners.constant import (
    ConstantPlanner,
    FullBrakePlanner,
    FullThrottlePlanner,
)
from repro.planners.expert import ExpertConfig, LeftTurnExpertPlanner
from repro.planners.idm import GapChaserPlanner, IDMPlanner
from repro.planners.nn_planner import FeatureScaler, NNPlanner, planner_features
from repro.planners.training_data import DemonstrationConfig, generate_demonstrations
from repro.planners.factory import (
    TrainedPlannerSpec,
    train_left_turn_planner,
)

__all__ = [
    "Planner",
    "PlanningContext",
    "clipped",
    "ConstantPlanner",
    "FullBrakePlanner",
    "FullThrottlePlanner",
    "ExpertConfig",
    "LeftTurnExpertPlanner",
    "IDMPlanner",
    "GapChaserPlanner",
    "NNPlanner",
    "FeatureScaler",
    "planner_features",
    "DemonstrationConfig",
    "generate_demonstrations",
    "TrainedPlannerSpec",
    "train_left_turn_planner",
]
