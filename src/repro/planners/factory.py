"""Building and training the conservative/aggressive NN planners.

One call — :func:`train_left_turn_planner` — goes from a style name to a
trained :class:`TrainedPlannerSpec` (network + feature scaler + the expert
that taught it).  Specs can be saved to and loaded from disk so the
experiment harness trains each planner once per machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError, SerializationError
from repro.nn.layers import Dense, ReLU, Sequential, Tanh
from repro.nn.optimizers import Adam
from repro.nn.serialization import load_model, save_model
from repro.nn.training import Trainer, TrainingHistory
from repro.planners.expert import ExpertConfig, LeftTurnExpertPlanner
from repro.planners.nn_planner import FeatureScaler, NNPlanner
from repro.planners.training_data import (
    DemonstrationConfig,
    generate_demonstrations,
)
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.utils.rng import RngStream

__all__ = ["TrainedPlannerSpec", "train_left_turn_planner"]

_STYLES = ("conservative", "aggressive")


@dataclass
class TrainedPlannerSpec:
    """A trained planner, ready to be wired into any configuration.

    Attributes
    ----------
    style:
        ``"conservative"`` or ``"aggressive"``.
    model:
        The trained regression network.
    scaler:
        Feature scaler fitted on the demonstrations.
    expert:
        The rule-based teacher (kept for baselines and inspection).
    history:
        Training curves (``None`` for a spec loaded from disk).
    """

    style: str
    model: Sequential
    scaler: FeatureScaler
    expert: LeftTurnExpertPlanner
    history: Optional[TrainingHistory] = None

    def build_planner(
        self,
        window_estimator: PassingWindowEstimator,
        limits: VehicleLimits,
        oncoming_index: int = 1,
    ) -> NNPlanner:
        """Wire the trained network behind a given window estimator."""
        return NNPlanner(
            model=self.model,
            scaler=self.scaler,
            window_estimator=window_estimator,
            limits=limits,
            oncoming_index=oncoming_index,
        )

    def natural_planner(self, limits: VehicleLimits) -> NNPlanner:
        """The planner with the estimator it was trained against.

        This is the *pure NN planner* of the paper's tables: the
        conservative network consults conservative windows, the
        aggressive network aggressive windows.
        """
        return self.build_planner(self.expert.window_estimator, limits)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> Path:
        """Save the network, scaler and style under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_model(self.model, directory / "model.npz")
        meta = {"style": self.style, "scaler": self.scaler.to_dict()}
        (directory / "meta.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(
        cls,
        directory: Union[str, Path],
        expert: LeftTurnExpertPlanner,
    ) -> "TrainedPlannerSpec":
        """Load a spec saved by :meth:`save`.

        The expert is re-supplied by the caller (it is cheap to rebuild
        and carries no learned state).
        """
        directory = Path(directory)
        meta_path = directory / "meta.json"
        if not meta_path.exists():
            raise SerializationError(f"no planner spec at {directory}")
        meta = json.loads(meta_path.read_text())
        return cls(
            style=str(meta["style"]),
            model=load_model(directory / "model.npz"),
            scaler=FeatureScaler.from_dict(meta["scaler"]),
            expert=expert,
            history=None,
        )


def build_expert(
    style: str,
    geometry: LeftTurnGeometry,
    ego_limits: VehicleLimits,
    oncoming_limits: VehicleLimits,
    a_buf: float = 0.5,
    v_buf: float = 1.0,
) -> LeftTurnExpertPlanner:
    """The rule-based teacher for a style.

    Units: a_buf [m/s^2], v_buf [m/s]

    The conservative expert consults sound Eq. (7) windows; the
    aggressive one consults compact Eq. (8) windows with the given
    buffers.
    """
    if style not in _STYLES:
        raise ConfigurationError(
            f"style must be one of {_STYLES}, got {style!r}"
        )
    aggressive = style == "aggressive"
    estimator = PassingWindowEstimator(
        geometry=geometry,
        limits=oncoming_limits,
        aggressive=aggressive,
        a_buf=a_buf,
        v_buf=v_buf,
    )
    config = (
        ExpertConfig.aggressive() if aggressive else ExpertConfig.conservative()
    )
    return LeftTurnExpertPlanner(
        geometry=geometry,
        limits=ego_limits,
        window_estimator=estimator,
        config=config,
    )


def build_network(rng: np.random.Generator, hidden: int = 64) -> Sequential:
    """The planner architecture: a 5-h-h-1 tanh/ReLU MLP.

    Effects: mutates-args, draws-rng
    """
    return Sequential(
        [
            Dense(5, hidden, rng, init="xavier"),
            Tanh(),
            Dense(hidden, hidden, rng, init="he"),
            ReLU(),
            Dense(hidden, 1, rng, init="xavier"),
        ]
    )


def train_left_turn_planner(
    style: str,
    geometry: LeftTurnGeometry,
    ego_limits: VehicleLimits,
    oncoming_limits: VehicleLimits,
    seed: int = 0,
    demo_config: Optional[DemonstrationConfig] = None,
    epochs: int = 150,
    hidden: int = 64,
    a_buf: float = 0.5,
    v_buf: float = 1.0,
) -> TrainedPlannerSpec:
    """Train a planner of the requested style from scratch.

    Units: a_buf [m/s^2], v_buf [m/s]

    Generates demonstrations from the style's expert, fits the scaler,
    trains the MLP with Adam + early stopping and returns the spec.
    Deterministic for a fixed seed.
    """
    expert = build_expert(
        style, geometry, ego_limits, oncoming_limits, a_buf=a_buf, v_buf=v_buf
    )
    rng = RngStream(seed)
    demo_config = demo_config if demo_config is not None else DemonstrationConfig()
    features, labels = generate_demonstrations(expert, demo_config, rng.child())
    scaler = FeatureScaler.fit(features)
    scaled = scaler.transform(features)

    net_rng = rng.child().generator
    model = build_network(net_rng, hidden=hidden)
    trainer = Trainer(
        model,
        optimizer=Adam(model, learning_rate=1e-3),
        batch_size=128,
        rng=rng.child().generator,
    )
    history = trainer.fit(
        scaled,
        labels,
        epochs=epochs,
        validation_fraction=0.1,
        patience=15,
    )
    return TrainedPlannerSpec(
        style=style,
        model=model,
        scaler=scaler,
        expert=expert,
        history=history,
    )
