"""Demonstration generation for imitation learning.

The NN planners are trained to imitate the rule-based experts of
:mod:`repro.planners.expert` (the substitution DESIGN.md §2 documents).
Two demonstration sources are mixed:

* **state-space sampling** — uniform random ``(t, p_0, v_0, window)``
  tuples labelled by the expert's decision law, covering the feature
  space broadly;
* **on-policy rollouts** — closed-loop episodes where the ego follows
  the expert against a randomly driven oncoming vehicle with perfect
  information, concentrating data on the states the planner actually
  visits (the classic way to avoid imitation drift).

Both produce ``(features, accelerations)`` pairs in the
:func:`repro.planners.nn_planner.planner_features` encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.dynamics.state import VehicleState
from repro.dynamics.profiles import RandomSequenceProfile
from repro.dynamics.vehicle import VehicleModel
from repro.errors import ConfigurationError
from repro.filtering.fusion import FusedEstimate
from repro.planners.expert import LeftTurnExpertPlanner
from repro.planners.nn_planner import (
    N_FEATURES,
    WINDOW_FAR,
    WINDOW_PAST,
    planner_features,
)
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream

__all__ = ["DemonstrationConfig", "generate_demonstrations"]


@dataclass(frozen=True, slots=True)
class DemonstrationConfig:
    """Demonstration-set sizes and sampling ranges.

    Attributes
    ----------
    n_random:
        Number of state-space samples.
    n_rollouts:
        Number of on-policy episodes.
    rollout_dt:
        Control step of the rollouts.
    rollout_horizon:
        Episode cap, seconds.
    empty_window_fraction:
        Fraction of random samples drawn with an empty (no-conflict)
        window so the GO branch is represented.
    p0_range, v0_range, t_range:
        Sampling ranges of the ego state and clock.
    oncoming_start_range:
        Range of the oncoming vehicle's initial position in rollouts.
    oncoming_speed_range:
        Range of its initial speed (m/s, positive = toward the area).
    """

    n_random: int = 4000
    n_rollouts: int = 40
    rollout_dt: float = 0.05
    rollout_horizon: float = 25.0
    empty_window_fraction: float = 0.15
    p0_range: Tuple[float, float] = (-35.0, 25.0)
    v0_range: Tuple[float, float] = (0.0, 20.0)
    t_range: Tuple[float, float] = (0.0, 20.0)
    oncoming_start_range: Tuple[float, float] = (45.0, 65.0)
    oncoming_speed_range: Tuple[float, float] = (8.0, 14.0)

    def __post_init__(self) -> None:
        if self.n_random < 0 or self.n_rollouts < 0:
            raise ConfigurationError("sample counts must be nonnegative")
        if self.n_random == 0 and self.n_rollouts == 0:
            raise ConfigurationError("at least one demonstration source needed")
        if not 0.0 <= self.empty_window_fraction <= 1.0:
            raise ConfigurationError(
                "empty_window_fraction must be in [0, 1]"
            )


def generate_demonstrations(
    expert: LeftTurnExpertPlanner,
    config: DemonstrationConfig,
    rng: RngStream,
) -> Tuple[np.ndarray, np.ndarray]:
    """Produce ``(features, labels)`` arrays from the expert.

    Effects: mutates-args, draws-rng

    Returns
    -------
    tuple
        ``features`` of shape ``(n, 5)`` (unscaled) and ``labels`` of
        shape ``(n, 1)`` (expert accelerations).
    """
    feature_rows = []
    label_rows = []

    if config.n_random > 0:
        f, y = _random_samples(expert, config, rng.child())
        feature_rows.append(f)
        label_rows.append(y)
    if config.n_rollouts > 0:
        f, y = _rollout_samples(expert, config, rng.child())
        feature_rows.append(f)
        label_rows.append(y)

    features = np.vstack(feature_rows)
    labels = np.vstack(label_rows)
    return features, labels


def _random_samples(
    expert: LeftTurnExpertPlanner,
    config: DemonstrationConfig,
    rng: RngStream,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly sampled (state, window) pairs labelled by the expert.

    Effects: mutates-args, draws-rng
    """
    n = config.n_random
    features = np.empty((n, 5))
    labels = np.empty((n, 1))
    for i in range(n):
        t = float(rng.uniform(*config.t_range))
        p0 = float(rng.uniform(*config.p0_range))
        v0 = float(rng.uniform(*config.v0_range))
        if rng.bernoulli(config.empty_window_fraction):
            window = Interval.EMPTY
        else:
            rel_lo = float(rng.uniform(WINDOW_PAST, 25.0))
            rel_hi = rel_lo + float(rng.uniform(0.5, 20.0))
            rel_hi = min(rel_hi, WINDOW_FAR)
            window = Interval(t + rel_lo, t + rel_hi)
        features[i] = planner_features(t, p0, v0, window)
        labels[i, 0] = expert.plan_from_window(t, p0, v0, window)
    return features, labels


def _rollout_samples(
    expert: LeftTurnExpertPlanner,
    config: DemonstrationConfig,
    rng: RngStream,
) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-loop expert episodes with perfect information.

    The oncoming vehicle follows a random acceleration sequence (the
    paper's evaluation workload); the expert sees its *true* state, so
    the demonstrations capture the expert's intended behaviour rather
    than estimator noise.

    Effects: mutates-args, draws-rng
    """
    geometry = expert.window_estimator.geometry
    oncoming_limits = expert.window_estimator.limits
    ego_model = VehicleModel(expert.limits)
    oncoming_model = VehicleModel(oncoming_limits)
    dt = config.rollout_dt
    n_steps = int(round(config.rollout_horizon / dt))

    # Preallocated to the worst case (every rollout runs the full
    # horizon); a rollout that reaches the target early just leaves
    # rows unused, and the tail is sliced off before returning.  The
    # previous append-a-list-then-np.asarray version was safeflow's
    # first real SFL302 catch.
    capacity = config.n_rollouts * n_steps
    features = np.empty((capacity, N_FEATURES), dtype=float)
    labels = np.empty((capacity, 1), dtype=float)
    filled = 0
    for _ in range(config.n_rollouts):
        episode_rng = rng.child()
        ego = VehicleState(position=-30.0, velocity=float(
            episode_rng.uniform(4.0, 10.0)
        ))
        oncoming = VehicleState(
            position=float(episode_rng.uniform(*config.oncoming_start_range)),
            velocity=-float(episode_rng.uniform(*config.oncoming_speed_range)),
        )
        profile = RandomSequenceProfile(episode_rng.child())
        for step in range(n_steps):
            t = step * dt
            estimate = _exact_estimate(t, oncoming)
            window = expert.window_estimator.window(estimate)
            accel = expert.plan_from_window(
                t, ego.position, ego.velocity, window
            )
            features[filled] = planner_features(
                t, ego.position, ego.velocity, window
            )
            labels[filled, 0] = accel
            filled += 1
            ego = ego_model.step(ego, accel, dt)
            oncoming_accel = profile(step, t, oncoming)
            oncoming = oncoming_model.step(oncoming, oncoming_accel, dt)
            if geometry.ego_reached_target(ego.position):
                break
    return features[:filled].copy(), labels[:filled].copy()


def _exact_estimate(time: float, state: VehicleState) -> FusedEstimate:
    """A zero-uncertainty estimate wrapping the true state."""
    return FusedEstimate(
        time=time,
        position=Interval.point(state.position),
        velocity=Interval.point(state.velocity),
        nominal=state,
        message_age=0.0,
    )
