"""The planner protocol and shared helpers.

A planner (Section II-A, "Planner") maps the information available at a
timestamp to the ego's acceleration command:
``a_0(t) = kappa(x(t))``.  In this library the "state" a planner sees is
a :class:`PlanningContext` — the ego's own (exactly known) state plus the
fused estimates of the other vehicles — because under communication
disturbance nobody has the true joint state.

Planners are deliberately *pure* per step: all memory lives in the
estimators and the simulation engine, so a planner instance can be shared
across simulations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import PlannerError
from repro.filtering.fusion import FusedEstimate

__all__ = ["PlanningContext", "Planner", "clipped"]


@dataclass(frozen=True)
class PlanningContext:
    """Everything a planner may consult at one control step.

    Attributes
    ----------
    time:
        Current timestamp ``t``.
    ego:
        The ego vehicle's own state (assumed exactly known — the ego
        knows itself).
    estimates:
        Fused estimates of the other vehicles, keyed by vehicle index.
    """

    time: float
    ego: VehicleState
    estimates: Mapping[int, FusedEstimate] = field(default_factory=dict)

    def estimate_of(self, index: int) -> FusedEstimate:
        """The estimate of vehicle ``index``.

        Raises
        ------
        PlannerError
            If no estimate for that vehicle is available.
        """
        try:
            return self.estimates[index]
        except KeyError as exc:
            raise PlannerError(
                f"no estimate available for vehicle {index}"
            ) from exc


@runtime_checkable
class Planner(Protocol):
    """Protocol every planner implements."""

    def plan(self, context: PlanningContext) -> float:
        """Return the ego acceleration command for the coming step."""
        ...


def clipped(acceleration: float, limits: VehicleLimits) -> float:
    """Sanitize a planner output: reject non-finite values, clip to limits.

    Units: acceleration [m/s^2] -> [m/s^2]

    The compound planner applies this to the embedded NN planner's raw
    output so that a pathological network (NaN/inf) degrades to a bounded
    command instead of corrupting the simulation.  A NaN maps to full
    braking — the conservative default.
    """
    a = float(acceleration)
    if math.isnan(a):
        return limits.a_min
    if math.isinf(a):
        return limits.a_max if a > 0 else limits.a_min
    return limits.clip_acceleration(a)
