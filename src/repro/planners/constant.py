"""Trivial planners: constant command, full brake, full throttle.

Used as test fixtures, as degenerate baselines, and as building blocks
(the left-turn emergency planner's "escape" branch is full throttle).
"""

from __future__ import annotations

from repro.dynamics.vehicle import VehicleLimits
from repro.planners.base import PlanningContext

__all__ = ["ConstantPlanner", "FullBrakePlanner", "FullThrottlePlanner"]


class ConstantPlanner:
    """Always command the same acceleration."""

    def __init__(self, acceleration: float) -> None:
        self._acceleration = float(acceleration)

    def plan(self, context: PlanningContext) -> float:
        """Return the fixed acceleration, whatever the context.

        Deliberately unclamped: tests use out-of-range commands to
        exercise the engine's own sanitisation, so this fixture must
        not pre-clip them.
        """
        return self._acceleration  # safelint: disable=SFL007 - fixture


class FullBrakePlanner:
    """Always command the strongest braking the vehicle supports."""

    def __init__(self, limits: VehicleLimits) -> None:
        self._limits = limits

    def plan(self, context: PlanningContext) -> float:
        """Return the strongest braking command."""
        return self._limits.a_min


class FullThrottlePlanner:
    """Always command the strongest acceleration the vehicle supports."""

    def __init__(self, limits: VehicleLimits) -> None:
        self._limits = limits

    def plan(self, context: PlanningContext) -> float:
        """Return the strongest acceleration command."""
        return self._limits.a_max
