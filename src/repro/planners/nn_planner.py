"""The NN-based planner: feature extraction, scaling, inference wrapper.

The paper's case study defines the planner inputs as
``(t, p_0(t), v_0(t), tau_{1,min}(t), tau_{1,max}(t))`` (Section IV).
This module keeps that five-feature interface with one well-conditioned
transformation: the window bounds enter as *relative* delays
``tau - t`` clipped to a bounded range, so features stay bounded whatever
the simulation length, and an empty window (the oncoming vehicle cleared
or provably never arrives) is encoded as a window entirely in the past.

:class:`NNPlanner` wires a trained :class:`~repro.nn.layers.Sequential`
regression network behind the :class:`~repro.planners.base.Planner`
protocol.  Which window estimator the planner consults is a constructor
argument — feeding the same network a conservative or an aggressive
estimator is exactly how the framework moves between the basic and the
ultimate compound configurations without retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError
from repro.nn.layers import Sequential
from repro.nn.tensor_ops import as_batch
from repro.planners.base import PlanningContext
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.utils.intervals import Interval

__all__ = [
    "WINDOW_PAST",
    "WINDOW_FAR",
    "planner_features",
    "FeatureScaler",
    "NNPlanner",
]

#: Relative-delay encoding of "in the past" (empty/expired windows).
WINDOW_PAST = -5.0
#: Upper clip of relative delays (anything further is "far future").
WINDOW_FAR = 50.0

#: Feature vector width: (t, p0, v0, rel_lo, rel_hi).
N_FEATURES = 5


def planner_features(
    time: float, position: float, velocity: float, window: Interval
) -> np.ndarray:
    """Build the five-feature input vector of the case-study planner.

    Units: time [s], position [m], velocity [m/s]

    Parameters
    ----------
    time, position, velocity:
        The ego's clock and state.
    window:
        Absolute-time occupancy window of the oncoming vehicle; may be
        empty.

    Returns
    -------
    numpy.ndarray
        Shape ``(5,)``: ``[t, p0, v0, rel_lo, rel_hi]`` with the relative
        delays clipped to ``[WINDOW_PAST, WINDOW_FAR]``.
    """
    if window.is_empty:
        rel_lo = WINDOW_PAST
        rel_hi = WINDOW_PAST
    else:
        rel_lo = float(np.clip(window.lo - time, WINDOW_PAST, WINDOW_FAR))
        rel_hi = float(np.clip(window.hi - time, WINDOW_PAST, WINDOW_FAR))
    return np.array([time, position, velocity, rel_lo, rel_hi], dtype=float)


@dataclass
class FeatureScaler:
    """Per-feature standardisation fitted on the training set.

    Attributes
    ----------
    mean, std:
        Arrays of shape ``(n_features,)``; zero standard deviations are
        replaced by 1 so constant features pass through unchanged.
    """

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=float).ravel()
        self.std = np.asarray(self.std, dtype=float).ravel()
        if self.mean.shape != self.std.shape:
            raise ConfigurationError(
                f"mean/std shape mismatch: {self.mean.shape} vs {self.std.shape}"
            )
        self.std = np.where(self.std <= 0.0, 1.0, self.std)

    @classmethod
    def fit(cls, features: np.ndarray) -> "FeatureScaler":
        """Fit mean/std over a ``(n, d)`` feature matrix."""
        arr = np.asarray(features, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ConfigurationError(
                f"expected a non-empty (n, d) matrix, got shape {arr.shape}"
            )
        return cls(mean=arr.mean(axis=0), std=arr.std(axis=0))

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise a feature vector or matrix."""
        arr = np.asarray(features, dtype=float)
        return (arr - self.mean) / self.std

    def to_dict(self) -> Dict[str, list]:
        """JSON-friendly representation."""
        return {"mean": self.mean.tolist(), "std": self.std.tolist()}

    @classmethod
    def from_dict(cls, data: Dict[str, list]) -> "FeatureScaler":
        """Rebuild from :meth:`to_dict` output."""
        return cls(mean=np.asarray(data["mean"]), std=np.asarray(data["std"]))


class NNPlanner:
    """A trained regression network behind the planner protocol.

    Parameters
    ----------
    model:
        Network mapping scaled features to a single acceleration output.
    scaler:
        Feature scaler fitted during training.
    window_estimator:
        The passing-window estimator whose output becomes the
        ``tau_{1,min/max}`` features.  Swap a conservative estimator for
        an aggressive one to move the same network between the basic and
        ultimate configurations.
    limits:
        Ego actuation limits; raw network output is clipped to them.
    oncoming_index:
        Vehicle index of the oncoming vehicle.
    """

    def __init__(
        self,
        model: Sequential,
        scaler: FeatureScaler,
        window_estimator: PassingWindowEstimator,
        limits: VehicleLimits,
        oncoming_index: int = 1,
    ) -> None:
        if scaler.mean.shape[0] != N_FEATURES:
            raise ConfigurationError(
                f"scaler expects {scaler.mean.shape[0]} features; the "
                f"planner produces {N_FEATURES}"
            )
        self._model = model
        self._scaler = scaler
        self._windows = window_estimator
        self._limits = limits
        self._oncoming_index = oncoming_index

    @property
    def model(self) -> Sequential:
        """The wrapped network."""
        return self._model

    @property
    def scaler(self) -> FeatureScaler:
        """The feature scaler."""
        return self._scaler

    @property
    def window_estimator(self) -> PassingWindowEstimator:
        """The estimator feeding the window features."""
        return self._windows

    def with_window_estimator(
        self, window_estimator: PassingWindowEstimator
    ) -> "NNPlanner":
        """A copy of this planner consulting a different estimator.

        The network and scaler are shared (they are read-only at
        inference time); only the feature source changes.
        """
        return NNPlanner(
            model=self._model,
            scaler=self._scaler,
            window_estimator=window_estimator,
            limits=self._limits,
            oncoming_index=self._oncoming_index,
        )

    # ------------------------------------------------------------------
    # Planner protocol
    # ------------------------------------------------------------------
    def plan(self, context: PlanningContext) -> float:
        """Window features -> scaled inference -> clipped acceleration."""
        window = self._windows.window(
            context.estimate_of(self._oncoming_index)
        )
        return self.plan_from_window(
            context.time, context.ego.position, context.ego.velocity, window
        )

    def plan_from_window(
        self, time: float, position: float, velocity: float, window: Interval
    ) -> float:
        """Inference on explicit inputs (mirrors the expert's API).

        Units: time [s], position [m], velocity [m/s] -> [m/s^2]
        """
        features = planner_features(time, position, velocity, window)
        scaled = self._scaler.transform(features)
        output = self._model.forward(as_batch(scaled))
        return self._limits.clip_acceleration(float(output[0, 0]))
