"""Vehicle dynamics substrate: states, the kinematic model, trajectories."""

from repro.dynamics.state import SystemState, VehicleState
from repro.dynamics.vehicle import VehicleLimits, VehicleModel
from repro.dynamics.trajectory import Trajectory, TrajectoryPoint
from repro.dynamics.profiles import (
    AccelerationProfile,
    BrakeThenGoProfile,
    ConstantProfile,
    PiecewiseProfile,
    RandomWalkProfile,
    RandomSequenceProfile,
    SinusoidProfile,
)

__all__ = [
    "VehicleState",
    "SystemState",
    "VehicleLimits",
    "VehicleModel",
    "Trajectory",
    "TrajectoryPoint",
    "AccelerationProfile",
    "ConstantProfile",
    "PiecewiseProfile",
    "RandomWalkProfile",
    "RandomSequenceProfile",
    "SinusoidProfile",
    "BrakeThenGoProfile",
]
