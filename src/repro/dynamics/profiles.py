"""Acceleration profiles for non-ego vehicles.

The paper's evaluation (Section V-A) drives the oncoming vehicle ``C_1``
with "a randomly generated sequence of accelerations in which the *i*-th
element is the control input of ``C_1`` at the *i*-th timestamp".
:class:`RandomSequenceProfile` reproduces that workload; the other profiles
provide structured behaviours (constant speed, braking events, sinusoidal
speed oscillation) used in examples, ablations, and tests.

A profile is a callable of ``(step_index, time, state)`` returning the
acceleration command for the coming control step, so profiles may be
open-loop (pre-generated sequences) or state-feedback (e.g. hold a target
speed).
"""

from __future__ import annotations

import math
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream
from repro.utils.validation import check_nonnegative, check_positive, check_range

__all__ = [
    "AccelerationProfile",
    "ConstantProfile",
    "RandomSequenceProfile",
    "RandomWalkProfile",
    "PiecewiseProfile",
    "SinusoidProfile",
    "BrakeThenGoProfile",
    "SpeedHoldProfile",
]


class AccelerationProfile(Protocol):
    """Protocol for acceleration command sources.

    Implementations return the acceleration to apply over the control step
    that *starts* at ``(step_index, time)`` given the vehicle's current
    ``state``.
    """

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        """Return the acceleration command for the coming step."""
        ...


class ConstantProfile:
    """Always command the same acceleration (0 by default: constant speed)."""

    def __init__(self, acceleration: float = 0.0) -> None:
        self._acceleration = float(acceleration)

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        return self._acceleration


class RandomSequenceProfile:
    """I.i.d. random acceleration per control step — the paper's workload.

    Each step draws uniformly from ``[a_low, a_high]``.  The sequence is
    generated lazily but cached, so querying the same step twice returns
    the same value and the full realised sequence can be inspected after a
    simulation.

    Parameters
    ----------
    rng:
        Seeded random stream; pass an independent child stream per
        simulation for reproducible batches.
    a_low, a_high:
        Draw bounds, m/s².  The defaults (±2 m/s²) keep the oncoming
        vehicle's behaviour plausible while leaving its passing-time
        window genuinely uncertain.
    """

    def __init__(
        self,
        rng: RngStream,
        a_low: float = -2.0,
        a_high: float = 2.0,
    ) -> None:
        """Bind the stream and bounds; draws happen lazily per step.

        Effects: mutates-args, draws-rng
        """
        self._rng = rng
        self._a_low, self._a_high = check_range(a_low, a_high, "a_low", "a_high")
        self._sequence: List[float] = []

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        if step_index < 0:
            raise ConfigurationError(f"step_index must be >= 0, got {step_index}")
        while len(self._sequence) <= step_index:
            self._sequence.append(
                float(self._rng.uniform(self._a_low, self._a_high))
            )
        return self._sequence[step_index]

    @property
    def realized_sequence(self) -> Tuple[float, ...]:
        """The accelerations drawn so far, in step order."""
        return tuple(self._sequence)


class RandomWalkProfile:
    """Acceleration follows a bounded random walk (smoother than i.i.d.).

    Each step perturbs the previous acceleration by a uniform increment in
    ``[-max_step, +max_step]`` and clips to ``[a_low, a_high]``.  Used for
    the figure-6 trajectory sampling where a physically smooth speed trace
    makes the filter behaviour legible.
    """

    def __init__(
        self,
        rng: RngStream,
        a_low: float = -2.0,
        a_high: float = 2.0,
        max_step: float = 0.5,
        initial: float = 0.0,
    ) -> None:
        """Bind the stream and walk bounds; draws happen lazily per step.

        Effects: mutates-args, draws-rng
        """
        self._rng = rng
        self._a_low, self._a_high = check_range(a_low, a_high, "a_low", "a_high")
        self._max_step = check_positive(max_step, "max_step")
        if not self._a_low <= initial <= self._a_high:
            raise ConfigurationError(
                f"initial acceleration {initial} outside [{a_low}, {a_high}]"
            )
        self._initial = float(initial)
        self._sequence: List[float] = []

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        if step_index < 0:
            raise ConfigurationError(f"step_index must be >= 0, got {step_index}")
        while len(self._sequence) <= step_index:
            prev = self._sequence[-1] if self._sequence else self._initial
            step = float(self._rng.uniform(-self._max_step, self._max_step))
            nxt = min(max(prev + step, self._a_low), self._a_high)
            self._sequence.append(nxt)
        return self._sequence[step_index]

    @property
    def realized_sequence(self) -> Tuple[float, ...]:
        """The accelerations drawn so far, in step order."""
        return tuple(self._sequence)


class PiecewiseProfile:
    """Piecewise-constant acceleration given as ``(start_time, value)`` knots.

    The value of the most recent knot at or before the query time applies;
    before the first knot the acceleration is 0.
    """

    def __init__(self, knots: Sequence[Tuple[float, float]]) -> None:
        if not knots:
            raise ConfigurationError("PiecewiseProfile needs at least one knot")
        ordered = sorted((float(t), float(a)) for t, a in knots)
        times = [t for t, _ in ordered]
        if len(set(times)) != len(times):
            raise ConfigurationError("PiecewiseProfile knot times must be unique")
        self._knots = ordered

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        value = 0.0
        for knot_time, knot_value in self._knots:
            if time >= knot_time:
                value = knot_value
            else:
                break
        return value


class SinusoidProfile:
    """Sinusoidal acceleration ``amplitude * sin(2*pi*t/period + phase)``.

    Produces a gently oscillating speed — a structured stress case for the
    Kalman filter (non-constant but bounded acceleration).
    """

    def __init__(
        self, amplitude: float = 1.0, period: float = 10.0, phase: float = 0.0
    ) -> None:
        self._amplitude = check_nonnegative(amplitude, "amplitude")
        self._period = check_positive(period, "period")
        self._phase = float(phase)

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        return self._amplitude * math.sin(
            2.0 * math.pi * time / self._period + self._phase
        )


class BrakeThenGoProfile:
    """Hard brake over a window, then accelerate back — a worst-ish case.

    Models an oncoming vehicle that suddenly slows (tempting an aggressive
    ego to commit to the turn) and then speeds up again.  Parameters give
    the braking window ``[t_brake, t_go)`` and the two acceleration
    levels.
    """

    def __init__(
        self,
        t_brake: float = 1.0,
        t_go: float = 3.0,
        brake_accel: float = -3.0,
        go_accel: float = 2.0,
    ) -> None:
        if t_go <= t_brake:
            raise ConfigurationError(
                f"t_go ({t_go}) must exceed t_brake ({t_brake})"
            )
        self._t_brake = float(t_brake)
        self._t_go = float(t_go)
        self._brake_accel = float(brake_accel)
        self._go_accel = float(go_accel)

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        if time < self._t_brake:
            return 0.0
        if time < self._t_go:
            return self._brake_accel
        return self._go_accel


class SpeedHoldProfile:
    """Proportional controller holding a target speed.

    Feedback profile used in the car-following scenario: commands
    ``gain * (v_target - v)`` clipped to ``[a_low, a_high]``.
    """

    def __init__(
        self,
        v_target: float,
        gain: float = 1.0,
        a_low: float = -3.0,
        a_high: float = 3.0,
        switch_time: Optional[float] = None,
        v_target_after: Optional[float] = None,
    ) -> None:
        self._v_target = check_nonnegative(v_target, "v_target")
        self._gain = check_positive(gain, "gain")
        self._a_low, self._a_high = check_range(a_low, a_high, "a_low", "a_high")
        self._switch_time = switch_time
        self._v_target_after = v_target_after
        if (switch_time is None) != (v_target_after is None):
            raise ConfigurationError(
                "switch_time and v_target_after must be given together"
            )

    def __call__(self, step_index: int, time: float, state: VehicleState) -> float:
        target = self._v_target
        if self._switch_time is not None and time >= self._switch_time:
            target = float(self._v_target_after)  # validated in __init__
        a = self._gain * (target - state.velocity)
        return min(max(a, self._a_low), self._a_high)
