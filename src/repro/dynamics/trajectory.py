"""Trajectory recording and queries.

A :class:`Trajectory` is the timestamped path of one vehicle through a
simulation.  The evaluation harness uses trajectories to compute reaching
times, the figure-6a experiment compares sensor-measured versus filtered
trajectories, and the property tests replay recorded trajectories through
the reachability analysis.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError, SimulationError

__all__ = ["TrajectoryPoint", "Trajectory"]


@dataclass(frozen=True, slots=True)
class TrajectoryPoint:
    """One timestamped sample of a vehicle's state.

    Units: time [s]
    """

    time: float
    state: VehicleState

    @property
    def position(self) -> float:
        """Shortcut for ``state.position``."""
        return self.state.position

    @property
    def velocity(self) -> float:
        """Shortcut for ``state.velocity``."""
        return self.state.velocity

    @property
    def acceleration(self) -> float:
        """Shortcut for ``state.acceleration``."""
        return self.state.acceleration


class Trajectory:
    """An append-only, time-ordered sequence of vehicle states.

    Appends must be strictly increasing in time; queries support exact
    lookup, nearest-sample lookup, and linear interpolation.
    """

    def __init__(self, points: Optional[Sequence[TrajectoryPoint]] = None) -> None:
        self._times: List[float] = []
        self._points: List[TrajectoryPoint] = []
        if points:
            for point in points:
                self.append(point.time, point.state)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append(self, time: float, state: VehicleState) -> None:
        """Append a sample; ``time`` must exceed the last recorded time.

        Units: time [s]
        """
        t = float(time)
        if math.isnan(t):
            raise ConfigurationError("trajectory time must not be NaN")
        if self._times and t <= self._times[-1]:
            raise SimulationError(
                f"trajectory times must be strictly increasing: "
                f"{t} after {self._times[-1]}"
            )
        # Kept as append-then-asarray deliberately: episodes terminate
        # early (collision/arrival) so the final length is unknown here,
        # list append is amortized O(1), and the bulk accessors run once
        # per episode for reporting, not per step.  The preallocated
        # structure-of-arrays layout belongs to the vectorized batch
        # engine (ROADMAP item 1), not this scalar recorder.
        self._times.append(t)  # safelint: disable=SFL302 - length unknown until terminal step
        self._points.append(TrajectoryPoint(time=t, state=state))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[TrajectoryPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self._points[index]

    @property
    def is_empty(self) -> bool:
        """Whether no sample has been recorded."""
        return not self._points

    @property
    def start_time(self) -> float:
        """Time of the first sample."""
        self._require_nonempty()
        return self._times[0]

    @property
    def end_time(self) -> float:
        """Time of the last sample."""
        self._require_nonempty()
        return self._times[-1]

    @property
    def duration(self) -> float:
        """Covered time span (0 for a single sample)."""
        self._require_nonempty()
        return self._times[-1] - self._times[0]

    def last(self) -> TrajectoryPoint:
        """The most recent sample."""
        self._require_nonempty()
        return self._points[-1]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def at_or_before(self, time: float) -> TrajectoryPoint:
        """Latest sample with ``sample.time <= time``.

        Units: time [s]

        Raises
        ------
        SimulationError
            If ``time`` precedes the first sample.
        """
        self._require_nonempty()
        idx = bisect.bisect_right(self._times, float(time)) - 1
        if idx < 0:
            raise SimulationError(
                f"no sample at or before t={time} (trajectory starts at "
                f"{self._times[0]})"
            )
        return self._points[idx]

    def interpolate(self, time: float) -> VehicleState:
        """Linearly interpolate position/velocity at ``time``.

        ``time`` must lie within the recorded span.  Acceleration is taken
        from the earlier bracketing sample (it is piecewise-constant over
        control steps in this library's simulations).

        Units: time [s]
        """
        self._require_nonempty()
        t = float(time)
        if t < self._times[0] or t > self._times[-1]:
            raise SimulationError(
                f"t={t} outside trajectory span "
                f"[{self._times[0]}, {self._times[-1]}]"
            )
        idx = bisect.bisect_left(self._times, t)
        # Exact hit on a stored sample (bisect found t itself): exact
        # float equality is intended, not drift-prone arithmetic.
        if idx < len(self._times) and self._times[idx] == t:  # safelint: disable=SFL001
            return self._points[idx].state
        lo = self._points[idx - 1]
        hi = self._points[idx]
        w = (t - lo.time) / (hi.time - lo.time)
        return VehicleState(
            position=lo.position + w * (hi.position - lo.position),
            velocity=lo.velocity + w * (hi.velocity - lo.velocity),
            acceleration=lo.acceleration,
        )

    # ------------------------------------------------------------------
    # Bulk accessors (for metrics / plotting-style reporting)
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """All sample times as an array.

        Shapes: -> [N]
        """
        return np.asarray(self._times, dtype=float)

    def positions(self) -> np.ndarray:
        """All positions as an array.

        Shapes: -> [N]
        """
        return np.asarray([p.position for p in self._points], dtype=float)

    def velocities(self) -> np.ndarray:
        """All velocities as an array.

        Shapes: -> [N]
        """
        return np.asarray([p.velocity for p in self._points], dtype=float)

    def accelerations(self) -> np.ndarray:
        """All applied accelerations as an array.

        Shapes: -> [N]
        """
        return np.asarray([p.acceleration for p in self._points], dtype=float)

    def first_time_when(self, predicate) -> Optional[float]:
        """Earliest sample time whose state satisfies ``predicate``.

        Parameters
        ----------
        predicate:
            Callable ``(time, state) -> bool``.

        Returns
        -------
        float or None
            The first matching sample time, or ``None`` if no sample
            matches.
        """
        for point in self._points:
            if predicate(point.time, point.state):
                return point.time
        return None

    def _require_nonempty(self) -> None:
        if not self._points:
            raise SimulationError("trajectory is empty")
