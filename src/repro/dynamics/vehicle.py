"""Double-integrator vehicle model with actuation and velocity limits.

The paper's vehicle model (Section II-A) is the exact discrete double
integrator

.. math::

    p(t + \\Delta t_c) = p(t) + v(t)\\,\\Delta t_c
                         + \\tfrac{1}{2} a(t)\\,\\Delta t_c^2,
    \\qquad
    v(t + \\Delta t_c) = v(t) + a(t)\\,\\Delta t_c ,

with physical limits ``v in [v_min, v_max]`` and ``a in [a_min, a_max]``
(``a_min < 0 < a_max``).  The reachability analysis of Eq. (2) relies on
the vehicle *saturating* at the velocity limits, so this model integrates
saturation exactly: when a step would cross a velocity bound, the step is
split at the crossing instant and the remainder is integrated at constant
(bounded) velocity.  That makes the reachability over-approximation sound
with respect to these dynamics — a property the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamics.state import VehicleState
from repro.errors import ConfigurationError
from repro.utils.validation import check_positive, check_range

__all__ = ["VehicleLimits", "VehicleModel"]


@dataclass(frozen=True, slots=True)
class VehicleLimits:
    """Physical actuation and velocity limits of a vehicle.

    Attributes
    ----------
    v_min, v_max:
        Velocity bounds, m/s.  ``v_min`` is usually 0 for forward-only
        traffic but may be negative (reversing) in tests.
    a_min, a_max:
        Acceleration bounds, m/s².  ``a_min`` is the strongest braking
        (negative), ``a_max`` the strongest acceleration (positive).

    Units: v_min [m/s], v_max [m/s], a_min [m/s^2], a_max [m/s^2]
    """

    v_min: float
    v_max: float
    a_min: float
    a_max: float

    def __post_init__(self) -> None:
        v_min, v_max = check_range(self.v_min, self.v_max, "v_min", "v_max")
        a_min, a_max = check_range(self.a_min, self.a_max, "a_min", "a_max")
        if a_min >= 0.0:
            raise ConfigurationError(
                f"a_min must be negative (braking), got {self.a_min!r}"
            )
        if a_max <= 0.0:
            raise ConfigurationError(
                f"a_max must be positive, got {self.a_max!r}"
            )
        object.__setattr__(self, "v_min", v_min)
        object.__setattr__(self, "v_max", v_max)
        object.__setattr__(self, "a_min", a_min)
        object.__setattr__(self, "a_max", a_max)

    def clip_acceleration(self, a: float) -> float:
        """Clip an acceleration command to ``[a_min, a_max]``.

        Units: a [m/s^2] -> [m/s^2]
        """
        return min(max(float(a), self.a_min), self.a_max)

    def clip_velocity(self, v: float) -> float:
        """Clip a velocity to ``[v_min, v_max]``.

        Units: v [m/s] -> [m/s]
        """
        return min(max(float(v), self.v_min), self.v_max)

    def admissible_velocity(self, v: float) -> bool:
        """Whether ``v`` respects the velocity bounds.

        Units: v [m/s]
        """
        return self.v_min <= v <= self.v_max


#: Default limits used throughout examples and experiments: urban traffic
#: with 20 m/s (72 km/h) top speed, comfortable 4 m/s² acceleration and
#: 6 m/s² emergency braking.
DEFAULT_LIMITS = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)


class VehicleModel:
    """Steps :class:`VehicleState` forward under the paper's dynamics.

    Parameters
    ----------
    limits:
        Physical limits enforced during integration.

    Notes
    -----
    The model is deliberately stateless — it is a pure function of
    ``(state, acceleration, dt)`` — so a single instance can serve every
    vehicle with the same limits, and planners can use it for lookahead
    without touching simulation state.
    """

    def __init__(self, limits: VehicleLimits = DEFAULT_LIMITS) -> None:
        self._limits = limits

    @property
    def limits(self) -> VehicleLimits:
        """The limits enforced by this model."""
        return self._limits

    def step(self, state: VehicleState, acceleration: float, dt: float) -> VehicleState:
        """Integrate one control step of length ``dt``.

        The commanded ``acceleration`` is clipped to the actuation limits.
        If the velocity would cross ``v_min``/``v_max`` mid-step, the step
        is split at the crossing instant and the remainder integrated at
        the saturated velocity, so the returned position is exact.

        Units: acceleration [m/s^2], dt [s]

        Returns
        -------
        VehicleState
            State after ``dt`` with ``acceleration`` recording the clipped
            command actually applied (0 is recorded for the saturated
            portion only in the sense that velocity no longer changes; the
            *command* is what is stored).
        """
        dt = check_positive(dt, "dt")
        a = self._limits.clip_acceleration(acceleration)
        p0 = state.position
        v0 = state.velocity

        if a == 0.0:
            v1 = v0
            p1 = p0 + v0 * dt
            return VehicleState(position=p1, velocity=v1, acceleration=a)

        v_unclipped = v0 + a * dt
        bound = self._limits.v_max if a > 0.0 else self._limits.v_min

        if (a > 0.0 and v_unclipped <= bound) or (a < 0.0 and v_unclipped >= bound):
            # No saturation: plain double-integrator update.
            p1 = p0 + v0 * dt + 0.5 * a * dt * dt
            return VehicleState(position=p1, velocity=v_unclipped, acceleration=a)

        # Saturates at `bound` after t_hit; beyond that, constant velocity.
        if (a > 0.0 and v0 >= bound) or (a < 0.0 and v0 <= bound):
            t_hit = 0.0  # already at (or beyond) the bound
            v_start = bound
            p_hit = p0
        else:
            t_hit = (bound - v0) / a
            v_start = v0
            p_hit = p0 + v0 * t_hit + 0.5 * a * t_hit * t_hit
        del v_start  # position at the hit is all that matters afterwards
        p1 = p_hit + bound * (dt - t_hit)
        return VehicleState(position=p1, velocity=bound, acceleration=a)

    def simulate(
        self,
        state: VehicleState,
        accelerations,
        dt: float,
    ) -> list[VehicleState]:
        """Apply a sequence of accelerations, returning all visited states.

        The returned list has ``len(accelerations) + 1`` entries and starts
        with the initial state (accelerations are in m/s²).

        Units: dt [s]
        """
        states = [state]
        for a in accelerations:
            state = self.step(state, a, dt)
            states.append(state)
        return states

    def coast_position(self, state: VehicleState, horizon: float) -> float:
        """Position after ``horizon`` seconds at constant current velocity.

        A convenience used by simple planners and in tests; velocity is
        clipped to the limits first.

        Units: horizon [s] -> [m]
        """
        if horizon < 0.0:
            raise ConfigurationError(f"horizon must be >= 0, got {horizon}")
        v = self._limits.clip_velocity(state.velocity)
        return state.position + v * horizon
