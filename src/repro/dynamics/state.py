"""State containers for vehicles and for the whole multi-vehicle system.

The paper's system model (Section II-A) is one-dimensional: each vehicle is
described by a longitudinal position ``p`` and velocity ``v`` along its own
fixed path, driven by an acceleration input ``a``.  The *system state*
``x(t)`` gathers the states of all vehicles at a common timestamp; the
unsafe set and target set of the problem formulation are predicates over
system states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["VehicleState", "SystemState"]


@dataclass(frozen=True, slots=True)
class VehicleState:
    """Kinematic state of one vehicle along its path.

    Attributes
    ----------
    position:
        Longitudinal position ``p`` along the vehicle's path, metres.
    velocity:
        Longitudinal velocity ``v``, m/s.
    acceleration:
        The acceleration input ``a`` that was applied (or is being applied)
        over the step ending at this state, m/s².  Carried in the state
        because messages in the paper transmit ``(p, v, a)`` triples and
        the aggressive unsafe-set estimation uses the *current* observed
        acceleration of the other vehicle.

    Units: position [m], velocity [m/s], acceleration [m/s^2]
    """

    position: float
    velocity: float
    acceleration: float = 0.0

    def __post_init__(self) -> None:
        for name in ("position", "velocity", "acceleration"):
            value = getattr(self, name)
            if math.isnan(float(value)):
                raise ConfigurationError(f"VehicleState.{name} must not be NaN")

    def as_vector(self) -> np.ndarray:
        """Return the ``[p, v]`` column vector used by the Kalman filter.

        Shapes: -> [2, 1]
        """
        return np.array([[self.position], [self.velocity]], dtype=float)

    def with_acceleration(self, acceleration: float) -> "VehicleState":
        """Return a copy carrying a different acceleration input.

        Units: acceleration [m/s^2]
        """
        return replace(self, acceleration=float(acceleration))

    def shifted(self, dp: float = 0.0, dv: float = 0.0) -> "VehicleState":
        """Return a copy with position/velocity offset (used in tests).

        Units: dp [m], dv [m/s]
        """
        return replace(
            self, position=self.position + dp, velocity=self.velocity + dv
        )

    def __str__(self) -> str:
        return (
            f"p={self.position:.3f}m v={self.velocity:.3f}m/s "
            f"a={self.acceleration:.3f}m/s^2"
        )


@dataclass(frozen=True, slots=True)
class SystemState:
    """Joint state ``x(t)`` of every vehicle at a common timestamp.

    By convention vehicle index 0 is the ego vehicle ``C_0`` and indices
    ``1..n-1`` are the other (connected) vehicles, matching the paper.

    Units: time [s]
    """

    time: float
    vehicles: Tuple[VehicleState, ...]

    def __post_init__(self) -> None:
        if math.isnan(float(self.time)):
            raise ConfigurationError("SystemState.time must not be NaN")
        if not self.vehicles:
            raise ConfigurationError("SystemState requires at least one vehicle")
        object.__setattr__(self, "vehicles", tuple(self.vehicles))

    @classmethod
    def of(
        cls, time: float, vehicles: Sequence[VehicleState]
    ) -> "SystemState":
        """Build a system state from any sequence of vehicle states.

        Units: time [s]
        """
        return cls(time=float(time), vehicles=tuple(vehicles))

    @property
    def ego(self) -> VehicleState:
        """The ego vehicle's state (``C_0``)."""
        return self.vehicles[0]

    @property
    def others(self) -> Tuple[VehicleState, ...]:
        """States of all non-ego vehicles (``C_1 .. C_{n-1}``)."""
        return self.vehicles[1:]

    @property
    def n_vehicles(self) -> int:
        """Number of vehicles in the system."""
        return len(self.vehicles)

    def vehicle(self, index: int) -> VehicleState:
        """State of vehicle ``index`` (0 is the ego)."""
        return self.vehicles[index]

    def with_vehicle(self, index: int, state: VehicleState) -> "SystemState":
        """Return a copy in which vehicle ``index`` has the given state."""
        vehicles = list(self.vehicles)
        vehicles[index] = state
        return SystemState(time=self.time, vehicles=tuple(vehicles))

    def with_time(self, time: float) -> "SystemState":
        """Return a copy stamped with a different time.

        Units: time [s]
        """
        return SystemState(time=float(time), vehicles=self.vehicles)

    def __iter__(self) -> Iterator[VehicleState]:
        return iter(self.vehicles)

    def __str__(self) -> str:
        parts = ", ".join(f"C{i}({v})" for i, v in enumerate(self.vehicles))
        return f"t={self.time:.3f}s: {parts}"
