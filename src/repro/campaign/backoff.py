"""Deterministic capped exponential backoff for chunk retries.

Retrying a transiently failed chunk immediately tends to hit the same
overloaded machine state that killed it; exponential backoff with jitter
is the standard cure.  The twist here is determinism: the delay for
retry *attempt* of *chunk* under a given campaign *fingerprint* is a
pure function of those three values — no wall clock, no global RNG — so
a resumed campaign makes exactly the decisions the original would have,
and a test can assert the full delay schedule without sleeping.

Only the *waiting* consults real time, via an injected ``sleep``
callable that tests replace with a recorder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CampaignError
from repro.utils.rng import RngStream

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with seeded jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts per chunk, including the first (1 = no retries).
    base_delay:
        Delay before the first retry [s].
    cap:
        Upper bound on the un-jittered delay [s].
    jitter:
        Relative jitter width: the delay is scaled by a factor drawn
        uniformly from ``[1, 1 + jitter]``, seeded from
        ``(fingerprint, chunk, attempt)`` so it is reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    cap: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise CampaignError(
                f"max_attempts must be a positive integer, got "
                f"{self.max_attempts!r}"
            )
        if self.base_delay < 0.0:
            raise CampaignError(
                f"base_delay must be non-negative, got {self.base_delay!r}"
            )
        if self.cap < self.base_delay:
            raise CampaignError(
                f"cap ({self.cap!r}) must be at least base_delay "
                f"({self.base_delay!r})"
            )
        if self.jitter < 0.0:
            raise CampaignError(
                f"jitter must be non-negative, got {self.jitter!r}"
            )

    def delay(self, fingerprint: str, chunk: int, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` of ``chunk``.

        ``attempt`` counts retries from 1 (the delay *before* the second
        execution).  The value is deterministic in the arguments: the
        jitter factor is drawn from an :class:`~repro.utils.rng.RngStream`
        seeded with the leading fingerprint bytes, the chunk number and
        the attempt number.
        """
        if attempt < 1:
            raise CampaignError(
                f"backoff attempt numbers start at 1, got {attempt}"
            )
        raw = min(self.cap, self.base_delay * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        seed_material = [int(fingerprint[:8], 16), chunk, attempt]
        factor = 1.0 + self.jitter * RngStream(seed_material).uniform(0.0, 1.0)
        return raw * factor
