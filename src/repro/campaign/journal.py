"""Append-only JSONL write-ahead journal with per-record checksums.

The journal is the campaign's source of truth about progress: a chunk
counts as done if and only if a valid ``chunk_completed`` record exists.
Records are single JSON lines in canonical encoding, each carrying

* ``schema_version`` — rejected across schema majors;
* ``seq`` — a strictly consecutive sequence number starting at 0, so a
  missing middle record is detected as corruption, not silently skipped;
* ``checksum`` — SHA-256 over the canonical record without the checksum
  field, so a bit-flipped record never parses as valid progress.

Every append is flushed and fsynced before the writer returns: once a
``chunk_completed`` record is journaled, the chunk snapshot it points to
was already atomically persisted, so a crash at **any** byte offset
loses at most the record currently being written.  That final torn
record is expected damage — :func:`recover_journal` truncates it and
resumes — whereas damage anywhere before the tail means storage
corruption or hand-editing and raises
:class:`~repro.errors.JournalCorruptionError` instead of guessing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.errors import JournalCorruptionError, SerializationError
from repro.obs.observer import resolve_observer
from repro.obs.trace import perf_now
from repro.sim.serialization import (
    SCHEMA_VERSION,
    canonical_dumps,
    check_schema_version,
    content_digest,
)

__all__ = ["JournalWriter", "read_journal", "recover_journal"]


def _record_checksum(record: dict) -> str:
    body = {key: value for key, value in record.items() if key != "checksum"}
    return content_digest(body)


def _parse_line(line: bytes) -> Optional[dict]:
    """One journal line as a validated record, or ``None`` if invalid.

    Invalid means: not JSON, not an object, missing or wrong checksum.
    Schema-major mismatches raise — they are not torn writes.
    """
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    checksum = record.get("checksum")
    if not isinstance(checksum, str):
        return None
    if _record_checksum(record) != checksum:
        return None
    check_schema_version(record, "journal record")
    return record


def read_journal(path: Union[str, Path]) -> Tuple[List[dict], bool]:
    """Read a journal; return ``(records, torn_tail)``.

    Read-only: a torn final record is *reported* (``torn_tail=True``)
    but the file is left untouched — use :func:`recover_journal` before
    appending.  Raises :class:`~repro.errors.JournalCorruptionError` for
    damage anywhere except the final record, including out-of-sequence
    records and a missing file with journal bytes elsewhere implied.
    """
    records, torn, _ = _scan(Path(path))
    return records, torn


def recover_journal(path: Union[str, Path]) -> List[dict]:
    """Read a journal, truncating a torn final record in place.

    Returns the valid records; after this call the file ends exactly at
    the last valid record, so a subsequent :class:`JournalWriter` can
    append safely.
    """
    path = Path(path)
    records, torn, valid_bytes = _scan(path)
    if torn:
        with open(path, "rb+") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return records


def _scan(path: Path) -> Tuple[List[dict], bool, int]:
    """Parse the journal; return ``(records, torn_tail, valid_bytes)``.

    A complete append always ends with a newline, so any bytes after
    the final newline are an interrupted append (torn tail).  A line
    that fails validation is likewise torn if and only if it is the last
    line of the file; anywhere earlier it is corruption and raises.
    """
    if not path.exists():
        return [], False, 0
    data = path.read_bytes()
    records: List[dict] = []
    valid_bytes = 0
    start = 0
    while start < len(data):
        newline = data.find(b"\n", start)
        if newline == -1:
            # Bytes after the last newline: the append was cut short.
            return records, True, valid_bytes
        line = data[start:newline]
        record = _parse_line(line)
        if record is None:
            if newline == len(data) - 1:
                # Invalid final line — a torn write that happened to end
                # on the newline; drop it like any other torn tail.
                return records, True, valid_bytes
            raise JournalCorruptionError(
                f"journal {path} record {len(records)} (byte {start}) is "
                "corrupt before the final record; refusing to guess — "
                "restore the journal from storage or restart the campaign"
            )
        if record.get("seq") != len(records):
            raise JournalCorruptionError(
                f"journal {path} record {len(records)} has sequence "
                f"number {record.get('seq')!r}; records are missing or "
                "reordered"
            )
        records.append(record)
        start = newline + 1
        valid_bytes = start
    return records, False, valid_bytes


class JournalWriter:
    """Appends checksummed records to a journal file.

    Parameters
    ----------
    path:
        Journal file (created if missing).
    next_seq:
        Sequence number of the next record — ``len(records)`` returned
        by :func:`recover_journal` when resuming, 0 for a fresh journal.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; records the
        fsync latency of every append (``journal.fsync_seconds``).
        Write-only — journal bytes are identical with or without it.
    """

    def __init__(
        self, path: Union[str, Path], next_seq: int = 0, observer=None
    ) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = int(next_seq)
        self._obs = resolve_observer(observer)
        self._handle = open(self._path, "ab")

    @property
    def path(self) -> Path:
        """The journal file."""
        return self._path

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will carry."""
        return self._seq

    def append(self, record_type: str, **payload) -> dict:
        """Durably append one record; returns the record as written.

        The record is flushed and fsynced before returning, so callers
        may rely on journal-then-act ordering (write-ahead logging).
        """
        record = {
            "schema_version": SCHEMA_VERSION,
            "seq": self._seq,
            "type": record_type,
        }
        record.update(payload)
        record["checksum"] = _record_checksum(record)
        line = canonical_dumps(record) + "\n"
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        if self._obs.enabled:
            started = perf_now()
            os.fsync(self._handle.fileno())
            self._obs.observe(
                "journal.fsync_seconds", max(perf_now() - started, 0.0)
            )
            self._obs.count("journal.appends")
        else:
            os.fsync(self._handle.fileno())
        self._seq += 1
        return record

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
