"""Durable, resumable simulation campaigns.

A *campaign* is a batch workload (scenario + communication setup +
planner + seed list) big enough that the process running it becomes the
weakest link: a ``kill -9``, OOM, or reboot halfway through a 10k-seed
certification sweep must not discard the completed chunks.  This package
makes the batch layer durable:

* :class:`CampaignManifest` — the declarative workload definition whose
  canonical content hash *fingerprints* the campaign;
* :mod:`repro.campaign.journal` — an append-only JSONL write-ahead
  journal with per-record checksums and torn-tail recovery;
* :mod:`repro.campaign.store` — atomic (tmp + fsync + rename) snapshots
  of completed chunks;
* :class:`CampaignRunner` — runs chunks through
  :class:`~repro.sim.parallel.ParallelBatchRunner`, journals progress,
  retries transient chunk failures with deterministic seeded backoff,
  drains cleanly on SIGINT/SIGTERM, and resumes a killed campaign to
  aggregate results **bit-identical** to an uninterrupted run.

The ``repro-campaign`` console script (``run`` / ``resume`` / ``status``
/ ``verify``) exposes the whole lifecycle; see ``docs/ROBUSTNESS.md``
for the durability contract.
"""

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.journal import JournalWriter, read_journal, recover_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    CampaignReport,
    CampaignRunner,
    campaign_status,
    verify_campaign,
)
from repro.campaign.store import atomic_write_json, load_json

__all__ = [
    "BackoffPolicy",
    "CampaignManifest",
    "CampaignReport",
    "CampaignRunner",
    "JournalWriter",
    "atomic_write_json",
    "campaign_status",
    "load_json",
    "read_journal",
    "recover_journal",
    "verify_campaign",
]
