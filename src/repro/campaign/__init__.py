"""Durable, resumable simulation campaigns.

A *campaign* is a batch workload (scenario + communication setup +
planner + seed list) big enough that the process running it becomes the
weakest link: a ``kill -9``, OOM, or reboot halfway through a 10k-seed
certification sweep must not discard the completed chunks.  This package
makes the batch layer durable:

* :class:`CampaignManifest` — the declarative workload definition whose
  canonical content hash *fingerprints* the campaign;
* :mod:`repro.campaign.journal` — an append-only JSONL write-ahead
  journal with per-record checksums and torn-tail recovery;
* :mod:`repro.campaign.store` — atomic (tmp + fsync + rename) snapshots
  of completed chunks;
* :class:`CampaignRunner` — runs chunks through
  :class:`~repro.sim.parallel.ParallelBatchRunner`, journals progress,
  retries transient chunk failures with deterministic seeded backoff,
  drains cleanly on SIGINT/SIGTERM, and resumes a killed campaign to
  aggregate results **bit-identical** to an uninterrupted run.

For certification sweeps too big for one process, the
:mod:`repro.campaign.shard` subpackage distributes a campaign's chunk
space across worker subprocesses with lease-based claims journaled in
the same write-ahead journal — kill-anywhere workers *and* coordinator,
byte-identical merged aggregates.

The ``repro-campaign`` console script (``run`` / ``resume`` / ``status``
/ ``verify`` / ``shard-run`` / ``shard-resume`` / ``shard-status``)
exposes the whole lifecycle; see ``docs/ROBUSTNESS.md`` for the
durability and distribution contracts.
"""

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.journal import JournalWriter, read_journal, recover_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    CampaignProgress,
    CampaignReport,
    CampaignRunner,
    campaign_status,
    finalise_campaign,
    replay_progress,
    verify_campaign,
)
from repro.campaign.shard import LeaseTable, ShardCoordinator, shard_status
from repro.campaign.store import atomic_write_json, load_json

__all__ = [
    "BackoffPolicy",
    "CampaignManifest",
    "CampaignProgress",
    "CampaignReport",
    "CampaignRunner",
    "JournalWriter",
    "LeaseTable",
    "ShardCoordinator",
    "atomic_write_json",
    "campaign_status",
    "finalise_campaign",
    "load_json",
    "read_journal",
    "recover_journal",
    "replay_progress",
    "shard_status",
    "verify_campaign",
]
