"""``repro-campaign``: the durable campaign command line.

Subcommands
-----------

``run``
    Start a campaign from a manifest JSON file into a directory.
``resume``
    Continue a killed or drained campaign from its directory.
``status``
    Read-only progress summary (safe while a campaign is running).
``verify``
    Cross-check journal, chunk snapshots, and aggregate digests.

Exit codes: 0 success; 1 verification found problems; 2 campaign error
(bad manifest, fingerprint mismatch, corrupt journal); 3 the run was
interrupted by SIGINT/SIGTERM after a clean drain (resume to continue).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    MANIFEST_FILE,
    CampaignReport,
    CampaignRunner,
    campaign_status,
    verify_campaign,
)
from repro.errors import ReproError

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_VERIFY_FAILED = 1
EXIT_ERROR = 2
EXIT_INTERRUPTED = 3


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Durable, resumable simulation campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start a campaign from a manifest")
    run.add_argument("--manifest", required=True, help="manifest JSON file")
    run.add_argument("--dir", required=True, help="campaign directory")
    _add_exec_options(run)

    resume = sub.add_parser("resume", help="continue a killed campaign")
    resume.add_argument("--dir", required=True, help="campaign directory")
    _add_exec_options(resume)

    status = sub.add_parser("status", help="read-only progress summary")
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    verify = sub.add_parser("verify", help="cross-check campaign artifacts")
    verify.add_argument("--dir", required=True, help="campaign directory")
    verify.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _add_exec_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers", type=int, default=1, help="worker processes per chunk"
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-index retry budget inside the batch layer",
    )
    sub.add_argument(
        "--chunk-attempts",
        type=int,
        default=3,
        help="full-chunk attempts for transient (worker/timeout) failures",
    )


def _runner(args: argparse.Namespace, manifest: CampaignManifest) -> CampaignRunner:
    return CampaignRunner(
        manifest,
        args.dir,
        n_workers=args.workers,
        max_retries=args.max_retries,
        backoff=BackoffPolicy(max_attempts=args.chunk_attempts),
    )


def _print_report(report: CampaignReport) -> None:
    print(
        f"campaign {report.fingerprint[:12]}...: {report.status} "
        f"({report.completed_chunks}/{report.n_chunks} chunks, "
        f"{report.chunks_run} run now)"
    )
    if report.status == "completed":
        print(f"results digest: {report.results_digest}")
        if report.n_failed:
            print(f"failed simulations: {report.n_failed}")
        if report.aggregate is not None:
            for key in (
                "n_runs",
                "n_safe",
                "safe_rate",
                "mean_eta",
                "mean_reaching_time",
                "mean_emergency_frequency",
            ):
                print(f"  {key}: {report.aggregate.get(key)}")
    else:
        print("interrupted — resume with: repro-campaign resume --dir <dir>")


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            manifest = CampaignManifest.load(args.manifest)
            report = _runner(args, manifest).run()
            _print_report(report)
            return (
                EXIT_OK if report.status == "completed" else EXIT_INTERRUPTED
            )
        if args.command == "resume":
            manifest = CampaignManifest.load(f"{args.dir}/{MANIFEST_FILE}")
            report = _runner(args, manifest).resume()
            _print_report(report)
            return (
                EXIT_OK if report.status == "completed" else EXIT_INTERRUPTED
            )
        if args.command == "status":
            summary = campaign_status(args.dir)
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                for key, value in summary.items():
                    print(f"{key}: {value}")
            return EXIT_OK
        # verify
        outcome = verify_campaign(args.dir)
        if args.json:
            print(json.dumps(outcome, indent=2, sort_keys=True))
        else:
            state = "ok" if outcome["ok"] else "FAILED"
            print(
                f"verify {state}: {outcome['completed_chunks']}/"
                f"{outcome['n_chunks']} chunks, "
                f"finished={outcome['finished']}"
            )
            for problem in outcome["problems"]:
                print(f"  problem: {problem}")
        return EXIT_OK if outcome["ok"] else EXIT_VERIFY_FAILED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
