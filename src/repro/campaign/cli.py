"""``repro-campaign``: the durable campaign command line.

Subcommands
-----------

``run``
    Start a campaign from a manifest JSON file into a directory.
``resume``
    Continue a killed or drained campaign from its directory.
``status``
    Read-only progress summary (safe while a campaign is running).
``verify``
    Cross-check journal, chunk snapshots, and aggregate digests.
``shard-run``
    Start a campaign sharded across N worker processes with
    lease-based chunk claims (see :mod:`repro.campaign.shard`).
``shard-resume``
    Continue a sharded campaign after any crash — worker *or*
    coordinator; progress is replayed purely from the journal.
``shard-status``
    Read-only per-worker summary: leases, heartbeats, steals,
    speculative dispatches, duplicate completions — plus the newest
    fleet telemetry frame when the coordinator wrote a
    ``telemetry.jsonl`` sidecar (``--expo`` renders it as Prometheus
    text instead).

Exit codes: 0 success; 1 verification found problems; 2 campaign error
(bad manifest, fingerprint mismatch, corrupt journal, invalid flag);
3 the run was interrupted by SIGINT/SIGTERM after a clean drain
(resume to continue).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    MANIFEST_FILE,
    CampaignReport,
    CampaignRunner,
    campaign_status,
    verify_campaign,
)
from repro.campaign.shard import ShardCoordinator, shard_status
from repro.errors import ReproError
from repro.utils.validation import (
    check_flag_at_least,
    check_flag_below,
    check_flag_count,
    check_flag_positive,
)

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_VERIFY_FAILED = 1
EXIT_ERROR = 2
EXIT_INTERRUPTED = 3


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Durable, resumable simulation campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start a campaign from a manifest")
    run.add_argument("--manifest", required=True, help="manifest JSON file")
    run.add_argument("--dir", required=True, help="campaign directory")
    _add_exec_options(run)

    resume = sub.add_parser("resume", help="continue a killed campaign")
    resume.add_argument("--dir", required=True, help="campaign directory")
    _add_exec_options(resume)

    status = sub.add_parser("status", help="read-only progress summary")
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    verify = sub.add_parser("verify", help="cross-check campaign artifacts")
    verify.add_argument("--dir", required=True, help="campaign directory")
    verify.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    shard_run = sub.add_parser(
        "shard-run",
        help="start a campaign sharded across worker processes",
    )
    shard_run.add_argument(
        "--manifest", required=True, help="manifest JSON file"
    )
    shard_run.add_argument("--dir", required=True, help="campaign directory")
    _add_exec_options(shard_run)
    _add_shard_options(shard_run)

    shard_resume = sub.add_parser(
        "shard-resume",
        help="continue a sharded campaign after any crash",
    )
    shard_resume.add_argument(
        "--dir", required=True, help="campaign directory"
    )
    _add_exec_options(shard_resume)
    _add_shard_options(shard_resume)

    shard_stat = sub.add_parser(
        "shard-status",
        help="per-worker leases, heartbeats, steals (read-only)",
    )
    shard_stat.add_argument("--dir", required=True, help="campaign directory")
    shard_stat.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    shard_stat.add_argument(
        "--expo",
        action="store_true",
        help="print the newest telemetry frame as Prometheus text",
    )
    return parser


def _add_exec_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--workers", type=int, default=1, help="worker processes per chunk"
    )
    sub.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-index retry budget inside the batch layer",
    )
    sub.add_argument(
        "--chunk-attempts",
        type=int,
        default=3,
        help="full-chunk attempts for transient (worker/timeout) failures",
    )
    sub.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        help="per-simulation time budget in seconds (default: no watchdog)",
    )


def _add_shard_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds of heartbeat silence before a lease expires",
    )
    sub.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between worker liveness heartbeats",
    )
    sub.add_argument(
        "--straggler-factor",
        type=float,
        default=4.0,
        help="lease-age multiple of the TTL before speculative re-dispatch",
    )


def _validate_exec_options(args: argparse.Namespace) -> None:
    """Reject nonsensical knob values before anything touches disk.

    All numeric knobs go through the shared flag validators in
    :mod:`repro.utils.validation` — the same helpers the serve CLI
    uses — so NaN/zero/negative values fail identically everywhere.
    """
    check_flag_count(args.workers, "--workers", minimum=1)
    check_flag_count(args.max_retries, "--max-retries", minimum=0)
    check_flag_count(args.chunk_attempts, "--chunk-attempts", minimum=1)
    if args.chunk_timeout is not None:
        check_flag_positive(args.chunk_timeout, "--chunk-timeout")
    if hasattr(args, "lease_ttl"):
        check_flag_positive(args.lease_ttl, "--lease-ttl")
        check_flag_positive(args.heartbeat_interval, "--heartbeat-interval")
        check_flag_below(
            args.heartbeat_interval,
            "--heartbeat-interval",
            args.lease_ttl,
            "--lease-ttl",
            reason="every healthy lease would expire",
        )
        check_flag_at_least(args.straggler_factor, 1.0, "--straggler-factor")


def _runner(args: argparse.Namespace, manifest: CampaignManifest) -> CampaignRunner:
    return CampaignRunner(
        manifest,
        args.dir,
        n_workers=args.workers,
        max_retries=args.max_retries,
        timeout_per_sim=args.chunk_timeout,
        backoff=BackoffPolicy(max_attempts=args.chunk_attempts),
    )


def _coordinator(
    args: argparse.Namespace, manifest: CampaignManifest
) -> ShardCoordinator:
    return ShardCoordinator(
        manifest,
        args.dir,
        n_workers=args.workers,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        straggler_factor=args.straggler_factor,
        backoff=BackoffPolicy(max_attempts=args.chunk_attempts),
        max_retries=args.max_retries,
        timeout_per_sim=args.chunk_timeout,
    )


def _print_report(report: CampaignReport) -> None:
    print(
        f"campaign {report.fingerprint[:12]}...: {report.status} "
        f"({report.completed_chunks}/{report.n_chunks} chunks, "
        f"{report.chunks_run} run now)"
    )
    if report.status == "completed":
        print(f"results digest: {report.results_digest}")
        if report.n_failed:
            print(f"failed simulations: {report.n_failed}")
        if report.aggregate is not None:
            for key in (
                "n_runs",
                "n_safe",
                "safe_rate",
                "mean_eta",
                "mean_reaching_time",
                "mean_emergency_frequency",
            ):
                print(f"  {key}: {report.aggregate.get(key)}")
    else:
        print("interrupted — resume with: repro-campaign resume --dir <dir>")


def _print_shard_status(summary: dict) -> None:
    for key in (
        "name",
        "fingerprint",
        "n_chunks",
        "completed_chunks",
        "coordinator_epochs",
        "lease_expirations",
        "duplicate_completions",
        "journal_records",
        "torn_tail",
        "finished",
    ):
        print(f"{key}: {summary[key]}")
    for worker, entry in sorted(summary["workers"].items()):
        print(
            f"worker {worker}: pid={entry['pid']} alive={entry['alive']} "
            f"leases={entry['leases']} steals={entry['steals']} "
            f"speculative={entry['speculative']} "
            f"heartbeats={entry['heartbeats']} "
            f"completions={entry['completions']} "
            f"expirations={entry['expirations']} errors={entry['errors']}"
        )
    telemetry = summary.get("telemetry")
    if telemetry is not None:
        print(
            f"telemetry: {telemetry['frames']} frames "
            f"(last wall {telemetry['last_wall']})"
        )
        for name, value in sorted(telemetry["counters"].items()):
            if name.startswith("fleet.") and "{" not in name:
                print(f"  {name}: {value}")


def _print_shard_expo(summary: dict) -> int:
    """Render the newest telemetry frame as Prometheus text; exit code."""
    from repro.obs.expo import render_prometheus

    telemetry = summary.get("telemetry")
    if telemetry is None:
        print("error: no telemetry frames recorded yet", file=sys.stderr)
        return EXIT_ERROR
    snapshot = {
        "counters": telemetry["counters"],
        "gauges": telemetry["gauges"],
        "histograms": telemetry["histograms"],
    }
    sys.stdout.write(render_prometheus(snapshot))
    return EXIT_OK


def _report_exit(report: CampaignReport) -> int:
    _print_report(report)
    return EXIT_OK if report.status == "completed" else EXIT_INTERRUPTED


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            _validate_exec_options(args)
            manifest = CampaignManifest.load(args.manifest)
            return _report_exit(_runner(args, manifest).run())
        if args.command == "resume":
            _validate_exec_options(args)
            manifest = CampaignManifest.load(f"{args.dir}/{MANIFEST_FILE}")
            return _report_exit(_runner(args, manifest).resume())
        if args.command == "shard-run":
            _validate_exec_options(args)
            manifest = CampaignManifest.load(args.manifest)
            return _report_exit(_coordinator(args, manifest).run())
        if args.command == "shard-resume":
            _validate_exec_options(args)
            manifest = CampaignManifest.load(f"{args.dir}/{MANIFEST_FILE}")
            return _report_exit(_coordinator(args, manifest).resume())
        if args.command == "status":
            summary = campaign_status(args.dir)
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                for key, value in summary.items():
                    print(f"{key}: {value}")
            return EXIT_OK
        if args.command == "shard-status":
            summary = shard_status(args.dir)
            if args.expo:
                return _print_shard_expo(summary)
            if args.json:
                print(json.dumps(summary, indent=2, sort_keys=True))
            else:
                _print_shard_status(summary)
            return EXIT_OK
        # verify
        outcome = verify_campaign(args.dir)
        if args.json:
            print(json.dumps(outcome, indent=2, sort_keys=True))
        else:
            state = "ok" if outcome["ok"] else "FAILED"
            print(
                f"verify {state}: {outcome['completed_chunks']}/"
                f"{outcome['n_chunks']} chunks, "
                f"finished={outcome['finished']}"
            )
            for problem in outcome["problems"]:
                print(f"  problem: {problem}")
        return EXIT_OK if outcome["ok"] else EXIT_VERIFY_FAILED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
