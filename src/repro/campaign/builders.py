"""Registries turning manifest specs into live simulation objects.

Each builder maps a small JSON object — ``{"kind": ..., **params}`` —
to the corresponding library object.  The registries cover everything a
certification campaign needs (the paper's scenarios, the composable
channel fault algebra, seeded fault plans, the shielded compound
planner) while staying strictly declarative: a manifest can never name
arbitrary code, only registered kinds, so loading an untrusted manifest
builds nothing beyond these factories.

Parameter validation is delegated to the target constructors (they
already check probabilities, signs and units); a wrong or missing
parameter surfaces as :class:`~repro.errors.CampaignError` naming the
offending spec.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.comm.disturbance import DisturbanceModel, no_disturbance
from repro.comm.faults import (
    Duplication,
    FaultModel,
    FixedDelay,
    GaussianJitter,
    GilbertElliottLoss,
    IndependentLoss,
    NoFault,
    UniformJitter,
    compose,
)
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.errors import CampaignError, ReproError
from repro.faults.plan import (
    FaultPlan,
    PlannerFault,
    PlannerFaultKind,
    SensorFault,
    SensorFaultKind,
    StepWindow,
)
from repro.faults.planner_wrapper import FaultyPlanner
from repro.planners.base import Planner
from repro.planners.constant import (
    ConstantPlanner,
    FullBrakePlanner,
    FullThrottlePlanner,
)
from repro.scenarios.base import Scenario
from repro.scenarios.car_following import CarFollowingScenario
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig
from repro.sim.runner import EstimatorKind

__all__ = [
    "build_scenario",
    "build_comm",
    "build_config",
    "build_planner",
    "build_workload",
]

_SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "left_turn": LeftTurnScenario,
    "car_following": CarFollowingScenario,
}

_FAULT_STAGES: Dict[str, Callable[..., FaultModel]] = {
    "no_fault": NoFault,
    "independent_loss": IndependentLoss,
    "gilbert_elliott_loss": GilbertElliottLoss,
    "fixed_delay": FixedDelay,
    "uniform_jitter": UniformJitter,
    "gaussian_jitter": GaussianJitter,
    "duplication": Duplication,
}


def _kind_of(spec: dict, what: str, registry: Dict[str, Callable]) -> str:
    if not isinstance(spec, dict):
        raise CampaignError(
            f"{what} spec must be a JSON object, got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    if kind not in registry:
        raise CampaignError(
            f"unknown {what} kind {kind!r}; expected one of "
            f"{sorted(registry)}"
        )
    return kind


def _construct(factory: Callable, spec: dict, what: str):
    params = {key: value for key, value in spec.items() if key != "kind"}
    try:
        return factory(**params)
    except TypeError as exc:
        raise CampaignError(f"bad parameters for {what} spec {spec}: {exc}") from exc
    except ReproError as exc:
        raise CampaignError(f"invalid {what} spec {spec}: {exc}") from exc


def build_scenario(spec: dict) -> Scenario:
    """Build a scenario from ``{"kind": "left_turn" | "car_following"}``."""
    kind = _kind_of(spec, "scenario", _SCENARIOS)
    return _construct(_SCENARIOS[kind], spec, "scenario")


def _build_fault_model(stages: List[dict]) -> FaultModel:
    built = []
    for stage in stages:
        kind = _kind_of(stage, "channel fault", _FAULT_STAGES)
        built.append(_construct(_FAULT_STAGES[kind], stage, "channel fault"))
    if not built:
        return NoFault()
    if len(built) == 1:
        return built[0]
    return compose(*built)


def build_comm(spec: dict) -> CommSetup:
    """Build a :class:`CommSetup` from a manifest ``comm`` spec.

    Recognised fields: ``dt_m``/``dt_s`` [s] (default 0.1),
    ``sensor_noise`` (uniform half-width on all three channels, default
    0 = noiseless), ``disturbance`` (``{"delay": s, "drop_probability":
    p}`` preset) and ``faults`` (ordered stage list composed left to
    right; replaces the preset on every channel when present).
    """
    if not isinstance(spec, dict):
        raise CampaignError(
            f"comm spec must be a JSON object, got {type(spec).__name__}"
        )
    dt_m = float(spec.get("dt_m", 0.1))
    dt_s = float(spec.get("dt_s", dt_m))
    noise = float(spec.get("sensor_noise", 0.0))
    bounds = (
        NoiseBounds.uniform_all(noise) if noise > 0.0 else NoiseBounds.noiseless()
    )
    disturbance_spec = spec.get("disturbance")
    if disturbance_spec is None:
        disturbance = no_disturbance()
    else:
        try:
            disturbance = DisturbanceModel(
                delay=float(disturbance_spec.get("delay", 0.0)),
                drop_probability=float(
                    disturbance_spec.get("drop_probability", 0.0)
                ),
            )
        except ReproError as exc:
            raise CampaignError(
                f"invalid disturbance spec {disturbance_spec}: {exc}"
            ) from exc
    faults_spec = spec.get("faults")
    faults = None
    if faults_spec is not None:
        if not isinstance(faults_spec, list):
            raise CampaignError(
                "comm faults must be a list of stage specs, got "
                f"{type(faults_spec).__name__}"
            )
        faults = _build_fault_model(faults_spec)
    try:
        return CommSetup(
            dt_m=dt_m,
            dt_s=dt_s,
            disturbance=disturbance,
            sensor_bounds=bounds,
            faults=faults,
        )
    except ReproError as exc:
        raise CampaignError(f"invalid comm spec {spec}: {exc}") from exc


def _build_step_window(raw, what: str) -> StepWindow:
    if (
        not isinstance(raw, (list, tuple))
        or len(raw) != 2
        or not all(isinstance(v, int) for v in raw)
    ):
        raise CampaignError(
            f"{what} window must be a [start, stop] integer pair, got {raw!r}"
        )
    return StepWindow(raw[0], raw[1])


def _build_fault_plan(spec: dict) -> FaultPlan:
    sensor = []
    for fault in spec.get("sensor_faults", []):
        try:
            kind = SensorFaultKind(fault.get("kind", ""))
        except ValueError as exc:
            raise CampaignError(
                f"unknown sensor fault kind {fault.get('kind')!r}"
            ) from exc
        sensor.append(
            SensorFault(
                window=_build_step_window(fault.get("window"), "sensor fault"),
                kind=kind,
                target=fault.get("target"),
                probability=float(fault.get("probability", 1.0)),
                stuck_position=float(fault.get("stuck_position", 0.0)),
                stuck_velocity=float(fault.get("stuck_velocity", 0.0)),
                stuck_acceleration=float(fault.get("stuck_acceleration", 0.0)),
            )
        )
    planner = []
    for fault in spec.get("planner_faults", []):
        try:
            kind = PlannerFaultKind(fault.get("kind", ""))
        except ValueError as exc:
            raise CampaignError(
                f"unknown planner fault kind {fault.get('kind')!r}"
            ) from exc
        planner.append(
            PlannerFault(
                window=_build_step_window(fault.get("window"), "planner fault"),
                kind=kind,
                probability=float(fault.get("probability", 1.0)),
            )
        )
    return FaultPlan(sensor_faults=tuple(sensor), planner_faults=tuple(planner))


def build_config(spec: dict) -> SimulationConfig:
    """Build a :class:`SimulationConfig` from a manifest ``config`` spec.

    Recognised fields: ``max_time`` [s] (default 30), ``strict_safety``
    (default false) and ``fault_plan`` (sensor/planner fault schedules).
    Trajectory recording is always off — campaign chunks persist result
    records, not trajectories.
    """
    if not isinstance(spec, dict):
        raise CampaignError(
            f"config spec must be a JSON object, got {type(spec).__name__}"
        )
    fault_plan = None
    if spec.get("fault_plan") is not None:
        fault_plan = _build_fault_plan(spec["fault_plan"])
    try:
        return SimulationConfig(
            max_time=float(spec.get("max_time", 30.0)),
            strict_safety=bool(spec.get("strict_safety", False)),
            record_trajectories=False,
            fault_plan=fault_plan,
        )
    except ReproError as exc:
        raise CampaignError(f"invalid config spec {spec}: {exc}") from exc


def _wrap_planner_faults(planner: Planner, spec: dict) -> Planner:
    faults_spec = spec.get("faults")
    if not faults_spec:
        return planner
    faults = []
    for fault in faults_spec:
        try:
            kind = PlannerFaultKind(fault.get("kind", ""))
        except ValueError as exc:
            raise CampaignError(
                f"unknown planner fault kind {fault.get('kind')!r}"
            ) from exc
        faults.append(
            PlannerFault(
                window=_build_step_window(fault.get("window"), "planner fault"),
                kind=kind,
            )
        )
    return FaultyPlanner(planner, faults)


def build_planner(spec: dict, scenario: Scenario) -> Planner:
    """Build a planner from a manifest ``planner`` spec.

    Kinds: ``constant`` (``acceleration`` [m/s^2]), ``full_brake``,
    ``full_throttle``, and ``compound`` — the paper's shielded planner
    wrapping an ``embedded`` spec with the scenario's emergency planner
    and runtime monitor.  Any spec may carry ``faults``: a list of
    ``{"window": [a, b], "kind": "exception" | "nan" | "latency"}``
    windows wrapped via :class:`~repro.faults.planner_wrapper.FaultyPlanner`
    (deterministic, so parallel chunks stay bit-identical).
    """
    registry = {
        "constant": None,
        "full_brake": None,
        "full_throttle": None,
        "compound": None,
    }
    kind = _kind_of(spec, "planner", registry)
    ego_limits = scenario.vehicle_limits(0)
    if kind == "constant":
        if "acceleration" not in spec:
            raise CampaignError(
                "constant planner spec requires an 'acceleration' field"
            )
        planner: Planner = ConstantPlanner(float(spec["acceleration"]))
    elif kind == "full_brake":
        planner = FullBrakePlanner(ego_limits)
    elif kind == "full_throttle":
        planner = FullThrottlePlanner(ego_limits)
    else:  # compound
        embedded_spec = spec.get("embedded")
        if embedded_spec is None:
            raise CampaignError(
                "compound planner spec requires an 'embedded' planner spec"
            )
        if embedded_spec.get("kind") == "compound":
            raise CampaignError("compound planners cannot nest")
        embedded = build_planner(embedded_spec, scenario)
        try:
            planner = CompoundPlanner(
                nn_planner=embedded,
                emergency_planner=scenario.emergency_planner(),
                monitor=RuntimeMonitor(scenario.safety_model()),
                limits=ego_limits,
            )
        except ReproError as exc:
            raise CampaignError(f"invalid compound spec {spec}: {exc}") from exc
        return _wrap_planner_faults(planner, spec)
    return _wrap_planner_faults(planner, spec)


def build_workload(
    manifest,
) -> Tuple[Scenario, CommSetup, SimulationConfig, Planner, EstimatorKind]:
    """Instantiate everything a manifest's chunks execute against."""
    scenario = build_scenario(manifest.scenario)
    comm = build_comm(manifest.comm)
    config = build_config(manifest.config)
    planner = build_planner(manifest.planner, scenario)
    kind = (
        EstimatorKind.FILTERED
        if manifest.estimator == "filtered"
        else EstimatorKind.RAW
    )
    return scenario, comm, config, planner, kind
