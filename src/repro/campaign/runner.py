"""The durable campaign runner: journaled chunks over the batch layer.

Execution model
---------------

A campaign partitions its ``n_sims`` batch into fixed chunks (the
manifest defines the partition, so it is part of the fingerprint).  For
each chunk the runner

1. executes the chunk's indices through
   :meth:`~repro.sim.parallel.ParallelBatchRunner.run_indices_detailed`
   (retrying transiently failed chunks with deterministic seeded
   backoff),
2. persists the chunk snapshot atomically (tmp + fsync + rename), then
3. appends a ``chunk_completed`` record to the write-ahead journal.

Because the snapshot is durable *before* the journal record exists, a
crash between the two steps merely re-runs one chunk on resume — and
re-running is harmless, since simulation ``k`` is seeded from child
``k`` of the batch seed regardless of when or where it runs.  The final
aggregate is always computed from the on-disk snapshots, never from
in-memory state, so an interrupted-and-resumed campaign produces
**bit-identical** aggregate bytes to an uninterrupted one.

Shutdown: SIGINT/SIGTERM set a flag; the in-flight chunk drains, an
``interrupted`` record is journaled, and the report says so (the CLI
exits nonzero).  ``kill -9`` skips all of that — which is exactly what
the journal recovery path is for.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.campaign.backoff import BackoffPolicy
from repro.campaign.builders import build_workload
from repro.campaign.journal import JournalWriter, read_journal, recover_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.store import atomic_write_json, load_json
from repro.errors import (
    CampaignError,
    FingerprintMismatchError,
    JournalCorruptionError,
    SerializationError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import resolve_observer
from repro.obs.recorder import TELEMETRY_FILE, FlightRecorder
from repro.obs.trace import perf_now
from repro.sim.parallel import ParallelBatchRunner
from repro.sim.results import AggregateStats, ChunkResult
from repro.sim.serialization import (
    SCHEMA_VERSION,
    content_digest,
    failure_from_dict,
    failure_to_dict,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "CampaignProgress",
    "CampaignReport",
    "CampaignRunner",
    "campaign_status",
    "chunk_path",
    "finalise_campaign",
    "load_chunk_snapshot",
    "persist_chunk_snapshot",
    "replay_progress",
    "verify_campaign",
    "MANIFEST_FILE",
    "JOURNAL_FILE",
    "AGGREGATE_FILE",
    "METRICS_FILE",
]

MANIFEST_FILE = "manifest.json"
JOURNAL_FILE = "journal.jsonl"
AGGREGATE_FILE = "aggregate.json"
#: Operational metrics (chunk wall times, retries) derived from the
#: journal at finalisation.  Deliberately a *separate* file: the
#: aggregate must stay byte-identical across interrupt/resume sequences,
#: and wall-clock numbers never are.
METRICS_FILE = "metrics.json"
_CHUNK_DIR = "chunks"

#: Signature of an injectable chunk executor (tests substitute a flaky
#: or instrumented one): ``(indices, n_sims, seed) -> ChunkResult``.
ChunkExecutor = Callable[[List[int], int, int], ChunkResult]


def chunk_path(directory: Path, chunk: int) -> Path:
    """The atomic snapshot file of chunk ``chunk`` under ``directory``."""
    return directory / _CHUNK_DIR / f"chunk-{chunk:05d}.json"


# Backwards-compatible private alias (older call sites / tests).
_chunk_path = chunk_path


def persist_chunk_snapshot(
    directory: Path, fingerprint: str, chunk: int, result: ChunkResult
) -> str:
    """Atomically persist one chunk's results; returns the content digest.

    The snapshot layout is canonical (sorted keys, fixed float encoding),
    so any process that runs chunk ``chunk`` of the same manifest —
    sequential runner, shard worker, speculative duplicate — writes
    byte-identical files and computes the same digest.  That idempotency
    is what makes duplicate completions harmless.
    """
    snapshot = {
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "chunk": chunk,
        "indices": result.indices,
        "results": {
            str(index): result_to_dict(result.results[index])
            for index in result.indices
            if index in result.results
        },
        "failures": [failure_to_dict(f) for f in result.failures],
    }
    atomic_write_json(snapshot, chunk_path(directory, chunk))
    return content_digest(snapshot)


def load_chunk_snapshot(
    directory: Path, chunk: int, expected_digest: str
) -> dict:
    """Load a chunk snapshot, refusing one whose digest drifted."""
    path = chunk_path(directory, chunk)
    snapshot = load_json(path)
    if not isinstance(snapshot, dict):
        raise SerializationError(f"chunk snapshot {path} is not an object")
    if content_digest(snapshot) != expected_digest:
        raise CampaignError(
            f"chunk snapshot {path} does not match its journaled "
            "digest; the file was modified after it was journaled"
        )
    return snapshot


@dataclass(frozen=True)
class CampaignReport:
    """What a campaign run/resume call accomplished.

    Attributes
    ----------
    status:
        ``"completed"`` — every chunk journaled and the aggregate
        written; ``"interrupted"`` — a drain signal stopped the loop
        early (resume later).
    fingerprint:
        The campaign fingerprint all artifacts carry.
    n_chunks, completed_chunks:
        Partition size and how many chunks are durably journaled.
    chunks_run:
        Chunks this call executed (0 when resuming an already-finished
        campaign).
    n_failed:
        Simulations that irrecoverably failed (final aggregate only;
        0 while interrupted).
    aggregate:
        The :class:`~repro.sim.results.AggregateStats` fields as a dict,
        or ``None`` when interrupted or when every simulation failed.
    results_digest:
        SHA-256 over the canonical per-index result records — the value
        the bit-identity guarantee is stated about (``None`` while
        interrupted).
    """

    status: str
    fingerprint: str
    n_chunks: int
    completed_chunks: int
    chunks_run: int
    n_failed: int = 0
    aggregate: Optional[dict] = None
    results_digest: Optional[str] = None


@dataclass
class CampaignProgress:
    """Journal-derived progress: which chunks are durably done."""

    fingerprint: str
    completed: Dict[int, str] = field(default_factory=dict)  # chunk -> digest
    finished: bool = False
    next_seq: int = 0


def replay_progress(records: List[dict], fingerprint: str) -> CampaignProgress:
    """Rebuild campaign progress from journal records.

    Shared by the single-process runner and the shard coordinator.
    Checks every record's fingerprint against ``fingerprint`` and is
    **idempotent over duplicate** ``chunk_completed`` records: the shard
    layer's speculative re-dispatch may journal the same chunk twice
    (two workers raced it to completion), and because chunk ``k`` is
    content-deterministic both records must carry the same digest.  A
    duplicate with a *different* digest means the workload is not
    deterministic (or a snapshot was forged) and raises
    :class:`~repro.errors.JournalCorruptionError` rather than letting
    either record silently win.
    """
    progress = CampaignProgress(fingerprint=fingerprint, next_seq=len(records))
    for record in records:
        recorded = record.get("fingerprint")
        if recorded is not None and recorded != fingerprint:
            raise FingerprintMismatchError(
                f"journal record {record.get('seq')} carries "
                f"fingerprint {str(recorded)[:12]}... but the manifest "
                f"fingerprints to {fingerprint[:12]}...; this "
                "journal belongs to a different workload"
            )
        record_type = record.get("type")
        if record_type == "chunk_completed":
            chunk = int(record["chunk"])
            digest = str(record["digest"])
            previous = progress.completed.get(chunk)
            if previous is not None and previous != digest:
                raise JournalCorruptionError(
                    f"journal record {record.get('seq')} completes chunk "
                    f"{chunk} with digest {digest[:12]}... but an earlier "
                    f"record journaled {previous[:12]}...; duplicate "
                    "completions must be byte-identical"
                )
            progress.completed[chunk] = digest
        elif record_type == "campaign_finished":
            progress.finished = True
    return progress


class CampaignRunner:
    """Runs a :class:`CampaignManifest` durably inside a directory.

    Parameters
    ----------
    manifest:
        The workload.  Its fingerprint stamps every artifact.
    directory:
        Campaign home: ``manifest.json``, ``journal.jsonl``, ``chunks/``
        and ``aggregate.json`` live here.  One directory, one campaign.
    n_workers:
        Worker processes per chunk (operational — not fingerprinted).
    max_retries:
        Per-index retry budget inside the batch layer.
    timeout_per_sim:
        Optional per-simulation time budget [s] forwarded to
        :class:`~repro.sim.parallel.ParallelBatchRunner`; a chunk of
        ``m`` indices is given ``m * timeout_per_sim`` seconds before
        its workers are terminated and the indices retried.
    backoff:
        Chunk-level retry policy for transient (worker/timeout)
        failures.
    sleep:
        Injectable wait primitive; tests pass a recorder so the backoff
        schedule is asserted without actually sleeping.
    chunk_executor:
        Test hook replacing the batch layer entirely.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; records chunk
        spans, retry counters and journal fsync latency.  Write-only —
        every campaign artifact except ``metrics.json`` is byte-identical
        with or without it (and ``metrics.json`` is derived from the
        journal, which always carries chunk wall times).
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        directory: Union[str, Path],
        n_workers: int = 1,
        max_retries: int = 2,
        timeout_per_sim: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        chunk_executor: Optional[ChunkExecutor] = None,
        observer=None,
    ) -> None:
        self._manifest = manifest
        self._directory = Path(directory)
        self._fingerprint = manifest.fingerprint
        self._n_workers = n_workers
        self._max_retries = max_retries
        self._timeout_per_sim = timeout_per_sim
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._sleep = sleep
        self._executor = chunk_executor
        self._obs = resolve_observer(observer)
        self._stop_requested = False
        self._recorder: Optional[FlightRecorder] = None

    @property
    def telemetry_recorder(self) -> Optional[FlightRecorder]:
        """The run's flight recorder (``None`` before :meth:`run`)."""
        return self._recorder

    @property
    def manifest(self) -> CampaignManifest:
        """The workload definition."""
        return self._manifest

    @property
    def directory(self) -> Path:
        """The campaign home directory."""
        return self._directory

    @property
    def fingerprint(self) -> str:
        """The manifest's canonical content hash."""
        return self._fingerprint

    def request_stop(self) -> None:
        """Ask the run loop to drain: finish the in-flight chunk, journal
        an ``interrupted`` marker, and return an interrupted report."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Start the campaign from scratch.

        Refuses a directory that already holds journal records (use
        :meth:`resume`) or a ``manifest.json`` with a different
        fingerprint (that directory belongs to another campaign).
        """
        journal_path = self._directory / JOURNAL_FILE
        if journal_path.exists():
            records, _ = read_journal(journal_path)
            if records:
                raise CampaignError(
                    f"campaign at {self._directory} was already started "
                    f"({len(records)} journal records); use resume"
                )
        manifest_path = self._directory / MANIFEST_FILE
        if manifest_path.exists():
            existing = CampaignManifest.load(manifest_path)
            if existing.fingerprint != self._fingerprint:
                raise FingerprintMismatchError(
                    f"directory {self._directory} holds manifest "
                    f"{existing.fingerprint[:12]}..., refusing to start "
                    f"{self._fingerprint[:12]}... over it"
                )
        self._directory.mkdir(parents=True, exist_ok=True)
        self._manifest.save(manifest_path)
        state = CampaignProgress(fingerprint=self._fingerprint)
        with JournalWriter(
            journal_path, next_seq=0, observer=self._obs
        ) as journal:
            journal.append(
                "campaign_started",
                fingerprint=self._fingerprint,
                name=self._manifest.name,
                n_sims=self._manifest.n_sims,
                n_chunks=self._manifest.n_chunks,
            )
            state.next_seq = journal.next_seq
            return self._execute(state, journal)

    def resume(self) -> CampaignReport:
        """Continue a campaign after a crash, kill, or drain.

        Recovers the journal (truncating a torn final record), refuses a
        manifest whose fingerprint differs from the journaled one, skips
        chunks whose ``chunk_completed`` record survived, and re-runs
        everything else.  Already-finished campaigns return the existing
        aggregate without running anything.
        """
        manifest_path = self._directory / MANIFEST_FILE
        if manifest_path.exists():
            on_disk = CampaignManifest.load(manifest_path)
            if on_disk.fingerprint != self._fingerprint:
                raise FingerprintMismatchError(
                    f"manifest at {manifest_path} has fingerprint "
                    f"{on_disk.fingerprint[:12]}... but this runner was "
                    f"built for {self._fingerprint[:12]}...; results from "
                    "different workloads must not be mixed — start a new "
                    "campaign directory instead"
                )
        journal_path = self._directory / JOURNAL_FILE
        if not journal_path.exists():
            raise CampaignError(
                f"no journal at {journal_path}; use run to start a "
                "campaign"
            )
        records = recover_journal(journal_path)
        state = replay_progress(records, self._fingerprint)
        if not manifest_path.exists():
            # The crash hit between mkdir and manifest.save; re-write it.
            self._directory.mkdir(parents=True, exist_ok=True)
            self._manifest.save(manifest_path)
        with JournalWriter(
            journal_path, next_seq=state.next_seq, observer=self._obs
        ) as journal:
            if not records:
                journal.append(
                    "campaign_started",
                    fingerprint=self._fingerprint,
                    name=self._manifest.name,
                    n_sims=self._manifest.n_sims,
                    n_chunks=self._manifest.n_chunks,
                )
                state.next_seq = journal.next_seq
            return self._execute(state, journal)

    # ------------------------------------------------------------------
    # The chunk loop
    # ------------------------------------------------------------------
    def _execute(
        self, state: CampaignProgress, journal: JournalWriter
    ) -> CampaignReport:
        manifest = self._manifest
        if state.finished:
            return self._report_from_aggregate(state, chunks_run=0)
        previous_handlers = self._install_signal_handlers()
        chunks_run = 0
        # Telemetry sidecar: per-run operational frames (see
        # repro.obs.recorder).  Shares the observer's registry when one
        # is attached, so frames carry engine/channel/shield series
        # too; the campaign.* progress counters below are written
        # unconditionally either way.  Sidecar bytes are never part of
        # the aggregate's bit-identity contract.
        telemetry = (
            self._obs.metrics if self._obs.enabled else MetricsRegistry()
        )
        self._recorder = FlightRecorder(
            telemetry,
            sidecar=self._directory / TELEMETRY_FILE,
            min_interval=1.0,
        )
        try:
            for chunk in range(manifest.n_chunks):
                if chunk in state.completed:
                    continue
                if self._stop_requested:
                    journal.append(
                        "interrupted",
                        fingerprint=self._fingerprint,
                        completed_chunks=len(state.completed),
                    )
                    return CampaignReport(
                        status="interrupted",
                        fingerprint=self._fingerprint,
                        n_chunks=manifest.n_chunks,
                        completed_chunks=len(state.completed),
                        chunks_run=chunks_run,
                    )
                # Chunk wall time is journaled unconditionally (readers
                # ignore unknown fields; journal bytes are never part of
                # the bit-identity contract) so `repro-campaign status`
                # can summarise elapsed time on plain, untraced runs too.
                handle = (
                    self._obs.begin("campaign.chunk", chunk=chunk)
                    if self._obs.enabled
                    else -1
                )
                started = perf_now()
                chunk_result = self._run_chunk_with_retries(chunk, journal)
                elapsed = max(perf_now() - started, 0.0)
                if self._obs.enabled:
                    self._obs.end(handle, n_results=len(chunk_result.results))
                    self._obs.observe("campaign.chunk_seconds", elapsed)
                digest = self._persist_chunk(chunk, chunk_result)
                journal.append(
                    "chunk_completed",
                    fingerprint=self._fingerprint,
                    chunk=chunk,
                    n_results=len(chunk_result.results),
                    n_failures=chunk_result.n_failed,
                    digest=digest,
                    elapsed=round(elapsed, 6),
                )
                state.completed[chunk] = digest
                chunks_run += 1
                telemetry.count("campaign.chunks_completed")
                telemetry.count(
                    "campaign.sims_completed", len(chunk_result.results)
                )
                telemetry.count(
                    "campaign.sim_failures", chunk_result.n_failed
                )
                self._recorder.tick()
        finally:
            self._restore_signal_handlers(previous_handlers)
            # Final frame regardless of how the loop ended.
            self._recorder.tick(force=True)
        report = self._finalise(state, chunks_run, journal)
        return report

    def _run_chunk_with_retries(
        self, chunk: int, journal: JournalWriter
    ) -> ChunkResult:
        """Execute one chunk, retrying transient failures with backoff.

        ``stage == "simulation"`` failures are deterministic (same seed,
        same exception) and accepted; worker deaths and timeouts get up
        to ``backoff.max_attempts`` full-chunk attempts — harmless to
        repeat, since re-running completed indices reproduces their
        results bit-identically.
        """
        indices = self._manifest.chunk_indices(chunk)
        executor = self._chunk_executor()
        last: Optional[ChunkResult] = None
        for attempt in range(1, self._backoff.max_attempts + 1):
            if attempt > 1:
                delay = self._backoff.delay(
                    self._fingerprint, chunk, attempt - 1
                )
                journal.append(
                    "chunk_retry",
                    fingerprint=self._fingerprint,
                    chunk=chunk,
                    attempt=attempt,
                    delay=delay,
                )
                if self._obs.enabled:
                    self._obs.count("campaign.chunk_retries")
                    self._obs.instant(
                        "campaign.chunk_retry", chunk=chunk, attempt=attempt
                    )
                self._sleep(delay)
            last = executor(indices, self._manifest.n_sims, self._manifest.seed)
            if not last.transient_failures:
                return last
        assert last is not None
        return last

    def _chunk_executor(self) -> ChunkExecutor:
        if self._executor is not None:
            return self._executor
        scenario, comm, config, planner, kind = build_workload(self._manifest)
        runner = ParallelBatchRunner(
            scenario,
            comm,
            config,
            estimator_kind=kind,
            n_workers=self._n_workers,
            max_retries=self._max_retries,
            timeout_per_sim=self._timeout_per_sim,
            observer=(self._obs if self._obs.enabled else None),
        )

        def execute(indices: List[int], n_sims: int, seed: int) -> ChunkResult:
            return runner.run_indices_detailed(planner, indices, n_sims, seed)

        self._executor = execute
        return execute

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _persist_chunk(self, chunk: int, result: ChunkResult) -> str:
        return persist_chunk_snapshot(
            self._directory, self._fingerprint, chunk, result
        )

    def _load_chunk(self, chunk: int, expected_digest: str) -> dict:
        return load_chunk_snapshot(self._directory, chunk, expected_digest)

    def _finalise(
        self, state: CampaignProgress, chunks_run: int, journal: JournalWriter
    ) -> CampaignReport:
        return finalise_campaign(
            self._manifest, self._directory, state, chunks_run, journal
        )

    def _report_from_aggregate(
        self, state: CampaignProgress, chunks_run: int
    ) -> CampaignReport:
        document = load_json(self._directory / AGGREGATE_FILE)
        if not isinstance(document, dict):
            raise SerializationError("aggregate document is not an object")
        return CampaignReport(
            status="completed",
            fingerprint=self._fingerprint,
            n_chunks=self._manifest.n_chunks,
            completed_chunks=len(state.completed),
            chunks_run=chunks_run,
            n_failed=int(document.get("n_failed", 0)),
            aggregate=document.get("aggregate"),
            results_digest=document.get("results_digest"),
        )

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _install_signal_handlers(self) -> Optional[dict]:
        return install_drain_handlers(self.request_stop)

    @staticmethod
    def _restore_signal_handlers(previous: Optional[dict]) -> None:
        restore_drain_handlers(previous)


# ----------------------------------------------------------------------
# Shared drain-on-signal plumbing (runner and shard coordinator)
# ----------------------------------------------------------------------
def install_drain_handlers(request_stop: Callable[[], None]) -> Optional[dict]:
    """Route SIGINT/SIGTERM to ``request_stop``; ``None`` off the main thread."""

    def handler(signum, frame):  # pragma: no cover - exercised via CLI
        request_stop()

    previous = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, handler)
    except ValueError:
        # Not the main thread (e.g. pytest-xdist worker): graceful
        # drain is only reachable via request_stop() there.
        for signum, old in previous.items():
            signal.signal(signum, old)
        return None
    return previous


def restore_drain_handlers(previous: Optional[dict]) -> None:
    """Undo :func:`install_drain_handlers`."""
    if previous is None:
        return
    for signum, old in previous.items():
        signal.signal(signum, old)


# ----------------------------------------------------------------------
# Finalisation (shared by CampaignRunner and the shard coordinator)
# ----------------------------------------------------------------------
def finalise_campaign(
    manifest: CampaignManifest,
    directory: Union[str, Path],
    state: CampaignProgress,
    chunks_run: int,
    journal: JournalWriter,
) -> CampaignReport:
    """Aggregate from the on-disk snapshots and journal completion.

    Reading the snapshots back (instead of using in-memory results)
    means an uninterrupted run, any interrupt/resume sequence, and any
    worker-count/sharding configuration aggregate from byte-identical
    inputs — the aggregate document depends only on the manifest.
    """
    directory = Path(directory)
    fingerprint = manifest.fingerprint
    per_index: List[Optional[dict]] = [None] * manifest.n_sims
    failures: List[dict] = []
    for chunk in range(manifest.n_chunks):
        snapshot = load_chunk_snapshot(directory, chunk, state.completed[chunk])
        for key, record in snapshot.get("results", {}).items():
            per_index[int(key)] = record
        failures.extend(snapshot.get("failures", []))
    failures.sort(key=lambda f: int(f.get("index", -1)))
    results_digest = content_digest(per_index)
    completed = [
        result_from_dict(record)
        for record in per_index
        if record is not None
    ]
    aggregate: Optional[dict] = None
    if completed:
        stats = AggregateStats.from_results(completed)
        aggregate = {
            "n_runs": stats.n_runs,
            "n_safe": stats.n_safe,
            "n_reached": stats.n_reached,
            "mean_reaching_time": stats.mean_reaching_time,
            "mean_eta": stats.mean_eta,
            "mean_emergency_frequency": stats.mean_emergency_frequency,
            "safe_rate": stats.safe_rate,
        }
    document = {
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "name": manifest.name,
        "n_sims": manifest.n_sims,
        "n_failed": len(failures),
        "results_digest": results_digest,
        "aggregate": aggregate,
        "failures": failures,
    }
    atomic_write_json(document, directory / AGGREGATE_FILE)
    journal.append(
        "campaign_finished",
        fingerprint=fingerprint,
        results_digest=results_digest,
        n_failed=len(failures),
    )
    write_campaign_metrics(manifest, directory)
    return CampaignReport(
        status="completed",
        fingerprint=fingerprint,
        n_chunks=manifest.n_chunks,
        completed_chunks=len(state.completed),
        chunks_run=chunks_run,
        n_failed=len(failures),
        aggregate=aggregate,
        results_digest=results_digest,
    )


def write_campaign_metrics(
    manifest: CampaignManifest, directory: Union[str, Path]
) -> None:
    """Derive ``metrics.json`` from the journal's operational fields.

    Kept out of ``aggregate.json`` on purpose: wall-clock numbers
    differ between an uninterrupted run and an interrupt/resume
    sequence, and the aggregate's byte-identity guarantee must not.
    """
    directory = Path(directory)
    records, _ = read_journal(directory / JOURNAL_FILE)
    summary = _operational_summary(records)
    document = {
        "schema_version": SCHEMA_VERSION,
        "fingerprint": manifest.fingerprint,
        "name": manifest.name,
        **summary,
    }
    atomic_write_json(document, directory / METRICS_FILE)


# ----------------------------------------------------------------------
# Inspection helpers (read-only; safe on live or damaged campaigns)
# ----------------------------------------------------------------------
def _operational_summary(records: List[dict]) -> dict:
    """Retry counts and chunk wall-time summary from journal records.

    ``chunk_retries`` maps chunk index to its ``chunk_retry`` record
    count; ``elapsed`` summarises the ``elapsed`` field of
    ``chunk_completed`` records (``None`` when no chunk carried one —
    journals written before the field existed still parse).
    """
    retries: Dict[int, int] = {}
    durations: List[float] = []
    for record in records:
        record_type = record.get("type")
        if record_type == "chunk_retry":
            chunk = int(record.get("chunk", -1))
            retries[chunk] = retries.get(chunk, 0) + 1
        elif record_type == "chunk_completed":
            elapsed = record.get("elapsed")
            if isinstance(elapsed, (int, float)):
                durations.append(float(elapsed))
    elapsed_summary: Optional[dict] = None
    if durations:
        elapsed_summary = {
            "chunks_timed": len(durations),
            "total_seconds": round(sum(durations), 6),
            "mean_seconds": round(sum(durations) / len(durations), 6),
            "max_seconds": round(max(durations), 6),
        }
    return {
        "chunk_retries": {str(k): v for k, v in sorted(retries.items())},
        "total_retries": sum(retries.values()),
        "elapsed": elapsed_summary,
    }


def campaign_status(directory: Union[str, Path]) -> dict:
    """Progress summary of a campaign directory (read-only).

    Works on a live, killed, or damaged campaign: a torn journal tail is
    reported, not repaired.  Besides progress, the summary carries the
    journal's operational fields: per-chunk retry counts and an elapsed
    wall-time summary over completed chunks.
    """
    directory = Path(directory)
    manifest = CampaignManifest.load(directory / MANIFEST_FILE)
    journal_path = directory / JOURNAL_FILE
    records: List[dict] = []
    torn = False
    if journal_path.exists():
        records, torn = read_journal(journal_path)
    completed = {
        int(r["chunk"]) for r in records if r.get("type") == "chunk_completed"
    }
    finished = any(r.get("type") == "campaign_finished" for r in records)
    interrupted = (
        len(records) > 0 and records[-1].get("type") == "interrupted"
    )
    status = {
        "name": manifest.name,
        "fingerprint": manifest.fingerprint,
        "n_sims": manifest.n_sims,
        "n_chunks": manifest.n_chunks,
        "completed_chunks": len(completed),
        "journal_records": len(records),
        "torn_tail": torn,
        "finished": finished,
        "interrupted": interrupted,
    }
    status.update(_operational_summary(records))
    return status


def verify_campaign(directory: Union[str, Path]) -> dict:
    """Cross-check every artifact of a campaign directory.

    Verifies that the journal parses, every record carries the
    manifest's fingerprint, every journaled chunk snapshot exists with a
    matching content digest and the exact index set the manifest assigns
    to that chunk, and — when the campaign finished — that the aggregate
    document's digest matches a recomputation from the snapshots.

    Returns ``{"ok": bool, "problems": [str, ...], ...}`` rather than
    raising, so the CLI can print every problem at once.
    """
    directory = Path(directory)
    problems: List[str] = []
    manifest = CampaignManifest.load(directory / MANIFEST_FILE)
    fingerprint = manifest.fingerprint
    journal_path = directory / JOURNAL_FILE
    records: List[dict] = []
    torn = False
    if not journal_path.exists():
        problems.append(f"missing journal {journal_path}")
    else:
        try:
            records, torn = read_journal(journal_path)
        except CampaignError as exc:
            problems.append(str(exc))
    if torn:
        problems.append(
            "journal has a torn final record (resume will truncate it)"
        )
    completed: Dict[int, str] = {}
    finished_digest: Optional[str] = None
    for record in records:
        recorded = record.get("fingerprint")
        if recorded is not None and recorded != fingerprint:
            problems.append(
                f"journal record {record.get('seq')} fingerprint "
                f"{str(recorded)[:12]}... != manifest {fingerprint[:12]}..."
            )
        if record.get("type") == "chunk_completed":
            chunk = int(record["chunk"])
            digest = str(record["digest"])
            previous = completed.get(chunk)
            if previous is not None and previous != digest:
                problems.append(
                    f"journal record {record.get('seq')} completes chunk "
                    f"{chunk} with a digest conflicting with an earlier "
                    "completion (duplicates must be byte-identical)"
                )
            completed[chunk] = digest
        elif record.get("type") == "campaign_finished":
            finished_digest = str(record.get("results_digest"))
    per_index: List[Optional[dict]] = [None] * manifest.n_sims
    for chunk, digest in sorted(completed.items()):
        path = _chunk_path(directory, chunk)
        try:
            snapshot = load_json(path)
        except SerializationError as exc:
            problems.append(str(exc))
            continue
        if not isinstance(snapshot, dict):
            problems.append(f"chunk snapshot {path} is not an object")
            continue
        if content_digest(snapshot) != digest:
            problems.append(
                f"chunk snapshot {path} digest mismatch vs journal"
            )
            continue
        if snapshot.get("fingerprint") != fingerprint:
            problems.append(f"chunk snapshot {path} fingerprint mismatch")
        expected_indices = manifest.chunk_indices(chunk)
        if snapshot.get("indices") != expected_indices:
            problems.append(
                f"chunk snapshot {path} covers indices "
                f"{snapshot.get('indices')} but the manifest assigns "
                f"{expected_indices}"
            )
        for key, record in snapshot.get("results", {}).items():
            per_index[int(key)] = record
        for failure in snapshot.get("failures", []):
            try:
                failure_from_dict(failure)
            except SerializationError as exc:
                problems.append(f"chunk snapshot {path}: {exc}")
    if finished_digest is not None:
        if len(completed) != manifest.n_chunks:
            problems.append(
                f"campaign_finished journaled with only {len(completed)}/"
                f"{manifest.n_chunks} chunk_completed records"
            )
        else:
            recomputed = content_digest(per_index)
            if recomputed != finished_digest:
                problems.append(
                    "journaled results digest does not match a "
                    "recomputation from the chunk snapshots"
                )
            aggregate_path = directory / AGGREGATE_FILE
            try:
                document = load_json(aggregate_path)
            except SerializationError as exc:
                problems.append(str(exc))
            else:
                if (
                    not isinstance(document, dict)
                    or document.get("results_digest") != finished_digest
                    or document.get("fingerprint") != fingerprint
                ):
                    problems.append(
                        f"aggregate document {aggregate_path} does not "
                        "match the journaled digest/fingerprint"
                    )
    return {
        "ok": not problems,
        "problems": problems,
        "fingerprint": fingerprint,
        "n_chunks": manifest.n_chunks,
        "completed_chunks": len(completed),
        "finished": finished_digest is not None,
    }
