"""The campaign manifest: a fingerprinted, declarative workload.

A manifest says *what* to simulate — scenario, communication setup,
planner, fault schedule, estimator, batch seed and size — as plain JSON
data.  Its canonical content hash (:attr:`CampaignManifest.fingerprint`)
identifies the workload: every journal and chunk snapshot of a campaign
carries it, and resume refuses to continue under a manifest whose
fingerprint changed, because mixing chunks from two different workloads
would silently corrupt the aggregate statistics.

The manifest deliberately contains **no operational knobs** (worker
count, retry budget, backoff timing): those affect how fast a campaign
finishes, never what its results are, so two runs of the same manifest
are bit-identical regardless of them.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

from repro.errors import CampaignError, SerializationError
from repro.sim.serialization import (
    SCHEMA_VERSION,
    canonical_dumps,
    check_schema_version,
    content_digest,
)

__all__ = ["CampaignManifest"]

_ESTIMATORS = ("raw", "filtered")


@dataclass(frozen=True)
class CampaignManifest:
    """Everything that defines a campaign's results.

    Attributes
    ----------
    name:
        Human-readable campaign label (reports and ``status`` output).
    scenario:
        Scenario spec, e.g. ``{"kind": "left_turn"}`` (see
        :mod:`repro.campaign.builders` for the registry).
    comm:
        Communication spec: ``dt_m``/``dt_s`` [s], ``sensor_noise``
        (uniform half-width [m]/[m/s]/[m/s^2] applied to all three
        channels), optional ``disturbance`` preset and composable
        ``faults`` stage list.
    planner:
        Planner spec, e.g. ``{"kind": "constant", "acceleration": 2.0}``
        or a ``compound`` wrapper with embedded fault windows.
    n_sims:
        Batch size; simulation ``k`` is seeded from child ``k`` of
        ``seed``.
    seed:
        The batch seed.
    chunk_size:
        Simulations per durable chunk — the unit of checkpointing.
    estimator:
        ``"filtered"`` (information filter) or ``"raw"``.
    config:
        Engine config spec: ``max_time`` [s], optional ``fault_plan``.
    """

    name: str
    scenario: dict
    comm: dict
    planner: dict
    n_sims: int
    seed: int
    chunk_size: int
    estimator: str = "filtered"
    config: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError("manifest name must be a non-empty string")
        if not isinstance(self.n_sims, int) or self.n_sims <= 0:
            raise CampaignError(
                f"n_sims must be a positive integer, got {self.n_sims!r}"
            )
        if not isinstance(self.seed, int):
            raise CampaignError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.chunk_size, int) or self.chunk_size <= 0:
            raise CampaignError(
                f"chunk_size must be a positive integer, got "
                f"{self.chunk_size!r}"
            )
        if self.estimator not in _ESTIMATORS:
            raise CampaignError(
                f"estimator must be one of {_ESTIMATORS}, got "
                f"{self.estimator!r}"
            )
        for attribute in ("scenario", "comm", "planner", "config"):
            if not isinstance(getattr(self, attribute), dict):
                raise CampaignError(
                    f"manifest {attribute} must be a JSON object, got "
                    f"{type(getattr(self, attribute)).__name__}"
                )

    # ------------------------------------------------------------------
    # Chunking
    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        """Number of durable chunks the batch is partitioned into."""
        return -(-self.n_sims // self.chunk_size)

    def chunk_indices(self, chunk: int) -> List[int]:
        """The global simulation indices chunk ``chunk`` covers."""
        if not 0 <= chunk < self.n_chunks:
            raise CampaignError(
                f"chunk {chunk} outside campaign of {self.n_chunks} chunks"
            )
        start = chunk * self.chunk_size
        stop = min(self.n_sims, start + self.chunk_size)
        return list(range(start, stop))

    # ------------------------------------------------------------------
    # Canonical form and fingerprint
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The manifest as a JSON-serialisable dict (deep copy)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "scenario": copy.deepcopy(self.scenario),
            "comm": copy.deepcopy(self.comm),
            "planner": copy.deepcopy(self.planner),
            "config": copy.deepcopy(self.config),
            "estimator": self.estimator,
            "n_sims": self.n_sims,
            "seed": self.seed,
            "chunk_size": self.chunk_size,
        }

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical manifest encoding.

        Any change to any result-defining field — a different seed, one
        more fault stage, a wider noise bound — produces a different
        fingerprint; whitespace and key order do not.
        """
        return content_digest(self.to_dict())

    @classmethod
    def from_dict(cls, record: dict) -> "CampaignManifest":
        """Build a manifest from parsed JSON.

        Unknown fields (newer minor schema versions) are ignored; a
        different schema major is rejected.
        """
        if not isinstance(record, dict):
            raise CampaignError(
                f"manifest must be a JSON object, got "
                f"{type(record).__name__}"
            )
        check_schema_version(record, "campaign manifest")
        try:
            return cls(
                name=record["name"],
                scenario=record.get("scenario", {}),
                comm=record.get("comm", {}),
                planner=record["planner"],
                config=record.get("config", {}),
                estimator=record.get("estimator", "filtered"),
                n_sims=record["n_sims"],
                seed=record.get("seed", 0),
                chunk_size=record["chunk_size"],
            )
        except KeyError as exc:
            raise CampaignError(f"manifest missing required field {exc}") from exc

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the canonical manifest encoding to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_dumps(self.to_dict()))
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignManifest":
        """Load a manifest saved by :meth:`save` (or hand-written JSON)."""
        path = Path(path)
        if not path.exists():
            raise CampaignError(f"no campaign manifest at {path}")
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"corrupt campaign manifest {path}: {exc}"
            ) from exc
        return cls.from_dict(record)
