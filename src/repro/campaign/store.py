"""Atomic JSON snapshots for campaign state.

A chunk snapshot must never exist half-written: a resume that loads a
partially flushed file would silently corrupt the aggregate.  The only
portable way to get that guarantee on POSIX filesystems is the classic
dance — write to a temporary file in the *same directory*, flush and
fsync it, then :func:`os.replace` over the final name, and fsync the
directory so the rename itself survives a power cut.  After
:func:`atomic_write_json` returns, the target path holds either the old
content or the complete new content, at every byte offset a crash can
hit.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

from repro.errors import SerializationError
from repro.sim.serialization import canonical_dumps

__all__ = ["atomic_write_json", "load_json"]


def _fsync_directory(directory: Path) -> None:
    """Persist a directory entry (the rename) to stable storage.

    Some filesystems (and all of Windows) refuse to open directories;
    the rename is still atomic there, only its durability window grows.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_json(obj: object, path: Union[str, Path]) -> Path:
    """Write ``obj`` as canonical JSON so the file is never half-written.

    The write goes to a uniquely named temporary file next to ``path``
    (same filesystem, so the final rename is atomic), is flushed and
    fsynced, and then replaces ``path`` in one step.  Readers therefore
    see the previous complete content or the new complete content,
    never a prefix.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = canonical_dumps(obj).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:  # safelint: disable=SFL003 - cleanup-and-reraise; the temp file must not leak even on KeyboardInterrupt
        tmp_path.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return path


def load_json(path: Union[str, Path]) -> object:
    """Load a JSON document written by :func:`atomic_write_json`.

    Raises :class:`~repro.errors.SerializationError` for a missing file
    or invalid JSON — atomicity means a *present* file is complete, so
    unparseable content indicates storage corruption, not a torn write.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no file at {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt JSON file {path}: {exc}") from exc
