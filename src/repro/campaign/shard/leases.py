"""Lease bookkeeping for sharded campaigns: a pure state machine.

The :class:`LeaseTable` decides *who runs which chunk next*.  It is
deliberately clock-free — every method takes ``now`` as an argument —
so tests drive arbitrary failure interleavings (expiry races, steal
storms, speculative twins) with a synthetic clock and zero sleeping.
Nothing in here touches the journal or the operating system; the
coordinator owns all I/O.

Scheduling policy, in claim order:

1. **Retry pool** — chunks released by a lease expiry, a worker death,
   or a reported error, each gated behind a deterministic seeded
   backoff delay (:class:`~repro.campaign.backoff.BackoffPolicy`, keyed
   by ``(fingerprint, chunk, attempt)`` — a resumed coordinator makes
   the same decisions the original would have).
2. **Own range** — the worker's contiguous slice of the chunk space
   (front first), so sequential-ish disk and cache behaviour survives
   sharding.
3. **Work stealing** — the tail of the *longest* remaining range, so
   fast workers drain slow workers' backlogs without ping-ponging the
   same chunks.
4. **Speculation** — a duplicate lease on the oldest straggling chunk
   (held longer than ``straggler_factor × ttl`` without completing).
   Safe because chunk ``k`` is content-deterministic: whichever copy
   finishes first wins and the loser's completion is byte-identical.

None of this affects results — scheduling decides *when and where* a
chunk runs, and the seeding scheme guarantees the *what* is invariant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.campaign.backoff import BackoffPolicy
from repro.errors import CampaignError

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One worker's claim on one chunk.

    ``attempt`` is the 1-based execution attempt this lease represents
    (across all workers); ``speculative`` marks a duplicate lease
    granted against a straggler; ``origin`` records how the claim was
    satisfied (``"range"``, ``"retry"``, ``"steal"``, or
    ``"speculation"``) for the shard-status report.
    Units: granted_at [s], last_heartbeat [s]
    """

    chunk: int
    worker: str
    granted_at: float
    last_heartbeat: float
    attempt: int
    speculative: bool = False
    origin: str = "range"

    def age(self, now: float) -> float:
        """Seconds since the lease was granted."""
        return max(now - self.granted_at, 0.0)

    def silence(self, now: float) -> float:
        """Seconds since the last heartbeat (or grant)."""
        return max(now - self.last_heartbeat, 0.0)


class LeaseTable:
    """Chunk-space scheduler for one sharded campaign.

    Parameters
    ----------
    chunks:
        The chunks still to run (completed ones never enter the table).
    workers:
        Worker ids; each gets a contiguous slice of ``chunks``.
    fingerprint:
        Campaign fingerprint — the backoff seed material.
    backoff:
        Deterministic retry-delay policy (reused from the sequential
        runner so sharded and unsharded campaigns back off identically).
    ttl:
        Lease time-to-live [s]: a lease with no heartbeat for ``ttl``
        seconds is expired and its chunk re-dispatched.
    straggler_factor:
        A lease older than ``straggler_factor * ttl`` (yet still
        heartbeating) is a straggler, eligible for speculative
        duplication.
    """

    def __init__(
        self,
        chunks: Sequence[int],
        workers: Sequence[str],
        fingerprint: str,
        backoff: Optional[BackoffPolicy] = None,
        ttl: float = 30.0,
        straggler_factor: float = 4.0,
    ) -> None:
        if not workers:
            raise CampaignError("lease table needs at least one worker")
        if len(set(workers)) != len(workers):
            raise CampaignError(f"worker ids must be unique, got {workers}")
        if ttl <= 0.0:
            raise CampaignError(f"lease ttl must be > 0, got {ttl}")
        if straggler_factor < 1.0:
            raise CampaignError(
                f"straggler_factor must be >= 1, got {straggler_factor}"
            )
        self._fingerprint = fingerprint
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._ttl = ttl
        self._straggler_factor = straggler_factor
        ordered = sorted(set(int(chunk) for chunk in chunks))
        self._ranges: Dict[str, Deque[int]] = {w: deque() for w in workers}
        for position, chunk in enumerate(ordered):
            # Contiguous slices: worker i gets chunks [i*k, (i+1)*k).
            slot = min(
                position * len(workers) // max(len(ordered), 1),
                len(workers) - 1,
            )
            self._ranges[list(workers)[slot]].append(chunk)
        #: chunk -> active leases (>1 only while a speculation is live).
        self._active: Dict[int, List[Lease]] = {}
        #: (eligible_at [s], chunk) — no active lease by construction.
        self._retry: List[Tuple[float, int]] = []
        self._attempts: Dict[int, int] = {}
        self._outstanding = set(ordered)
        # Operational counters, surfaced via shard-status and repro.obs.
        self.claims = 0
        self.steals = 0
        self.speculations = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ttl(self) -> float:
        """Lease time-to-live [s]."""
        return self._ttl

    def outstanding(self) -> int:
        """Chunks not yet completed."""
        return len(self._outstanding)

    def in_flight(self) -> int:
        """Active leases (speculative duplicates counted)."""
        return sum(len(leases) for leases in self._active.values())

    def active_leases(self) -> List[Lease]:
        """All active leases (copy; mutation-safe)."""
        return [
            lease for leases in self._active.values() for lease in leases
        ]

    def attempts(self, chunk: int) -> int:
        """Execution attempts granted to ``chunk`` so far."""
        return self._attempts.get(chunk, 0)

    # ------------------------------------------------------------------
    # Claims
    # ------------------------------------------------------------------
    def claim(self, worker: str, now: float) -> Optional[Lease]:
        """Grant ``worker`` its next chunk, or ``None`` if nothing fits.

        Units: now [s]
        """
        if worker not in self._ranges:
            raise CampaignError(f"unknown worker {worker!r}")
        origin = "retry"
        chunk = self._claim_retry(now)
        if chunk is None:
            chunk, origin = self._claim_range(worker)
        if chunk is None:
            chunk = self._claim_speculative(worker, now)
            origin = "speculation"
        if chunk is None:
            return None
        attempt = self._attempts.get(chunk, 0) + 1
        self._attempts[chunk] = attempt
        lease = Lease(
            chunk=chunk,
            worker=worker,
            granted_at=now,
            last_heartbeat=now,
            attempt=attempt,
            speculative=origin == "speculation",
            origin=origin,
        )
        self._active.setdefault(chunk, []).append(lease)
        self.claims += 1
        return lease

    def _claim_retry(self, now: float) -> Optional[int]:
        eligible = [
            entry for entry in self._retry if entry[0] <= now
        ]
        if not eligible:
            return None
        entry = min(eligible, key=lambda item: item[1])
        self._retry.remove(entry)
        return entry[1]

    def _claim_range(self, worker: str) -> Tuple[Optional[int], str]:
        own = self._ranges[worker]
        if own:
            return own.popleft(), "range"
        victim = max(
            (w for w in self._ranges if self._ranges[w]),
            key=lambda w: len(self._ranges[w]),
            default=None,
        )
        if victim is None:
            return None, "range"
        # Steal from the tail: the victim keeps draining its front, so
        # the two never contend for the same chunk.
        chunk = self._ranges[victim].pop()
        self.steals += 1
        return chunk, "steal"

    def _claim_speculative(self, worker: str, now: float) -> Optional[int]:
        threshold = self._straggler_factor * self._ttl
        candidates = [
            leases[0]
            for leases in self._active.values()
            if len(leases) == 1
            and leases[0].worker != worker
            and leases[0].age(now) > threshold
        ]
        if not candidates:
            return None
        straggler = min(candidates, key=lambda lease: lease.granted_at)
        self.speculations += 1
        return straggler.chunk

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def heartbeat(self, worker: str, chunk: int, now: float) -> bool:
        """Renew ``worker``'s lease on ``chunk``; ``False`` if none.

        A late heartbeat from an already-expired lease is harmless: the
        chunk was re-dispatched, and if the straggler still completes,
        its byte-identical duplicate completion is absorbed.

        Units: now [s]
        """
        for lease in self._active.get(chunk, []):
            if lease.worker == worker:
                lease.last_heartbeat = now
                return True
        return False

    def expire(self, now: float) -> List[Tuple[Lease, Optional[float]]]:
        """Expire silent leases; returns ``(lease, requeue_delay)`` pairs.

        ``requeue_delay`` [s] is the deterministic backoff before the
        chunk becomes claimable again, or ``None`` when another live
        lease (a speculative twin) still covers the chunk.

        Units: now [s]
        """
        expired: List[Tuple[Lease, Optional[float]]] = []
        for chunk in list(self._active):
            for lease in list(self._active[chunk]):
                if lease.silence(now) > self._ttl:
                    delay = self._release(lease, now)
                    self.expirations += 1
                    expired.append((lease, delay))
        return expired

    def fail(self, worker: str, chunk: int, now: float) -> Optional[float]:
        """Release ``worker``'s lease after a reported chunk error.

        Returns the requeue delay [s] (``None`` if a twin still runs the
        chunk).  Raises :class:`~repro.errors.CampaignError` once the
        chunk has burned the backoff policy's full attempt budget —
        worker-reported errors are infrastructure failures, and a chunk
        that kills every attempt needs a human, not another retry.
        """
        lease = self._find(worker, chunk)
        if lease is None:
            return None
        if self._attempts.get(chunk, 0) >= self._backoff.max_attempts:
            raise CampaignError(
                f"chunk {chunk} failed {self._attempts[chunk]} attempts "
                f"(budget {self._backoff.max_attempts}); giving up"
            )
        return self._release(lease, now)

    def release_worker(
        self, worker: str, now: float
    ) -> List[Tuple[Lease, Optional[float]]]:
        """Release every lease of a dead worker and requeue its range.

        The worker's unclaimed contiguous range is redistributed to the
        longest-range survivor (stealing handles the rest organically).

        Units: now [s]
        """
        released: List[Tuple[Lease, Optional[float]]] = []
        for chunk in list(self._active):
            for lease in list(self._active[chunk]):
                if lease.worker == worker:
                    released.append((lease, self._release(lease, now)))
        orphaned = self._ranges.pop(worker, deque())
        if self._ranges:
            heir = max(self._ranges, key=lambda w: len(self._ranges[w]))
            self._ranges[heir].extend(orphaned)
        return released

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(self, chunk: int) -> List[Lease]:
        """Mark ``chunk`` done; returns the leases that were released.

        Idempotent: a duplicate completion (speculative twin finishing
        second) returns an empty list.  Also scrubs the chunk from the
        retry pool and every range — completion beats every pending
        re-dispatch.
        """
        released = self._active.pop(chunk, [])
        self._retry = [entry for entry in self._retry if entry[1] != chunk]
        for own in self._ranges.values():
            if chunk in own:
                own.remove(chunk)
        self._outstanding.discard(chunk)
        return released

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find(self, worker: str, chunk: int) -> Optional[Lease]:
        for lease in self._active.get(chunk, []):
            if lease.worker == worker:
                return lease
        return None

    def _release(self, lease: Lease, now: float) -> Optional[float]:
        """Drop ``lease``; requeue its chunk unless a twin survives.

        Returns the requeue delay [s], or ``None`` when no requeue
        happened.
        """
        leases = self._active.get(lease.chunk, [])
        if lease in leases:
            leases.remove(lease)
        if not leases:
            self._active.pop(lease.chunk, None)
            if lease.chunk in self._outstanding:
                delay = self._backoff.delay(
                    self._fingerprint, lease.chunk, max(lease.attempt, 1)
                )
                self._retry.append((now + delay, lease.chunk))
                return delay
        return None
