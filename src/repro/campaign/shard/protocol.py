"""The coordinator ↔ worker wire protocol: one JSON object per line.

The shard layer deliberately reuses the journal's framing philosophy:
every message is a single newline-terminated canonical JSON line, and a
line that fails to parse is *dropped*, never guessed at.  A SIGKILLed
worker can leave a torn final line in its stdout pipe; the coordinator
treats it exactly like the journal treats a torn tail — the chunk the
worker was running simply has no ``completed`` event, its lease expires,
and it is re-dispatched.

Commands (coordinator → worker stdin)
    ``{"cmd": "run", "chunk": k}``   — run chunk ``k`` of the manifest.
    ``{"cmd": "shutdown"}``          — exit cleanly after the reply.

Events (worker → coordinator stdout)
    ``ready``      — worker booted and loaded the manifest (carries pid).
    ``started``    — chunk execution began (implicit first heartbeat).
    ``heartbeat``  — liveness during a chunk (``done`` = sims finished).
    ``completed``  — snapshot durably persisted; carries the content
                     digest the coordinator journals.
    ``error``      — the chunk attempt failed in the worker's batch
                     layer; the coordinator re-dispatches with backoff.

Messages are data, not trust: the coordinator validates digests against
snapshots at finalisation, so a malicious or corrupt event can delay a
campaign but never alter its aggregate bytes.
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = [
    "decode_line",
    "encode_message",
    "COMMAND_RUN",
    "COMMAND_SHUTDOWN",
    "EVENT_READY",
    "EVENT_STARTED",
    "EVENT_HEARTBEAT",
    "EVENT_COMPLETED",
    "EVENT_ERROR",
]

COMMAND_RUN = "run"
COMMAND_SHUTDOWN = "shutdown"

EVENT_READY = "ready"
EVENT_STARTED = "started"
EVENT_HEARTBEAT = "heartbeat"
EVENT_COMPLETED = "completed"
EVENT_ERROR = "error"


def encode_message(message: dict) -> bytes:
    """One protocol message as a newline-terminated UTF-8 JSON line."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Optional[dict]:
    """Parse one protocol line; ``None`` for anything malformed.

    Torn lines (a SIGKILL mid-write), stray prints from user code, and
    non-object JSON all map to ``None`` — the caller drops them and
    relies on lease expiry, never on guessing.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(message, dict):
        return None
    return message
