"""Distributed campaign sharding: lease-based coordination of workers.

One coordinator (:class:`~repro.campaign.shard.coordinator.ShardCoordinator`)
dispatches a manifest's chunk space to N worker subprocesses through
lease-based claims journaled in the campaign's existing write-ahead
journal.  Any worker — and the coordinator itself — can be SIGKILLed at
any byte; after resume the merged aggregate is byte-identical to a
sequential :class:`~repro.campaign.runner.CampaignRunner` run, because
chunk ``k`` is content-deterministic and every completion path writes
the same canonical snapshot.

See ``docs/ROBUSTNESS.md`` (Distribution) for the lease protocol and
the failure matrix.
"""

from repro.campaign.shard.coordinator import ShardCoordinator, shard_status
from repro.campaign.shard.leases import Lease, LeaseTable
from repro.campaign.shard.protocol import decode_line, encode_message

__all__ = [
    "Lease",
    "LeaseTable",
    "ShardCoordinator",
    "decode_line",
    "encode_message",
    "shard_status",
]
