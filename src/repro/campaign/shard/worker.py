"""The shard worker: runs leased chunks, persists snapshots, heartbeats.

Spawned by the coordinator as ``python -m repro.campaign.shard.worker
<directory> <worker-id>``.  The worker is deliberately dumb: it owns no
scheduling state, never touches the journal, and trusts nothing beyond
the manifest on disk.  Its whole contract is

1. read one command line from stdin,
2. run the named chunk with the *manifest's* seeds (simulation ``k``
   uses child ``k`` of the batch seed — which worker runs it is
   irrelevant by construction),
3. atomically persist the snapshot via the same
   :func:`~repro.campaign.runner.persist_chunk_snapshot` the sequential
   runner uses, then report the content digest,
4. emit throttled heartbeats *during* the chunk so the coordinator can
   tell a long chunk from a dead worker.

Crash-anywhere safety: the worker can be SIGKILLed at any byte.  Before
the snapshot rename there is nothing to clean up; after it, the
re-dispatched duplicate writes byte-identical content.  An orphaned
worker (coordinator died) sees EOF on stdin and exits — and if it was
mid-chunk, its final atomic snapshot write is harmless for the same
reason.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign.builders import build_workload
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import MANIFEST_FILE, persist_chunk_snapshot
from repro.campaign.shard.protocol import (
    COMMAND_RUN,
    COMMAND_SHUTDOWN,
    EVENT_COMPLETED,
    EVENT_ERROR,
    EVENT_HEARTBEAT,
    EVENT_READY,
    EVENT_STARTED,
    decode_line,
    encode_message,
)
from repro.obs.fleet import delta_is_empty, empty_snapshot, snapshot_delta
from repro.obs.observer import MetricsOnlyObserver, Observer
from repro.obs.trace import perf_now
from repro.sim.parallel import ParallelBatchRunner

__all__ = ["worker_main", "build_parser"]


class _ChunkRunner:
    """Lazy workload state: built on the first chunk, reused after."""

    def __init__(
        self,
        manifest: CampaignManifest,
        max_retries: int,
        timeout_per_sim: Optional[float],
        observer: Optional[Observer] = None,
    ) -> None:
        self._manifest = manifest
        self._max_retries = max_retries
        self._timeout_per_sim = timeout_per_sim
        self._observer = observer
        self._runner: Optional[ParallelBatchRunner] = None
        self._planner = None

    def run(self, chunk: int, progress) -> tuple:
        """Run one chunk; returns ``(result, elapsed_seconds)``."""
        if self._runner is None:
            scenario, comm, config, planner, kind = build_workload(
                self._manifest
            )
            self._planner = planner
            self._runner = ParallelBatchRunner(
                scenario,
                comm,
                config,
                estimator_kind=kind,
                n_workers=1,
                max_retries=self._max_retries,
                timeout_per_sim=self._timeout_per_sim,
                observer=self._observer,
            )
        indices = self._manifest.chunk_indices(chunk)
        started = perf_now()
        result = self._runner.run_indices_detailed(
            self._planner,
            indices,
            self._manifest.n_sims,
            self._manifest.seed,
            progress=progress,
        )
        return result, max(perf_now() - started, 0.0)


def _emit(message: dict) -> None:
    sys.stdout.buffer.write(encode_message(message))
    sys.stdout.buffer.flush()


def worker_main(
    directory: Path,
    worker_id: str,
    heartbeat_interval: float = 1.0,
    max_retries: int = 2,
    timeout_per_sim: Optional[float] = None,
) -> int:
    """Run the worker loop until shutdown or stdin EOF; returns 0."""
    manifest = CampaignManifest.load(directory / MANIFEST_FILE)
    fingerprint = manifest.fingerprint
    # The worker's own registry: engine/channel/shield series via the
    # in-process batch path plus worker.* bookkeeping.  Deltas against
    # the last reported snapshot piggyback on heartbeat/completed
    # events so the coordinator can merge a fleet-wide view without a
    # second channel (see repro.obs.fleet).  Metrics-only: a tracer
    # would grow one record per engine step for the campaign's
    # lifetime.
    observer = MetricsOnlyObserver()
    reported = empty_snapshot()

    def metric_delta() -> Optional[dict]:
        nonlocal reported
        current = observer.metrics.snapshot()
        delta = snapshot_delta(reported, current)
        reported = current
        return None if delta_is_empty(delta) else delta

    def emit_with_metrics(message: dict) -> None:
        delta = metric_delta()
        if delta is not None:
            message["metrics"] = delta
        _emit(message)

    runner = _ChunkRunner(
        manifest, max_retries, timeout_per_sim, observer=observer
    )
    _emit(
        {
            "event": EVENT_READY,
            "worker": worker_id,
            "pid": os.getpid(),
            "fingerprint": fingerprint,
        }
    )
    stdin = sys.stdin.buffer
    while True:
        line = stdin.readline()
        if not line:
            # Coordinator gone (EOF): orphaned workers exit instead of
            # computing results nobody will journal.
            return 0
        command = decode_line(line)
        if command is None:
            continue
        if command.get("cmd") == COMMAND_SHUTDOWN:
            return 0
        if command.get("cmd") != COMMAND_RUN:
            continue
        chunk = int(command["chunk"])
        _emit({"event": EVENT_STARTED, "worker": worker_id, "chunk": chunk})
        done = 0
        last_beat = perf_now()

        def progress(index: int) -> None:
            nonlocal done, last_beat
            done += 1
            observer.count("worker.sims_completed")
            now = perf_now()
            if now - last_beat >= heartbeat_interval:
                last_beat = now
                emit_with_metrics(
                    {
                        "event": EVENT_HEARTBEAT,
                        "worker": worker_id,
                        "chunk": chunk,
                        "done": done,
                    }
                )

        # Fault boundary: a chunk that blows up in the batch layer is
        # reported as an error event and re-dispatched by the
        # coordinator; the worker itself survives to run other chunks.
        try:
            result, elapsed = runner.run(chunk, progress)
            if result.transient_failures:
                failed = sorted(
                    {failure.index for failure in result.transient_failures}
                )
                observer.count("worker.chunk_errors")
                emit_with_metrics(
                    {
                        "event": EVENT_ERROR,
                        "worker": worker_id,
                        "chunk": chunk,
                        "error_type": "TransientChunkFailure",
                        "message": f"transient failures at indices {failed}",
                    }
                )
                continue
            digest = persist_chunk_snapshot(
                directory, fingerprint, chunk, result
            )
            observer.count("worker.chunks_completed")
            observer.observe("worker.chunk_seconds", elapsed)
            emit_with_metrics(
                {
                    "event": EVENT_COMPLETED,
                    "worker": worker_id,
                    "chunk": chunk,
                    "digest": digest,
                    "n_results": len(result.results),
                    "n_failures": result.n_failed,
                    "elapsed": round(elapsed, 6),
                }
            )
        except Exception as exc:  # safelint: disable=SFL003 - reported as error event; coordinator re-dispatches
            observer.count("worker.chunk_errors")
            emit_with_metrics(
                {
                    "event": EVENT_ERROR,
                    "worker": worker_id,
                    "chunk": chunk,
                    "error_type": type(exc).__name__,
                    "message": str(exc),
                }
            )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.campaign.shard.worker`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-shard-worker",
        description="Shard worker process (spawned by the coordinator).",
    )
    parser.add_argument("directory", help="campaign directory")
    parser.add_argument("worker_id", help="worker id assigned by the coordinator")
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="seconds between liveness heartbeats during a chunk",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="per-index retry budget inside the batch layer",
    )
    parser.add_argument(
        "--timeout-per-sim",
        type=float,
        default=None,
        help="per-simulation time budget in seconds",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return worker_main(
        Path(args.directory),
        args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
        max_retries=args.max_retries,
        timeout_per_sim=args.timeout_per_sim,
    )


if __name__ == "__main__":
    sys.exit(main())
