"""The shard coordinator: lease-based chunk dispatch over worker processes.

Ownership model
---------------

The coordinator is the campaign's **only journal writer**.  Workers
write chunk snapshots (atomic, content-addressed) and report digests
over a line protocol; the coordinator turns those reports into
``chunk_completed`` journal records.  Everything the coordinator knows —
progress, epochs, worker history — is reconstructable from journal +
snapshots, so there is deliberately **no separate coordinator state
file**: killing the coordinator at any byte and re-running
``shard-resume`` replays the journal and carries on.

Failure matrix (each case exercised by the chaos suite):

=====================  ==================================================
Worker SIGKILLed       stdout EOF (or lease TTL) releases its leases;
                       chunks re-dispatched with deterministic backoff
                       to the survivors.  Orphaned snapshot writes are
                       byte-identical, hence harmless.
Coordinator SIGKILLed  Workers see stdin EOF and exit; the journal ends
                       at the last durable record; ``shard-resume``
                       replays it (a new ``coordinator_started`` epoch)
                       and re-runs only unjournaled chunks.
Straggler              A lease older than ``straggler_factor × ttl``
                       gets a speculative twin on an idle worker; the
                       first completion wins.
Duplicate completion   Journaled as-is; replay is idempotent because
                       chunk ``k`` is content-deterministic — equal
                       digests collapse, unequal digests raise
                       ``JournalCorruptionError``.
=====================  ==================================================

The aggregate is produced by the same
:func:`~repro.campaign.runner.finalise_campaign` the sequential runner
uses, reading the same snapshot files — which is why a sharded campaign
is bit-identical to a single-process one by construction, not by luck.
"""

from __future__ import annotations

import os
import selectors
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import repro
from repro.campaign.backoff import BackoffPolicy
from repro.campaign.journal import JournalWriter, read_journal, recover_journal
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import (
    JOURNAL_FILE,
    MANIFEST_FILE,
    CampaignProgress,
    CampaignReport,
    CampaignRunner,
    finalise_campaign,
    install_drain_handlers,
    replay_progress,
    restore_drain_handlers,
)
from repro.campaign.shard.leases import Lease, LeaseTable
from repro.campaign.shard.protocol import (
    COMMAND_RUN,
    COMMAND_SHUTDOWN,
    EVENT_COMPLETED,
    EVENT_ERROR,
    EVENT_HEARTBEAT,
    EVENT_READY,
    EVENT_STARTED,
    decode_line,
    encode_message,
)
from repro.errors import (
    CampaignError,
    FingerprintMismatchError,
    JournalCorruptionError,
)
from repro.obs.fleet import merge_delta
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import resolve_observer
from repro.obs.recorder import TELEMETRY_FILE, FlightRecorder, read_telemetry
from repro.obs.trace import perf_now

__all__ = ["ShardCoordinator", "shard_status"]

#: Grace period [s] for a worker to exit after a shutdown command.
_SHUTDOWN_GRACE = 10.0


@dataclass
class _WorkerHandle:
    """Coordinator-side state of one worker subprocess."""

    worker_id: str
    process: subprocess.Popen
    buffer: bytes = b""
    ready: bool = False
    alive: bool = True
    busy_chunk: Optional[int] = None
    exit_journaled: bool = False
    heartbeats: int = 0
    completions: int = 0


@dataclass
class _LoopState:
    """Mutable per-run state threaded through the event loop."""

    progress: CampaignProgress
    table: LeaseTable
    journal: JournalWriter
    #: chunk -> perf_now() at the moment its lease was released, for the
    #: re-dispatch latency metric.
    redispatch_pending: Dict[int, float] = field(default_factory=dict)


class ShardCoordinator:
    """Runs a campaign manifest across ``n_workers`` worker processes.

    Parameters
    ----------
    manifest, directory:
        As for :class:`~repro.campaign.runner.CampaignRunner`; the
        directory layout (manifest, journal, chunks, aggregate) is
        identical, and the two are resume-compatible in both directions.
    n_workers:
        Worker subprocesses.  ``1`` degrades gracefully to the
        single-process :class:`~repro.campaign.runner.CampaignRunner` —
        no subprocesses, no protocol, same artifacts.
    lease_ttl:
        Seconds of heartbeat silence after which a lease expires and
        its chunk is re-dispatched.
    heartbeat_interval:
        Seconds between worker liveness heartbeats (must be well under
        ``lease_ttl``; validated).
    straggler_factor:
        Lease age multiple of ``lease_ttl`` beyond which an idle worker
        may speculatively duplicate a straggling chunk.
    backoff:
        Deterministic re-dispatch delay policy (shared with the
        sequential runner).
    max_retries, timeout_per_sim:
        Forwarded to each worker's batch layer.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; records lease
        churn, steal counts, worker deaths and re-dispatch latency.
        Write-only — artifacts are byte-identical with or without it.
    tick_hook:
        Test-only callable ``(coordinator, now) -> None`` invoked once
        per event-loop iteration; the chaos suite uses it to SIGKILL
        workers at precise protocol states.
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        directory: Union[str, Path],
        n_workers: int = 2,
        lease_ttl: float = 30.0,
        heartbeat_interval: float = 1.0,
        straggler_factor: float = 4.0,
        backoff: Optional[BackoffPolicy] = None,
        max_retries: int = 2,
        timeout_per_sim: Optional[float] = None,
        observer=None,
        tick_hook: Optional[Callable[["ShardCoordinator", float], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise CampaignError(f"n_workers must be >= 1, got {n_workers}")
        if lease_ttl <= 0.0:
            raise CampaignError(f"lease_ttl must be > 0, got {lease_ttl}")
        if heartbeat_interval <= 0.0:
            raise CampaignError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if heartbeat_interval >= lease_ttl:
            raise CampaignError(
                f"heartbeat_interval ({heartbeat_interval}) must be below "
                f"lease_ttl ({lease_ttl}); every healthy lease would expire"
            )
        if timeout_per_sim is not None and timeout_per_sim <= 0.0:
            raise CampaignError(
                f"timeout_per_sim must be > 0, got {timeout_per_sim}"
            )
        self._manifest = manifest
        self._directory = Path(directory)
        self._fingerprint = manifest.fingerprint
        self._n_workers = n_workers
        self._lease_ttl = lease_ttl
        self._heartbeat_interval = heartbeat_interval
        self._straggler_factor = straggler_factor
        self._backoff = backoff if backoff is not None else BackoffPolicy()
        self._max_retries = max_retries
        self._timeout_per_sim = timeout_per_sim
        self._obs = resolve_observer(observer)
        self._tick_hook = tick_hook
        self._stop_requested = False
        self._workers: Dict[str, _WorkerHandle] = {}
        # The fleet registry is always on (independent of the optional
        # observer): workers stream metric deltas on their heartbeats
        # and the coordinator merges them here with exact-sum semantics
        # (see repro.obs.fleet).  The flight recorder snapshots it into
        # the telemetry.jsonl sidecar — a per-run operational artifact,
        # never part of the aggregate's bit-identity contract.
        self._fleet = MetricsRegistry()
        self._recorder: Optional[FlightRecorder] = None

    # ------------------------------------------------------------------
    # Introspection (tests and the tick hook)
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The campaign home directory."""
        return self._directory

    @property
    def fingerprint(self) -> str:
        """The manifest's canonical content hash."""
        return self._fingerprint

    def worker_pids(self) -> Dict[str, int]:
        """Live worker ids to OS pids (chaos hooks kill through this)."""
        return {
            handle.worker_id: handle.process.pid
            for handle in self._workers.values()
            if handle.alive
        }

    def request_stop(self) -> None:
        """Drain: stop dispatching, let in-flight chunks finish, journal
        an ``interrupted`` marker, and return an interrupted report."""
        self._stop_requested = True

    @property
    def fleet_registry(self) -> MetricsRegistry:
        """The always-on fleet registry (merged worker deltas)."""
        return self._fleet

    @property
    def telemetry_recorder(self) -> Optional[FlightRecorder]:
        """The flight recorder of the current run (``None`` when idle)."""
        return self._recorder

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Start the sharded campaign from scratch (see ``CampaignRunner.run``)."""
        if self._n_workers == 1:
            return self._degraded().run()
        journal_path = self._directory / JOURNAL_FILE
        if journal_path.exists():
            records, _ = read_journal(journal_path)
            if records:
                raise CampaignError(
                    f"campaign at {self._directory} was already started "
                    f"({len(records)} journal records); use shard-resume"
                )
        manifest_path = self._directory / MANIFEST_FILE
        if manifest_path.exists():
            existing = CampaignManifest.load(manifest_path)
            if existing.fingerprint != self._fingerprint:
                raise FingerprintMismatchError(
                    f"directory {self._directory} holds manifest "
                    f"{existing.fingerprint[:12]}..., refusing to start "
                    f"{self._fingerprint[:12]}... over it"
                )
        self._directory.mkdir(parents=True, exist_ok=True)
        self._manifest.save(manifest_path)
        progress = CampaignProgress(fingerprint=self._fingerprint)
        with JournalWriter(
            journal_path, next_seq=0, observer=self._obs
        ) as journal:
            journal.append(
                "campaign_started",
                fingerprint=self._fingerprint,
                name=self._manifest.name,
                n_sims=self._manifest.n_sims,
                n_chunks=self._manifest.n_chunks,
            )
            progress.next_seq = journal.next_seq
            return self._execute(progress, journal, epoch=1)

    def resume(self) -> CampaignReport:
        """Continue after any crash or drain — of workers or coordinator.

        Pure journal replay: completed chunks are skipped, a fresh
        worker fleet is spawned under a new ``coordinator_started``
        epoch, and everything else re-runs with the manifest's seeds.
        """
        if self._n_workers == 1:
            return self._degraded().resume()
        manifest_path = self._directory / MANIFEST_FILE
        if manifest_path.exists():
            on_disk = CampaignManifest.load(manifest_path)
            if on_disk.fingerprint != self._fingerprint:
                raise FingerprintMismatchError(
                    f"manifest at {manifest_path} has fingerprint "
                    f"{on_disk.fingerprint[:12]}... but this coordinator "
                    f"was built for {self._fingerprint[:12]}...; start a "
                    "new campaign directory instead"
                )
        journal_path = self._directory / JOURNAL_FILE
        if not journal_path.exists():
            raise CampaignError(
                f"no journal at {journal_path}; use shard-run to start"
            )
        records = recover_journal(journal_path)
        progress = replay_progress(records, self._fingerprint)
        epoch = 1 + sum(
            1 for r in records if r.get("type") == "coordinator_started"
        )
        if not manifest_path.exists():
            self._directory.mkdir(parents=True, exist_ok=True)
            self._manifest.save(manifest_path)
        with JournalWriter(
            journal_path, next_seq=progress.next_seq, observer=self._obs
        ) as journal:
            if not records:
                journal.append(
                    "campaign_started",
                    fingerprint=self._fingerprint,
                    name=self._manifest.name,
                    n_sims=self._manifest.n_sims,
                    n_chunks=self._manifest.n_chunks,
                )
                progress.next_seq = journal.next_seq
            return self._execute(progress, journal, epoch=epoch)

    def _degraded(self) -> CampaignRunner:
        """The N=1 degradation: same knobs, no subprocesses."""
        return CampaignRunner(
            self._manifest,
            self._directory,
            n_workers=1,
            max_retries=self._max_retries,
            timeout_per_sim=self._timeout_per_sim,
            backoff=self._backoff,
            observer=(self._obs if self._obs.enabled else None),
        )

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def _execute(
        self, progress: CampaignProgress, journal: JournalWriter, epoch: int
    ) -> CampaignReport:
        manifest = self._manifest
        if progress.finished:
            return self._report_from_progress(progress)
        pending = [
            chunk
            for chunk in range(manifest.n_chunks)
            if chunk not in progress.completed
        ]
        journal.append(
            "coordinator_started",
            fingerprint=self._fingerprint,
            epoch=epoch,
            n_workers=self._n_workers,
            pending_chunks=len(pending),
        )
        if not pending:
            # Every chunk was journaled before the previous coordinator
            # died; only finalisation is left — no workers needed.
            return finalise_campaign(
                manifest, self._directory, progress, 0, journal
            )
        worker_ids = [f"w{i}" for i in range(self._n_workers)]
        table = LeaseTable(
            pending,
            worker_ids,
            self._fingerprint,
            backoff=self._backoff,
            ttl=self._lease_ttl,
            straggler_factor=self._straggler_factor,
        )
        state = _LoopState(progress=progress, table=table, journal=journal)
        selector = selectors.DefaultSelector()
        previous_handlers = install_drain_handlers(self.request_stop)
        self._workers = {}
        chunks_before = len(progress.completed)
        self._recorder = FlightRecorder(
            self._fleet,
            sidecar=self._directory / TELEMETRY_FILE,
            min_interval=max(self._heartbeat_interval, 0.5),
        )
        try:
            for worker_id in worker_ids:
                self._spawn_worker(worker_id, selector, journal)
            self._loop(state, selector)
            if self._stop_requested and table.outstanding() > 0:
                self._shutdown_workers(selector, journal)
                journal.append(
                    "interrupted",
                    fingerprint=self._fingerprint,
                    completed_chunks=len(progress.completed),
                )
                return CampaignReport(
                    status="interrupted",
                    fingerprint=self._fingerprint,
                    n_chunks=manifest.n_chunks,
                    completed_chunks=len(progress.completed),
                    chunks_run=len(progress.completed) - chunks_before,
                )
            self._shutdown_workers(selector, journal)
            return finalise_campaign(
                manifest,
                self._directory,
                progress,
                len(progress.completed) - chunks_before,
                journal,
            )
        finally:
            restore_drain_handlers(previous_handlers)
            self._kill_remaining_workers()
            selector.close()
            # Flush a final frame so shard-status sees the end state
            # however the run ended (finished, drained, or crashed).
            self._recorder.tick(force=True)

    def _loop(self, state: _LoopState, selector: selectors.DefaultSelector) -> None:
        poll = max(0.01, min(self._heartbeat_interval, self._lease_ttl / 4.0))
        while state.table.outstanding() > 0:
            if self._stop_requested and self._all_idle():
                return
            for key, _ in selector.select(timeout=poll):
                self._drain_pipe(key.data, key.fd, selector, state)
            now = perf_now()
            self._expire_leases(state, now)
            if not any(h.alive for h in self._workers.values()):
                if state.table.outstanding() > 0 and not self._stop_requested:
                    raise CampaignError(
                        "all shard workers died; the journal is intact — "
                        "shard-resume to re-dispatch the remaining chunks"
                    )
                return
            if not self._stop_requested:
                self._dispatch(state, now)
            if self._recorder is not None:
                self._recorder.tick()
            if self._tick_hook is not None:
                self._tick_hook(self, now)

    def _all_idle(self) -> bool:
        return all(
            handle.busy_chunk is None
            for handle in self._workers.values()
            if handle.alive
        )

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _worker_command(self, worker_id: str) -> List[str]:
        command = [
            sys.executable,
            "-m",
            "repro.campaign.shard.worker",
            str(self._directory),
            worker_id,
            "--heartbeat-interval",
            str(self._heartbeat_interval),
            "--max-retries",
            str(self._max_retries),
        ]
        if self._timeout_per_sim is not None:
            command += ["--timeout-per-sim", str(self._timeout_per_sim)]
        return command

    def _worker_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + os.pathsep + existing if existing else src_root
            )
        return env

    def _spawn_worker(
        self,
        worker_id: str,
        selector: selectors.DefaultSelector,
        journal: JournalWriter,
    ) -> None:
        process = subprocess.Popen(
            self._worker_command(worker_id),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=self._worker_env(),
        )
        handle = _WorkerHandle(worker_id=worker_id, process=process)
        self._workers[worker_id] = handle
        os.set_blocking(process.stdout.fileno(), False)
        selector.register(process.stdout.fileno(), selectors.EVENT_READ, handle)
        journal.append(
            "worker_spawned",
            fingerprint=self._fingerprint,
            worker=worker_id,
            pid=process.pid,
        )
        if self._obs.enabled:
            self._obs.count("shard.workers_spawned")

    def _drain_pipe(
        self,
        handle: _WorkerHandle,
        fd: int,
        selector: selectors.DefaultSelector,
        state: _LoopState,
    ) -> None:
        try:
            data = os.read(fd, 65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            data = b""
        if data == b"":
            selector.unregister(fd)
            self._on_worker_gone(handle, state)
            return
        handle.buffer += data
        while b"\n" in handle.buffer:
            line, handle.buffer = handle.buffer.split(b"\n", 1)
            event = decode_line(line)
            if event is not None:
                self._handle_event(handle, event, state)

    def _on_worker_gone(self, handle: _WorkerHandle, state: _LoopState) -> None:
        """EOF on a worker's stdout: reap it and release its leases."""
        handle.alive = False
        handle.busy_chunk = None
        if handle.process.poll() is None:
            handle.process.kill()
        returncode = handle.process.wait()
        if not handle.exit_journaled:
            handle.exit_journaled = True
            state.journal.append(
                "worker_exited",
                fingerprint=self._fingerprint,
                worker=handle.worker_id,
                returncode=returncode,
            )
        now = perf_now()
        for lease, delay in state.table.release_worker(handle.worker_id, now):
            self._journal_lease_release(
                state, lease, delay, now, reason="worker_exited"
            )
        self._fleet.gauge("fleet.worker_up", 0.0, worker=handle.worker_id)
        if self._obs.enabled:
            self._obs.count("shard.worker_deaths")

    def _shutdown_workers(
        self, selector: selectors.DefaultSelector, journal: JournalWriter
    ) -> None:
        """Graceful fleet shutdown; journals every worker's exit."""
        for handle in self._workers.values():
            if not handle.alive:
                continue
            try:
                handle.process.stdin.write(
                    encode_message({"cmd": COMMAND_SHUTDOWN})
                )
                handle.process.stdin.flush()
                handle.process.stdin.close()
            except (BrokenPipeError, OSError, ValueError):  # safelint: disable=SFL010 - best-effort goodbye; wait() below settles the worker either way
                pass
        for handle in self._workers.values():
            if not handle.alive:
                continue
            try:
                returncode = handle.process.wait(timeout=_SHUTDOWN_GRACE)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                returncode = handle.process.wait()
            handle.alive = False
            self._fleet.gauge(
                "fleet.worker_up", 0.0, worker=handle.worker_id
            )
            try:
                selector.unregister(handle.process.stdout.fileno())
            except (KeyError, ValueError):  # safelint: disable=SFL010 - EOF already unregistered this pipe; nothing to clean up
                pass
            if not handle.exit_journaled:
                handle.exit_journaled = True
                journal.append(
                    "worker_exited",
                    fingerprint=self._fingerprint,
                    worker=handle.worker_id,
                    returncode=returncode,
                )

    def _kill_remaining_workers(self) -> None:
        """Last-resort cleanup: no child outlives the coordinator call."""
        for handle in self._workers.values():
            if handle.process.poll() is None:
                handle.process.kill()
                handle.process.wait()

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _handle_event(
        self, handle: _WorkerHandle, event: dict, state: _LoopState
    ) -> None:
        kind = event.get("event")
        now = perf_now()
        self._absorb_worker_metrics(handle, event)
        if kind == EVENT_READY:
            handle.ready = True
            self._fleet.gauge(
                "fleet.worker_up", 1.0, worker=handle.worker_id
            )
        elif kind in (EVENT_STARTED, EVENT_HEARTBEAT):
            chunk = int(event.get("chunk", -1))
            handle.heartbeats += 1
            if state.table.heartbeat(handle.worker_id, chunk, now):
                state.journal.append(
                    "lease_heartbeat",
                    fingerprint=self._fingerprint,
                    worker=handle.worker_id,
                    chunk=chunk,
                    done=int(event.get("done", 0)),
                )
        elif kind == EVENT_COMPLETED:
            self._handle_completed(handle, event, state, now)
        elif kind == EVENT_ERROR:
            self._handle_error(handle, event, state, now)

    def _absorb_worker_metrics(
        self, handle: _WorkerHandle, event: dict
    ) -> None:
        """Merge a piggybacked metric delta into the fleet registry.

        Every merged counter lands twice — in the unlabelled fleet
        total and in a ``worker=<id>`` labelled series — which is the
        structural form of the exact-sum acceptance invariant:
        ``fleet.x == sum over workers of fleet.x{worker=w}``.
        """
        delta = event.get("metrics")
        if not isinstance(delta, dict):
            return
        merge_delta(self._fleet, delta, worker=handle.worker_id)
        self._fleet.count("fleet.metric_reports")
        self._fleet.count("fleet.metric_reports", worker=handle.worker_id)
        self._fleet.gauge("fleet.worker_up", 1.0, worker=handle.worker_id)

    def _handle_completed(
        self,
        handle: _WorkerHandle,
        event: dict,
        state: _LoopState,
        now: float,
    ) -> None:
        if not isinstance(event.get("chunk"), int) or not isinstance(
            event.get("digest"), str
        ):
            return  # malformed event: drop; lease expiry covers the chunk
        chunk = int(event["chunk"])
        digest = str(event["digest"])
        handle.busy_chunk = None
        handle.completions += 1
        previous = state.progress.completed.get(chunk)
        if previous is not None and previous != digest:
            raise JournalCorruptionError(
                f"worker {handle.worker_id} completed chunk {chunk} with "
                f"digest {digest[:12]}... but an earlier completion "
                f"journaled {previous[:12]}...; the workload is not "
                "content-deterministic"
            )
        duplicate = previous is not None
        # Duplicates are journaled too: replay is idempotent, and the
        # record is the audit trail that a speculative twin raced.
        state.journal.append(
            "chunk_completed",
            fingerprint=self._fingerprint,
            chunk=chunk,
            n_results=int(event.get("n_results", 0)),
            n_failures=int(event.get("n_failures", 0)),
            digest=digest,
            elapsed=float(event.get("elapsed", 0.0)),
            worker=handle.worker_id,
            duplicate=duplicate,
        )
        state.progress.completed[chunk] = digest
        state.table.complete(chunk)
        state.redispatch_pending.pop(chunk, None)
        if self._obs.enabled:
            self._obs.count("shard.chunks_completed")
            self._obs.observe(
                "shard.chunk_seconds", float(event.get("elapsed", 0.0))
            )
            if duplicate:
                self._obs.count("shard.duplicate_completions")

    def _handle_error(
        self,
        handle: _WorkerHandle,
        event: dict,
        state: _LoopState,
        now: float,
    ) -> None:
        chunk = int(event.get("chunk", -1))
        handle.busy_chunk = None
        delay = state.table.fail(handle.worker_id, chunk, now)
        state.journal.append(
            "chunk_failed",
            fingerprint=self._fingerprint,
            worker=handle.worker_id,
            chunk=chunk,
            error_type=str(event.get("error_type", "unknown")),
            message=str(event.get("message", ""))[:500],
            attempt=state.table.attempts(chunk),
            delay=delay,
        )
        if delay is not None:
            state.redispatch_pending[chunk] = now
        if self._obs.enabled:
            self._obs.count("shard.chunk_errors")

    # ------------------------------------------------------------------
    # Lease churn
    # ------------------------------------------------------------------
    def _expire_leases(self, state: _LoopState, now: float) -> None:
        # The holder may still be computing (hung or merely slow); its
        # slot stays busy until it reports or dies, but the chunk itself
        # becomes claimable elsewhere — a late completion is absorbed as
        # a byte-identical duplicate.
        for lease, delay in state.table.expire(now):
            self._journal_lease_release(
                state, lease, delay, now, reason="ttl"
            )

    def _journal_lease_release(
        self,
        state: _LoopState,
        lease: Lease,
        delay: Optional[float],
        now: float,
        reason: str,
    ) -> None:
        state.journal.append(
            "lease_expired",
            fingerprint=self._fingerprint,
            worker=lease.worker,
            chunk=lease.chunk,
            attempt=lease.attempt,
            delay=delay,
            reason=reason,
        )
        if delay is not None:
            state.redispatch_pending[lease.chunk] = now
        if self._obs.enabled:
            self._obs.count("shard.lease_expirations")

    def _dispatch(self, state: _LoopState, now: float) -> None:
        for handle in self._workers.values():
            if not handle.alive or not handle.ready:
                continue
            if handle.busy_chunk is not None:
                continue
            lease = state.table.claim(handle.worker_id, now)
            if lease is None:
                continue
            try:
                handle.process.stdin.write(
                    encode_message({"cmd": COMMAND_RUN, "chunk": lease.chunk})
                )
                handle.process.stdin.flush()
            except (BrokenPipeError, OSError, ValueError):
                # The worker died between EOF and our write; give the
                # lease straight back — the EOF path will also release
                # anything the table still holds for this worker.
                state.table.release_worker(handle.worker_id, now)
                handle.alive = False
                continue
            handle.busy_chunk = lease.chunk
            state.journal.append(
                "lease_claimed",
                fingerprint=self._fingerprint,
                worker=handle.worker_id,
                chunk=lease.chunk,
                attempt=lease.attempt,
                origin=lease.origin,
                speculative=lease.speculative,
            )
            if self._obs.enabled:
                self._obs.count("shard.lease_claims")
                if lease.origin == "steal":
                    self._obs.count("shard.steals")
                if lease.speculative:
                    self._obs.count("shard.speculations")
            issued_at = state.redispatch_pending.pop(lease.chunk, None)
            if issued_at is not None and self._obs.enabled:
                self._obs.observe(
                    "shard.redispatch_seconds", max(now - issued_at, 0.0)
                )

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def _report_from_progress(self, progress: CampaignProgress) -> CampaignReport:
        return self._degraded()._report_from_aggregate(progress, chunks_run=0)


# ----------------------------------------------------------------------
# shard-status: read-only per-worker summary from the journal
# ----------------------------------------------------------------------
def shard_status(directory: Union[str, Path]) -> dict:
    """Per-worker lease/heartbeat/steal summary of a sharded campaign.

    Derived purely from the journal (safe on a live or killed campaign):
    coordinator epochs, per-worker lease counts by origin, heartbeat
    counts, completions, expirations, and duplicate completions.
    """
    directory = Path(directory)
    manifest = CampaignManifest.load(directory / MANIFEST_FILE)
    journal_path = directory / JOURNAL_FILE
    records: List[dict] = []
    torn = False
    if journal_path.exists():
        records, torn = read_journal(journal_path)
    workers: Dict[str, dict] = {}

    def worker_entry(worker: str) -> dict:
        return workers.setdefault(
            worker,
            {
                "pid": None,
                "alive": False,
                "leases": 0,
                "steals": 0,
                "speculative": 0,
                "heartbeats": 0,
                "completions": 0,
                "expirations": 0,
                "errors": 0,
                "last_heartbeat_seq": None,
            },
        )

    epochs = 0
    completed: Dict[int, str] = {}
    duplicates = 0
    expirations = 0
    finished = False
    for record in records:
        record_type = record.get("type")
        if record_type == "coordinator_started":
            epochs += 1
            # A new epoch means the previous fleet is gone.
            for entry in workers.values():
                entry["alive"] = False
        elif record_type == "worker_spawned":
            entry = worker_entry(str(record.get("worker")))
            entry["pid"] = record.get("pid")
            entry["alive"] = True
        elif record_type == "worker_exited":
            worker_entry(str(record.get("worker")))["alive"] = False
        elif record_type == "lease_claimed":
            entry = worker_entry(str(record.get("worker")))
            entry["leases"] += 1
            if record.get("origin") == "steal":
                entry["steals"] += 1
            if record.get("speculative"):
                entry["speculative"] += 1
        elif record_type == "lease_heartbeat":
            entry = worker_entry(str(record.get("worker")))
            entry["heartbeats"] += 1
            entry["last_heartbeat_seq"] = record.get("seq")
        elif record_type == "lease_expired":
            worker_entry(str(record.get("worker")))["expirations"] += 1
            expirations += 1
        elif record_type == "chunk_failed":
            worker_entry(str(record.get("worker")))["errors"] += 1
        elif record_type == "chunk_completed":
            chunk = int(record.get("chunk", -1))
            if chunk in completed:
                duplicates += 1
            completed[chunk] = str(record.get("digest"))
            worker = record.get("worker")
            if worker is not None:
                worker_entry(str(worker))["completions"] += 1
        elif record_type == "campaign_finished":
            finished = True
    return {
        "name": manifest.name,
        "fingerprint": manifest.fingerprint,
        "n_chunks": manifest.n_chunks,
        "completed_chunks": len(completed),
        "coordinator_epochs": epochs,
        "workers": workers,
        "lease_expirations": expirations,
        "duplicate_completions": duplicates,
        "journal_records": len(records),
        "torn_tail": torn,
        "finished": finished,
        "telemetry": _telemetry_summary(directory),
    }


def _telemetry_summary(directory: Path) -> Optional[dict]:
    """Summarise the telemetry sidecar for ``shard-status``.

    ``None`` when the campaign never wrote one (pre-telemetry runs,
    single-worker degradation without an observer).  Otherwise the
    newest frame's fleet counters and per-worker liveness gauges plus
    the frame count — everything the status CLI and the exposition
    flag need without re-reading the journal.
    """
    frames = read_telemetry(directory / TELEMETRY_FILE)
    if not frames:
        return None
    newest = frames[-1]
    return {
        "frames": len(frames),
        "last_wall": newest.get("wall"),
        "counters": dict(newest.get("counters", {})),
        "gauges": dict(newest.get("gauges", {})),
        "histograms": dict(newest.get("histograms", {})),
    }
