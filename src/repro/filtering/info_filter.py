"""Estimate providers: the information filter and the raw estimator.

The runtime monitor (and through it the planners) consume a
:class:`~repro.filtering.fusion.FusedEstimate` of every other vehicle each
control step.  Two providers implement the common
:class:`EstimateProvider` protocol:

* :class:`InformationFilter` — the paper's full design (Section III-B):
  a replaying Kalman filter over sensor readings, reachability analysis
  over the latest message, and interval-intersection fusion.  This is what
  the *ultimate* compound planner uses.
* :class:`RawEstimator` — no filtering: reachability over the latest raw
  message and the raw sensor band (measurement ± uniform bound) propagated
  by reachability, intersected.  This is the information available to the
  *basic* compound planner, and it is strictly wider, which is exactly why
  the basic planner is slower in Tables I/II.

Both providers produce sound position/velocity bands (up to the Kalman
confidence level for the information filter, whose band is intersected
with the guaranteed reachability band and falls back to it when
inconsistent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.comm.message import Message
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import FilterError
from repro.filtering.fusion import FusedEstimate, fuse_bands, intersect_or_fallback
from repro.filtering.kalman import KalmanFilter
from repro.filtering.reachability import ReachBand, ReachabilityAnalyzer
from repro.filtering.replay import ReplayKalmanFilter
from repro.obs.observer import resolve_observer
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import SensorReading
from repro.utils.intervals import Interval

__all__ = [
    "EstimateProvider",
    "InformationFilter",
    "RawEstimator",
    "WatchdogStats",
]

#: Absolute innovation slack added to the watchdog gate so noiseless
#: setups (R = 0, zero covariance, exact measurements) never trip on
#: pure float roundoff.
_WATCHDOG_SLACK = 1e-6


@dataclass
class WatchdogStats:
    """Divergence-watchdog counters of one :class:`InformationFilter`.

    Attributes
    ----------
    breaches:
        Sensor updates whose innovation exceeded the N-sigma gate.
    consecutive:
        Current run of consecutive breaching updates (resets on the
        first consistent update).
    trips:
        Times the run reached the trip threshold and the filter fell
        back to the reachability-only band.
    recoveries:
        Times a consistent update ended a tripped state.
    diverged:
        Whether the fallback is currently engaged.
    """

    breaches: int = 0
    consecutive: int = 0
    trips: int = 0
    recoveries: int = 0
    diverged: bool = False


class EstimateProvider(Protocol):
    """What the runtime monitor needs from an estimator of one vehicle."""

    def on_sensor_reading(self, reading: SensorReading) -> None:
        """Ingest a new sensor reading (delay-free, noisy)."""
        ...

    def on_message(self, message: Message, now: float) -> None:
        """Ingest a delivered message (exact content, possibly stale).

        Units: now [s]
        """
        ...

    def estimate(self, now: float) -> FusedEstimate:
        """Produce the fused estimate of the observed vehicle at ``now``.

        Units: now [s]
        """
        ...


def _physical_velocity_band(limits: VehicleLimits) -> Interval:
    return Interval(limits.v_min, limits.v_max)


class InformationFilter:
    """The paper's information filter for one remote vehicle.

    Parameters
    ----------
    limits:
        True physical limits of the observed vehicle (used by the
        reachability analysis; must not be under-estimated or soundness is
        lost).
    sensor_bounds:
        Noise bounds of the ego's sensor; fix the Kalman matrices.
    sensing_period:
        ``dt_s``; the Kalman filter's native step.
    n_sigma:
        Half-width of the Kalman confidence band in standard deviations
        (3 by default).
    history_horizon:
        Replay memory horizon passed to :class:`ReplayKalmanFilter`.
    watchdog_sigma:
        Divergence gate: an innovation beyond ``watchdog_sigma`` standard
        deviations of the innovation covariance counts as a breach.
        ``None`` disables the watchdog.  The default (6) is deliberately
        far outside the fusion band's 3-sigma, so a healthy filter under
        nominal noise essentially never breaches.
    watchdog_consecutive:
        Consecutive breaching updates before the filter *trips*: its
        Kalman band is considered untrustworthy and :meth:`estimate`
        falls back to the guaranteed reachability-only band until a
        consistent update recovers it.  Soundness never depended on the
        Kalman band (the fusion intersects it with the guaranteed band);
        the watchdog protects the *efficiency* claim from a silently
        diverged filter steering the nominal estimate.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; records replay
        depth, watchdog breaches/trips/recoveries, fused band widths,
        and reachability-fallback events.  Write-only — estimates are
        bit-identical with or without it.
    label:
        Label attached to this filter's metrics (the estimator factory
        passes ``veh<i>``).
    """

    def __init__(
        self,
        limits: VehicleLimits,
        sensor_bounds: NoiseBounds,
        sensing_period: float,
        n_sigma: float = 3.0,
        history_horizon: float = 30.0,
        watchdog_sigma: Optional[float] = 6.0,
        watchdog_consecutive: int = 3,
        observer=None,
        label: str = "",
    ) -> None:
        if n_sigma <= 0.0:
            raise FilterError(f"n_sigma must be > 0, got {n_sigma}")
        if watchdog_sigma is not None and watchdog_sigma <= 0.0:
            raise FilterError(
                f"watchdog_sigma must be > 0 or None, got {watchdog_sigma}"
            )
        if watchdog_consecutive < 1:
            raise FilterError(
                f"watchdog_consecutive must be >= 1, got {watchdog_consecutive}"
            )
        self._reach = ReachabilityAnalyzer(limits)
        self._replay = ReplayKalmanFilter(
            KalmanFilter(sensing_period, sensor_bounds),
            history_horizon=history_horizon,
        )
        self._bounds = sensor_bounds
        self._n_sigma = float(n_sigma)
        self._watchdog_sigma = (
            None if watchdog_sigma is None else float(watchdog_sigma)
        )
        self._watchdog_consecutive = int(watchdog_consecutive)
        self._watchdog = WatchdogStats()
        self._obs = resolve_observer(observer)
        self._label = label
        self._latest_message: Optional[Message] = None
        self._latest_reading: Optional[SensorReading] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def on_sensor_reading(self, reading: SensorReading) -> None:
        """Feed a sensor reading to the replaying Kalman filter.

        The divergence watchdog gates the reading's innovation against
        the filter's own predicted uncertainty *before* the update; the
        reading is always folded in regardless (the filter keeps
        running), the gate only decides whether :meth:`estimate` still
        trusts the Kalman band.
        """
        if self._obs.enabled:
            before = (
                self._watchdog.breaches,
                self._watchdog.trips,
                self._watchdog.recoveries,
            )
            self._gate_innovation(reading)
            self._observe_watchdog(before, reading.time)
        else:
            self._gate_innovation(reading)
        self._replay.on_sensor_reading(reading)
        self._latest_reading = reading

    def _observe_watchdog(self, before, time: float) -> None:
        """Emit watchdog deltas of one gated reading (telemetry only)."""
        obs = self._obs
        stats = self._watchdog
        if stats.breaches > before[0]:
            obs.count("filter.watchdog.breaches", filter=self._label)
        if stats.trips > before[1]:
            obs.instant("filter.watchdog.trip", t=time, filter=self._label)
            obs.count("filter.watchdog.trips", filter=self._label)
        if stats.recoveries > before[2]:
            obs.instant("filter.watchdog.recovery", t=time, filter=self._label)
            obs.count("filter.watchdog.recoveries", filter=self._label)

    def on_message(self, message: Message, now: float) -> None:
        """Feed a delivered message: replay the filter and keep the stamp.

        Units: now [s]
        """
        renewed = self._replay.on_message(message, now)
        if self._obs.enabled and renewed is not None:
            depth = self._replay.last_replay_depth
            self._obs.instant(
                "filter.replay",
                t=float(now),
                stamp=message.stamp,
                depth=depth,
                filter=self._label,
            )
            self._obs.count("filter.replays", filter=self._label)
            self._obs.observe(
                "filter.replay_depth", float(depth), filter=self._label
            )
        if (
            self._latest_message is None
            or message.stamp > self._latest_message.stamp
        ):
            self._latest_message = message

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def replay_filter(self) -> ReplayKalmanFilter:
        """The underlying replaying Kalman filter."""
        return self._replay

    @property
    def latest_message(self) -> Optional[Message]:
        """Newest message received so far, if any."""
        return self._latest_message

    @property
    def reachability(self) -> ReachabilityAnalyzer:
        """The reachability analyzer (true physical limits)."""
        return self._reach

    @property
    def watchdog(self) -> WatchdogStats:
        """Divergence-watchdog counters (live object, updated in place)."""
        return self._watchdog

    # ------------------------------------------------------------------
    # Divergence watchdog
    # ------------------------------------------------------------------
    def _gate_innovation(self, reading: SensorReading) -> None:
        """Classify one reading's innovation; never raises.

        A breach means the measurement fell outside
        ``watchdog_sigma * sqrt(P + R)`` (per channel, plus a small
        absolute slack for noiseless setups) of the filter's own
        prediction — the filter believes an uncertainty its measurements
        contradict.  After ``watchdog_consecutive`` breaches in a row the
        filter trips; one consistent reading recovers it.
        """
        if self._watchdog_sigma is None or not self._replay.is_initialized:
            return
        try:
            predicted = self._replay.estimate_at(reading.time)
        except FilterError:
            # Non-advancing or pre-posterior reading: let the replay
            # filter's own validation report it; the gate stays silent.
            return
        kalman = self._replay.kalman
        r = kalman.r_matrix
        p = predicted.covariance
        gate_p = (
            self._watchdog_sigma * math.sqrt(max(p[0, 0] + r[0, 0], 0.0))
            + _WATCHDOG_SLACK
        )
        gate_v = (
            self._watchdog_sigma * math.sqrt(max(p[1, 1] + r[1, 1], 0.0))
            + _WATCHDOG_SLACK
        )
        breach = (
            abs(reading.position - predicted.position) > gate_p
            or abs(reading.velocity - predicted.velocity) > gate_v
        )
        stats = self._watchdog
        if breach:
            stats.breaches += 1
            stats.consecutive += 1
            if (
                not stats.diverged
                and stats.consecutive >= self._watchdog_consecutive
            ):
                stats.diverged = True
                stats.trips += 1
        else:
            if stats.diverged:
                stats.diverged = False
                stats.recoveries += 1
            stats.consecutive = 0

    # ------------------------------------------------------------------
    # Estimate
    # ------------------------------------------------------------------
    def estimate(self, now: float) -> FusedEstimate:
        """Fused estimate at ``now`` (Section III-B join).

        Units: now [s]

        Requires at least one sensor reading or one message; the
        simulation engine guarantees a sensor sample at ``t = 0``.
        """
        guaranteed = self._guaranteed_band(now)
        message_age = (
            None
            if self._latest_message is None
            else float(now) - self._latest_message.stamp
        )

        if self._replay.is_initialized and not self._watchdog.diverged:
            kf = self._replay.estimate_at(now)
            fused = fuse_bands(
                guaranteed,
                kf.position_band(self._n_sigma),
                kf.velocity_band(self._n_sigma),
            )
            nominal = VehicleState(
                position=fused.position.clamp(kf.position),
                velocity=fused.velocity.clamp(kf.velocity),
                acceleration=self._replay.current_accel,
            )
        else:
            # Reachability-only: before the first sensor reading, or the
            # watchdog tripped and the Kalman band is quarantined.
            fused = guaranteed
            if self._obs.enabled:
                self._obs.count("filter.fallback", filter=self._label)
                if self._watchdog.diverged:
                    self._obs.instant(
                        "filter.fallback",
                        t=float(now),
                        cause="watchdog",
                        filter=self._label,
                    )
            if self._replay.is_initialized:
                accel = self._replay.current_accel
            elif self._latest_message is not None:
                accel = self._latest_message.state.acceleration
            else:
                accel = 0.0
            nominal = VehicleState(
                position=fused.position.midpoint,
                velocity=fused.velocity.midpoint,
                acceleration=accel,
            )
        if self._obs.enabled:
            p_width = fused.position.width
            v_width = fused.velocity.width
            if math.isfinite(p_width):
                self._obs.gauge(
                    "filter.position_width", p_width, filter=self._label
                )
                self._obs.observe(
                    "filter.position_width", p_width, filter=self._label
                )
            if math.isfinite(v_width):
                self._obs.gauge(
                    "filter.velocity_width", v_width, filter=self._label
                )
                self._obs.observe(
                    "filter.velocity_width", v_width, filter=self._label
                )
        return FusedEstimate(
            time=float(now),
            position=fused.position,
            velocity=fused.velocity,
            nominal=nominal,
            message_age=message_age,
        )

    def _guaranteed_band(self, now: float) -> ReachBand:
        """Sound band from message reachability and raw sensor propagation."""
        bands = []
        if self._latest_message is not None:
            bands.append(
                self._reach.band_from_state(
                    self._latest_message.state, self._latest_message.stamp, now
                )
            )
        if self._latest_reading is not None:
            bands.append(self._sensor_band(self._latest_reading, now))
        if not bands:
            raise FilterError(
                "no information yet: neither a sensor reading nor a message "
                "has been ingested"
            )
        fused = bands[0]
        for band in bands[1:]:
            fused = ReachBand(
                time=fused.time,
                position=intersect_or_fallback(fused.position, band.position),
                velocity=intersect_or_fallback(fused.velocity, band.velocity),
            )
        return fused

    def _sensor_band(self, reading: SensorReading, now: float) -> ReachBand:
        """Raw measurement band propagated from the sample time to ``now``."""
        p_band = self._bounds.position_band(reading.position)
        v_band = self._bounds.velocity_band(reading.velocity).intersect(
            _physical_velocity_band(self._reach.limits)
        )
        if v_band.is_empty:
            # Measurement pushed entirely outside the physical range; clip
            # to the nearest physical velocity.
            v = self._reach.limits.clip_velocity(reading.velocity)
            v_band = Interval.point(v)
        return self._reach.band_from_intervals(p_band, v_band, reading.time, now)


class RawEstimator:
    """Unfiltered estimates: what the *basic* compound planner sees.

    Maintains only the latest message and the latest sensor reading and
    combines their propagated bands by intersection.  No Kalman smoothing,
    no replay — the resulting band is systematically wider than the
    information filter's, reproducing the efficiency gap between the basic
    and ultimate compound planners.
    """

    def __init__(
        self,
        limits: VehicleLimits,
        sensor_bounds: NoiseBounds,
    ) -> None:
        self._reach = ReachabilityAnalyzer(limits)
        self._bounds = sensor_bounds
        self._latest_message: Optional[Message] = None
        self._latest_reading: Optional[SensorReading] = None

    def on_sensor_reading(self, reading: SensorReading) -> None:
        """Keep the newest sensor reading."""
        self._latest_reading = reading

    def on_message(self, message: Message, now: float) -> None:
        """Keep the newest message by stamp (delivery order may differ).

        Units: now [s]
        """
        if (
            self._latest_message is None
            or message.stamp > self._latest_message.stamp
        ):
            self._latest_message = message

    @property
    def latest_message(self) -> Optional[Message]:
        """Newest message received so far, if any."""
        return self._latest_message

    def estimate(self, now: float) -> FusedEstimate:
        """Intersection of propagated message and raw sensor bands.

        Units: now [s]
        """
        bands = []
        if self._latest_message is not None:
            bands.append(
                self._reach.band_from_state(
                    self._latest_message.state, self._latest_message.stamp, now
                )
            )
        if self._latest_reading is not None:
            reading = self._latest_reading
            p_band = self._bounds.position_band(reading.position)
            v_band = self._bounds.velocity_band(reading.velocity).intersect(
                _physical_velocity_band(self._reach.limits)
            )
            if v_band.is_empty:
                v = self._reach.limits.clip_velocity(reading.velocity)
                v_band = Interval.point(v)
            bands.append(
                self._reach.band_from_intervals(p_band, v_band, reading.time, now)
            )
        if not bands:
            raise FilterError(
                "no information yet: neither a sensor reading nor a message "
                "has been ingested"
            )
        fused = bands[0]
        for band in bands[1:]:
            fused = ReachBand(
                time=fused.time,
                position=intersect_or_fallback(fused.position, band.position),
                velocity=intersect_or_fallback(fused.velocity, band.velocity),
            )
        accel = 0.0
        accel_time = float("-inf")
        if self._latest_reading is not None:
            accel = self._latest_reading.acceleration
            accel_time = self._latest_reading.time
        if (
            self._latest_message is not None
            and self._latest_message.stamp > accel_time
        ):
            accel = self._latest_message.state.acceleration
        nominal = VehicleState(
            position=fused.position.midpoint,
            velocity=fused.velocity.midpoint,
            acceleration=accel,
        )
        message_age = (
            None
            if self._latest_message is None
            else float(now) - self._latest_message.stamp
        )
        return FusedEstimate(
            time=float(now),
            position=fused.position,
            velocity=fused.velocity,
            nominal=nominal,
            message_age=message_age,
        )
