"""Interval reachability analysis for delayed messages.

Implements Eq. (2) of the paper: given the exact state ``(p(t_k), v(t_k))``
carried by the latest message and the physical limits of the sender, the
position at the current time ``t`` lies in ``[p_min(t), p_max(t)]`` where
the maximum assumes full acceleration ``a_max`` until the velocity cap
``v_max`` and cruising afterwards:

.. math::

    p_{max}(t) = \\begin{cases}
      p(t_k) + v(t_k)\\,\\Delta + \\tfrac12 a_{max} \\Delta^2,
        & v(t_k) + a_{max}\\Delta \\le v_{max};\\\\
      p(t_k) + v_{max}\\,\\Delta - \\frac{(v_{max} - v(t_k))^2}{2 a_{max}},
        & \\text{otherwise},
    \\end{cases}

with ``Δ = t - t_k``; ``p_min`` mirrors it with ``a_min``/``v_min``.
The second branch is the closed form of "accelerate to the cap, then
cruise": total distance at the cap minus the distance lost while still
accelerating.  These bounds are *sound* for the saturating
:class:`~repro.dynamics.vehicle.VehicleModel` — a property the test suite
verifies exhaustively — which is what makes the runtime monitor's unsafe
set an over-approximation and hence the safety theorem valid.

The analyzer also propagates whole *intervals* of initial conditions,
needed when the starting knowledge is itself a band (e.g. a noisy sensor
reading): the extremal trajectories start from the extremal corners.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ConfigurationError
from repro.utils.intervals import Interval

__all__ = ["ReachBand", "ReachabilityAnalyzer"]


@dataclass(frozen=True, slots=True)
class ReachBand:
    """Reachable position/velocity intervals of a vehicle at one time."""

    time: float
    position: Interval
    velocity: Interval

    def __str__(self) -> str:
        return (
            f"reach[t={self.time:.3f}s p in {self.position} "
            f"v in {self.velocity}]"
        )


class ReachabilityAnalyzer:
    """Eq. (2)-style forward reachability under velocity/acceleration limits.

    Parameters
    ----------
    limits:
        Physical limits of the *observed* vehicle.  Using limits narrower
        than the vehicle's true capabilities produces the paper's
        *aggressive* (under-approximating) estimate; the monitor must be
        given the true physical limits for soundness.
    """

    def __init__(self, limits: VehicleLimits) -> None:
        self._limits = limits

    @property
    def limits(self) -> VehicleLimits:
        """The limits assumed for the observed vehicle."""
        return self._limits

    # ------------------------------------------------------------------
    # Scalar extremal trajectories
    # ------------------------------------------------------------------
    def max_position(self, position: float, velocity: float, elapsed: float) -> float:
        """Upper position bound after ``elapsed`` seconds (Eq. (2)).

        Units: position [m], velocity [m/s], elapsed [s] -> [m]
        """
        return self._extremal_position(
            position, velocity, elapsed, self._limits.a_max, self._limits.v_max
        )

    def min_position(self, position: float, velocity: float, elapsed: float) -> float:
        """Lower position bound after ``elapsed`` seconds (mirror of Eq. (2)).

        Units: position [m], velocity [m/s], elapsed [s] -> [m]
        """
        return self._extremal_position(
            position, velocity, elapsed, self._limits.a_min, self._limits.v_min
        )

    def max_velocity(self, velocity: float, elapsed: float) -> float:
        """Upper velocity bound after ``elapsed`` seconds.

        Units: velocity [m/s], elapsed [s] -> [m/s]
        """
        self._check_elapsed(elapsed)
        v0 = self._limits.clip_velocity(velocity)
        return min(v0 + self._limits.a_max * elapsed, self._limits.v_max)

    def min_velocity(self, velocity: float, elapsed: float) -> float:
        """Lower velocity bound after ``elapsed`` seconds.

        Units: velocity [m/s], elapsed [s] -> [m/s]
        """
        self._check_elapsed(elapsed)
        v0 = self._limits.clip_velocity(velocity)
        return max(v0 + self._limits.a_min * elapsed, self._limits.v_min)

    def _extremal_position(
        self,
        position: float,
        velocity: float,
        elapsed: float,
        accel: float,
        v_cap: float,
    ) -> float:
        """Position after driving the extremal input toward ``v_cap``.

        ``accel`` and ``v_cap`` are either both the "max" pair or both the
        "min" pair; the algebra is symmetric.
        """
        self._check_elapsed(elapsed)
        v0 = self._limits.clip_velocity(velocity)
        if elapsed == 0.0:
            return position
        v_end = v0 + accel * elapsed
        toward_cap = (accel > 0.0 and v_end > v_cap) or (
            accel < 0.0 and v_end < v_cap
        )
        if accel == 0.0 or not toward_cap:
            return position + v0 * elapsed + 0.5 * accel * elapsed * elapsed
        # Saturating branch of Eq. (2): cruise distance at the cap minus the
        # distance deficit accumulated while still ramping up (or down).
        return position + v_cap * elapsed - (v_cap - v0) ** 2 / (2.0 * accel)

    # ------------------------------------------------------------------
    # Bands
    # ------------------------------------------------------------------
    def band_from_state(self, state: VehicleState, stamp: float, now: float) -> ReachBand:
        """Reachable band at ``now`` from an exact state stamped ``stamp``.

        Units: stamp [s], now [s]
        """
        elapsed = self._elapsed(stamp, now)
        return ReachBand(
            time=float(now),
            position=Interval(
                self.min_position(state.position, state.velocity, elapsed),
                self.max_position(state.position, state.velocity, elapsed),
            ),
            velocity=Interval(
                self.min_velocity(state.velocity, elapsed),
                self.max_velocity(state.velocity, elapsed),
            ),
        )

    def band_from_intervals(
        self,
        position: Interval,
        velocity: Interval,
        stamp: float,
        now: float,
    ) -> ReachBand:
        """Reachable band from *interval* initial knowledge.

        Units: position [m], velocity [m/s], stamp [s], now [s]

        Monotonicity of the extremal trajectories in initial position and
        velocity means the extremes come from the extreme corners of the
        initial box, so four scalar evaluations suffice.
        """
        if position.is_empty or velocity.is_empty:
            raise ConfigurationError(
                "cannot propagate an empty initial band"
            )
        elapsed = self._elapsed(stamp, now)
        p_hi = self.max_position(position.hi, velocity.hi, elapsed)
        p_lo = self.min_position(position.lo, velocity.lo, elapsed)
        return ReachBand(
            time=float(now),
            position=Interval(p_lo, p_hi),
            velocity=Interval(
                self.min_velocity(velocity.lo, elapsed),
                self.max_velocity(velocity.hi, elapsed),
            ),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _elapsed(stamp: float, now: float) -> float:
        elapsed = float(now) - float(stamp)
        if elapsed < -1e-12:
            raise ConfigurationError(
                f"reachability queried before the stamp: now={now} < stamp={stamp}"
            )
        return max(elapsed, 0.0)

    @staticmethod
    def _check_elapsed(elapsed: float) -> None:
        if elapsed < 0.0:
            raise ConfigurationError(
                f"elapsed time must be >= 0, got {elapsed}"
            )
