"""Kalman filtering with message replay.

Section III-B of the paper extends the classical filter: "in each
transmission period the extrapolated state and covariance are stored in
the memory.  Then, every time a message recording the states of ``C_i`` at
time ``t_k`` arrives, they are restored, and the filter renews the
estimations from ``t_k`` to the current timestamp based on the message."

:class:`ReplayKalmanFilter` implements that design:

* at every sensing instant it stores the *prediction* checkpoint
  ``(x_hat(t, t - dt_s), P(t, t - dt_s))`` and the sensor reading itself;
* when a (possibly delayed) message stamped ``t_k`` arrives, the filter
  rewinds to ``t_k``, replaces the estimate there with the message's exact
  state (zero covariance — message content is accurate in the paper's
  model), and replays every logged sensor update between ``t_k`` and the
  present, leaving a strictly better posterior.

Messages older than an already-replayed message are ignored (they carry no
new information and would only discard the better restart point).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.comm.message import Message
from repro.errors import FilterError, ReplayError
from repro.filtering.kalman import KalmanFilter, KalmanState
from repro.sensing.sensor import SensorReading

__all__ = ["ReplayKalmanFilter"]

#: Timestamps are keyed at microsecond resolution; simulation times are
#: sums of ``dt_c`` increments so this comfortably absorbs float error.
_KEY_SCALE = 1e6


def _key(time: float) -> int:
    return int(round(time * _KEY_SCALE))


class ReplayKalmanFilter:
    """A Kalman filter that can rewind and replay on message arrival.

    Parameters
    ----------
    kalman:
        The underlying constant-matrix filter.
    history_horizon:
        How far back (seconds) checkpoints and sensor readings are kept.
        Messages older than this cannot be replayed and are ignored; the
        horizon bounds memory for long simulations.
    """

    def __init__(self, kalman: KalmanFilter, history_horizon: float = 30.0) -> None:
        if history_horizon <= 0.0:
            raise FilterError(
                f"history_horizon must be > 0, got {history_horizon}"
            )
        self._kalman = kalman
        self._horizon = float(history_horizon)
        self._posterior: Optional[KalmanState] = None
        #: acceleration knowledge used to extrapolate past the posterior
        self._current_accel: float = 0.0
        self._checkpoints: Dict[int, KalmanState] = {}
        self._reading_times: List[float] = []
        self._readings: Dict[int, SensorReading] = {}
        self._last_replayed_stamp: float = float("-inf")
        self._replay_count = 0
        self._last_replay_depth = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def kalman(self) -> KalmanFilter:
        """The wrapped filter."""
        return self._kalman

    @property
    def posterior(self) -> Optional[KalmanState]:
        """Latest posterior, or ``None`` before initialisation."""
        return self._posterior

    @property
    def is_initialized(self) -> bool:
        """Whether at least one sensor reading has been folded in."""
        return self._posterior is not None

    @property
    def replay_count(self) -> int:
        """How many message replays have been performed."""
        return self._replay_count

    @property
    def last_replay_depth(self) -> int:
        """Sensor readings re-applied by the most recent replay (0 if none)."""
        return self._last_replay_depth

    @property
    def current_accel(self) -> float:
        """The acceleration currently used for extrapolation."""
        return self._current_accel

    def checkpoint_at(self, time: float) -> Optional[KalmanState]:
        """The stored prediction checkpoint at ``time``, if any.

        Units: time [s]
        """
        return self._checkpoints.get(_key(time))

    # ------------------------------------------------------------------
    # Sensor path
    # ------------------------------------------------------------------
    def on_sensor_reading(self, reading: SensorReading) -> KalmanState:
        """Fold in one sensor reading at its measurement time.

        The first reading initialises the filter with the measurement
        itself and the measurement covariance as prior.  Subsequent
        readings run predict (over the actual gap, using the previous
        measured acceleration) followed by update.

        Returns the new posterior.
        """
        if self._posterior is None:
            bounds = self._kalman.bounds
            self._posterior = KalmanFilter.initial_state(
                time=reading.time,
                position=reading.position,
                velocity=reading.velocity,
                position_var=bounds.position_variance,
                velocity_var=bounds.velocity_variance,
            )
        else:
            gap = reading.time - self._posterior.time
            if gap <= 0.0:
                raise FilterError(
                    f"sensor readings must advance in time: got t={reading.time}"
                    f" after t={self._posterior.time}"
                )
            predicted = self._kalman.extrapolate(
                self._posterior, self._current_accel, gap
            )
            self._store_checkpoint(predicted)
            self._posterior = self._kalman.update(
                predicted, reading.position, reading.velocity
            )
        self._current_accel = reading.acceleration
        self._log_reading(reading)
        self._prune(reading.time)
        return self._posterior

    # ------------------------------------------------------------------
    # Message path (the replay)
    # ------------------------------------------------------------------
    def on_message(self, message: Message, now: float) -> Optional[KalmanState]:
        """Rewind to the message stamp and replay logged sensor updates.

        Units: now [s]

        Parameters
        ----------
        message:
            The delivered message; its stamp may lag ``now`` by the
            channel delay.
        now:
            Current simulation time (delivery time).

        Returns
        -------
        KalmanState or None
            The renewed posterior, or ``None`` when the message was
            ignored (older than an already-replayed message, or beyond
            the history horizon).
        """
        stamp = message.stamp
        if stamp <= self._last_replayed_stamp:
            return None
        if self._posterior is not None and (
            self._posterior.time - stamp > self._horizon
        ):
            return None
        if stamp > float(now) + 1e-9:
            raise ReplayError(
                f"message from the future: stamp={stamp} > now={now}"
            )

        exact = self._kalman.exact_state(
            stamp, message.state.position, message.state.velocity
        )
        state = exact
        accel = message.state.acceleration

        # Replay every logged reading strictly after the stamp, in order.
        idx = bisect.bisect_right(self._reading_times, stamp + 1e-12)
        self._last_replay_depth = len(self._reading_times) - idx
        for t in self._reading_times[idx:]:
            reading = self._readings[_key(t)]
            predicted = self._kalman.extrapolate(state, accel, t - state.time)
            self._store_checkpoint(predicted)
            state = self._kalman.update(
                predicted, reading.position, reading.velocity
            )
            accel = reading.acceleration

        self._posterior = state
        self._current_accel = accel
        self._last_replayed_stamp = stamp
        self._replay_count += 1
        return self._posterior

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate_at(self, now: float) -> KalmanState:
        """Extrapolate the posterior to ``now`` (between sensor samples).

        Units: now [s]

        Raises
        ------
        FilterError
            If the filter has no posterior yet or ``now`` precedes it.
        """
        if self._posterior is None:
            raise FilterError("filter not initialised: no sensor reading yet")
        gap = float(now) - self._posterior.time
        if gap < -1e-9:
            raise FilterError(
                f"cannot estimate before the posterior: now={now} < "
                f"t={self._posterior.time}"
            )
        return self._kalman.extrapolate(
            self._posterior, self._current_accel, max(gap, 0.0)
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _store_checkpoint(self, predicted: KalmanState) -> None:
        self._checkpoints[_key(predicted.time)] = predicted

    def _log_reading(self, reading: SensorReading) -> None:
        key = _key(reading.time)
        if key not in self._readings:
            bisect.insort(self._reading_times, reading.time)
        self._readings[key] = reading

    def _prune(self, now: float) -> None:
        cutoff = now - self._horizon
        while self._reading_times and self._reading_times[0] < cutoff:
            t = self._reading_times.pop(0)
            self._readings.pop(_key(t), None)
        stale = [k for k in self._checkpoints if k < _key(cutoff)]
        for k in stale:
            del self._checkpoints[k]
