"""Fusion of reachability bands and Kalman confidence bands.

The paper's information filter joins its two estimates by interval
intersection: if reachability analysis places a vehicle's position in
``[p_1, p_2]`` and the Kalman filter in ``[p_3, p_4]``, the joined
estimate is ``[max(p_1, p_3), min(p_2, p_4)]`` (Section III-B).

The reachability band is a *guaranteed* over-approximation; the Kalman
band (``mean ± n·sigma``) is only probabilistic.  When the two are
disjoint — which can only happen if the Kalman band is wrong — the fusion
falls back to the guaranteed band, so downstream safety reasoning never
consumes an empty or unsound interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dynamics.state import VehicleState
from repro.errors import FilterError
from repro.filtering.reachability import ReachBand
from repro.utils.intervals import Interval

__all__ = ["FusedEstimate", "fuse_bands", "intersect_or_fallback"]


@dataclass(frozen=True, slots=True)
class FusedEstimate:
    """The information available about one remote vehicle at one instant.

    Attributes
    ----------
    time:
        The instant the estimate refers to.
    position, velocity:
        Intervals believed to contain the vehicle's true position and
        velocity.  For the monitor's safety reasoning these must be sound
        over-approximations (they are, up to the Kalman band confidence).
    nominal:
        A point estimate (Kalman mean when available, band midpoint
        otherwise) used by the aggressive unsafe-set estimation and as the
        NN planner's feature input.
    message_age:
        Seconds since the stamp of the newest received message, or
        ``None`` when no message has ever arrived.
    """

    time: float
    position: Interval
    velocity: Interval
    nominal: VehicleState
    message_age: Optional[float] = None

    def __post_init__(self) -> None:
        if self.position.is_empty or self.velocity.is_empty:
            raise FilterError(
                "FusedEstimate requires non-empty position/velocity bands"
            )

    @property
    def position_uncertainty(self) -> float:
        """Width of the position band."""
        return self.position.width

    @property
    def velocity_uncertainty(self) -> float:
        """Width of the velocity band."""
        return self.velocity.width

    def __str__(self) -> str:
        age = "-" if self.message_age is None else f"{self.message_age:.2f}s"
        return (
            f"est[t={self.time:.3f}s p in {self.position} v in "
            f"{self.velocity} msg_age={age}]"
        )


def intersect_or_fallback(sound: Interval, refining: Interval) -> Interval:
    """Intersect a guaranteed band with a refining band.

    Returns the intersection when non-empty, otherwise the guaranteed
    band.  ``sound`` must be non-empty.
    """
    if sound.is_empty:
        raise FilterError("the guaranteed band must be non-empty")
    joined = sound.intersect(refining)
    if joined.is_empty:
        return sound
    return joined


def fuse_bands(
    reach: ReachBand,
    kf_position: Interval,
    kf_velocity: Interval,
) -> ReachBand:
    """Join a reachability band with Kalman confidence bands.

    Implements the paper's max/min join with the guaranteed-band fallback
    described in the module docstring.
    """
    return ReachBand(
        time=reach.time,
        position=intersect_or_fallback(reach.position, kf_position),
        velocity=intersect_or_fallback(reach.velocity, kf_velocity),
    )
