"""Information filter: Kalman filtering, message replay, reachability, fusion."""

from repro.filtering.kalman import KalmanFilter, KalmanState
from repro.filtering.reachability import ReachBand, ReachabilityAnalyzer
from repro.filtering.replay import ReplayKalmanFilter
from repro.filtering.fusion import FusedEstimate, fuse_bands
from repro.filtering.info_filter import (
    EstimateProvider,
    InformationFilter,
    RawEstimator,
)

__all__ = [
    "KalmanFilter",
    "KalmanState",
    "ReachBand",
    "ReachabilityAnalyzer",
    "ReplayKalmanFilter",
    "FusedEstimate",
    "fuse_bands",
    "InformationFilter",
    "RawEstimator",
    "EstimateProvider",
]
