"""Kalman filter over noisy ``(p, v)`` measurements.

Implements the filter of Section III-B of the paper for the 1-D
double-integrator vehicle, with exactly the matrices printed there:

.. math::

    F = \\begin{bmatrix}1 & \\Delta t_s\\\\ 0 & 1\\end{bmatrix},\\quad
    G = \\begin{bmatrix}0.5\\,\\Delta t_s^2\\\\ \\Delta t_s\\end{bmatrix},\\quad
    Q = \\begin{bmatrix}0.25\\,\\Delta t_s^4 & 0.5\\,\\Delta t_s^3\\\\
                        0.5\\,\\Delta t_s^3 & \\Delta t_s^2\\end{bmatrix}
        \\frac{\\delta_a^2}{3},\\quad
    R = \\begin{bmatrix}\\delta_p^2/3 & 0\\\\ 0 & \\delta_v^2/3\\end{bmatrix}

where the ``delta^2/3`` terms are the variances of the paper's uniform
measurement errors.  The state is the full ``[p, v]`` vector (the
measurement matrix is the identity), the control input is the *measured*
acceleration ``a_s``, and process noise ``Q`` accounts for its
uncertainty.

The update uses the Joseph-form covariance update printed in the paper,
which stays symmetric positive-semidefinite under roundoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dynamics.state import VehicleState
from repro.errors import FilterError
from repro.sensing.noise import NoiseBounds
from repro.utils.intervals import Interval
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["KalmanState", "KalmanFilter", "symmetrize_psd"]

_EYE2 = np.eye(2)


def symmetrize_psd(covariance: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Project a near-symmetric ``2x2`` covariance onto the PSD cone.

    Floating-point products like ``(I-K) P (I-K)' + K R K'`` are
    symmetric in exact arithmetic but drift by a few ulps per update;
    over thousands of replayed filter steps the drift compounds and can
    push an eigenvalue (or a diagonal variance) slightly negative, after
    which ``sqrt`` of a variance produces NaN and the whole estimate
    chain collapses.  This guard

    1. averages the matrix with its transpose (exact symmetry),
    2. clamps both variances to at least ``floor`` (>= 0), and
    3. clamps the covariance term to ``|p01| <= sqrt(p00 * p11)``, the
       Cauchy-Schwarz bound, which for a symmetric ``2x2`` matrix with
       non-negative diagonal is exactly PSD.

    A matrix that already satisfies all three comes back unchanged up to
    the symmetrization average.

    Shapes: covariance [2, 2] -> [2, 2]
    """
    p = np.asarray(covariance, dtype=float)
    p = 0.5 * (p + p.T)
    p00 = max(float(p[0, 0]), floor)
    p11 = max(float(p[1, 1]), floor)
    cross = np.sqrt(p00 * p11)
    p01 = float(np.clip(p[0, 1], -cross, cross))
    return np.array([[p00, p01], [p01, p11]])


@dataclass(frozen=True)
class KalmanState:
    """An estimate/covariance pair ``(x_hat, P)`` at a given time.

    ``x_hat`` is the ``2x1`` ``[p, v]`` vector; ``P`` the ``2x2``
    covariance.  Instances are value objects: arrays are copied on
    construction and never mutated, so they are safe to checkpoint for
    message replay.
    """

    time: float
    x_hat: np.ndarray
    covariance: np.ndarray

    def __post_init__(self) -> None:
        x = np.array(self.x_hat, dtype=float).reshape(2, 1)
        p = np.array(self.covariance, dtype=float).reshape(2, 2)
        if not np.all(np.isfinite(x)):
            raise FilterError(f"non-finite state estimate: {x.ravel()}")
        if not np.all(np.isfinite(p)):
            raise FilterError(f"non-finite covariance: {p.ravel()}")
        object.__setattr__(self, "x_hat", x)
        object.__setattr__(self, "covariance", p)

    @property
    def position(self) -> float:
        """Estimated position."""
        return float(self.x_hat[0, 0])

    @property
    def velocity(self) -> float:
        """Estimated velocity."""
        return float(self.x_hat[1, 0])

    @property
    def position_std(self) -> float:
        """Standard deviation of the position estimate."""
        return float(np.sqrt(max(self.covariance[0, 0], 0.0)))

    @property
    def velocity_std(self) -> float:
        """Standard deviation of the velocity estimate."""
        return float(np.sqrt(max(self.covariance[1, 1], 0.0)))

    def position_band(self, n_sigma: float = 3.0) -> Interval:
        """``mean ± n_sigma * std`` interval for the position."""
        return Interval.around(self.position, n_sigma * self.position_std)

    def velocity_band(self, n_sigma: float = 3.0) -> Interval:
        """``mean ± n_sigma * std`` interval for the velocity."""
        return Interval.around(self.velocity, n_sigma * self.velocity_std)

    def as_vehicle_state(self, acceleration: float = 0.0) -> VehicleState:
        """The mean estimate repackaged as a :class:`VehicleState`.

        Units: acceleration [m/s^2]
        """
        return VehicleState(
            position=self.position,
            velocity=self.velocity,
            acceleration=acceleration,
        )


class KalmanFilter:
    """The paper's constant-matrix Kalman filter for one remote vehicle.

    The filter is *functional*: :meth:`predict` and :meth:`update` take
    and return :class:`KalmanState` values instead of mutating internal
    state.  The message-replay wrapper exploits this to re-run stretches
    of the filter from a restored checkpoint.

    Parameters
    ----------
    dt:
        Filter step ``dt_s`` (the sensing period).
    bounds:
        Sensor noise bounds; fix the measurement covariance ``R`` and the
        process noise ``Q`` via the uniform-error variances.
    """

    def __init__(self, dt: float, bounds: NoiseBounds) -> None:
        self._dt = check_positive(dt, "dt")
        self._bounds = bounds
        dt2 = dt * dt
        self._f = np.array([[1.0, dt], [0.0, 1.0]])
        self._g = np.array([[0.5 * dt2], [dt]])
        accel_var = bounds.acceleration_variance
        self._q = (
            np.array(
                [
                    [0.25 * dt2 * dt2, 0.5 * dt2 * dt],
                    [0.5 * dt2 * dt, dt2],
                ]
            )
            * accel_var
        )
        self._r = np.diag([bounds.position_variance, bounds.velocity_variance])

    # ------------------------------------------------------------------
    # Matrix accessors (used by tests to check the paper's equations)
    # ------------------------------------------------------------------
    @property
    def dt(self) -> float:
        """Filter step ``dt_s``."""
        return self._dt

    @property
    def f_matrix(self) -> np.ndarray:
        """State-transition matrix ``F`` (copy).

        Shapes: -> [2, 2]
        """
        return self._f.copy()

    @property
    def g_matrix(self) -> np.ndarray:
        """Control matrix ``G`` (copy).

        Shapes: -> [2, 1]
        """
        return self._g.copy()

    @property
    def q_matrix(self) -> np.ndarray:
        """Process-noise covariance ``Q`` (copy).

        Shapes: -> [2, 2]
        """
        return self._q.copy()

    @property
    def r_matrix(self) -> np.ndarray:
        """Measurement-noise covariance ``R`` (copy).

        Shapes: -> [2, 2]
        """
        return self._r.copy()

    @property
    def bounds(self) -> NoiseBounds:
        """The sensor noise bounds the filter was built for."""
        return self._bounds

    # ------------------------------------------------------------------
    # Filter steps
    # ------------------------------------------------------------------
    @staticmethod
    def initial_state(
        time: float,
        position: float,
        velocity: float,
        position_var: float,
        velocity_var: float,
    ) -> KalmanState:
        """Build the prior ``(x_hat(0,0), P(0,0))``.

        Units: time [s], position [m], velocity [m/s]
        """
        check_nonnegative(position_var, "position_var")
        check_nonnegative(velocity_var, "velocity_var")
        return KalmanState(
            time=float(time),
            x_hat=np.array([[position], [velocity]]),
            covariance=np.diag([position_var, velocity_var]),
        )

    def predict(self, state: KalmanState, accel_measured: float) -> KalmanState:
        """Extrapolate one step: ``x <- F x + G a_s``, ``P <- F P F' + Q``."""
        x_pred = self._f @ state.x_hat + self._g * float(accel_measured)
        p_pred = self._f @ state.covariance @ self._f.T + self._q
        return KalmanState(
            time=state.time + self._dt, x_hat=x_pred, covariance=p_pred
        )

    def update(
        self,
        predicted: KalmanState,
        position_measured: float,
        velocity_measured: float,
    ) -> KalmanState:
        """Fold in a ``(p_s, v_s)`` measurement at the predicted time.

        Uses the paper's gain ``K = P (P + R)^{-1}`` (the measurement
        matrix is the identity) and the Joseph-form covariance update.
        """
        z = np.array([[float(position_measured)], [float(velocity_measured)]])
        if not np.any(self._r):
            # Noiseless sensing (R = 0): the measurement is exact and the
            # posterior is the measurement with zero uncertainty.  This
            # keeps the perfect-communication test setups working.
            return KalmanState(
                time=predicted.time, x_hat=z, covariance=np.zeros((2, 2))
            )
        p_prior = predicted.covariance
        innovation_cov = p_prior + self._r
        try:
            gain = p_prior @ np.linalg.inv(innovation_cov)
        except np.linalg.LinAlgError as exc:
            raise FilterError(
                "singular innovation covariance; use a nonzero noise bound "
                "or a nonzero prior variance"
            ) from exc
        x_new = predicted.x_hat + gain @ (z - predicted.x_hat)
        i_minus_k = _EYE2 - gain
        p_new = i_minus_k @ p_prior @ i_minus_k.T + gain @ self._r @ gain.T
        # Joseph form is symmetric PSD in exact arithmetic only; project
        # out the roundoff so long replayed chains cannot accumulate an
        # indefinite covariance (negative variance -> NaN bands).
        p_new = symmetrize_psd(p_new)
        return KalmanState(time=predicted.time, x_hat=x_new, covariance=p_new)

    def extrapolate(
        self, state: KalmanState, accel_measured: float, dt: float
    ) -> KalmanState:
        """Predict over an arbitrary horizon ``dt`` (not just ``dt_s``).

        Units: dt [s]

        Used for (a) estimates between sensor samples — the runtime
        monitor runs every control step ``dt_c`` which is finer than the
        sensing period — and (b) message replay when the message stamp is
        not aligned with the sensing schedule.  Matrices ``F``, ``G`` and
        ``Q`` are re-derived for the requested horizon.
        """
        dt = float(dt)
        if dt < 0.0:
            raise FilterError(f"extrapolation horizon must be >= 0, got {dt}")
        if dt == 0.0:
            return state
        f = np.array([[1.0, dt], [0.0, 1.0]])
        g = np.array([[0.5 * dt * dt], [dt]])
        q = (
            np.array(
                [
                    [0.25 * dt**4, 0.5 * dt**3],
                    [0.5 * dt**3, dt * dt],
                ]
            )
            * self._bounds.acceleration_variance
        )
        x_pred = f @ state.x_hat + g * float(accel_measured)
        p_pred = f @ state.covariance @ f.T + q
        return KalmanState(time=state.time + dt, x_hat=x_pred, covariance=p_pred)

    def exact_state(
        self, time: float, position: float, velocity: float
    ) -> KalmanState:
        """A zero-covariance state from exact (message) values.

        Units: time [s], position [m], velocity [m/s]

        Message content is accurate in the paper's model, so replay
        restarts the filter from the message state with zero uncertainty.
        """
        return KalmanState(
            time=float(time),
            x_hat=np.array([[position], [velocity]]),
            covariance=np.zeros((2, 2)),
        )
