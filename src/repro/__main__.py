"""Command-line dispatcher: ``python -m repro <experiment> [args]``.

A thin front door over the experiment harnesses so the whole
reproduction is reachable from one command:

.. code-block:: console

    $ python -m repro table1 --sims 300
    $ python -m repro table2
    $ python -m repro figure5 --sims 100
    $ python -m repro figure6 --trajectories 200
    $ python -m repro ablation --style conservative
    $ python -m repro sensitivity
    $ python -m repro all          # everything, in paper order
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.experiments import ablation, figure5, figure6, sensitivity
from repro.experiments import table1, table2

_COMMANDS: Dict[str, Callable] = {
    "table1": table1.main,
    "table2": table2.main,
    "figure5": figure5.main,
    "figure6": figure6.main,
    "ablation": ablation.main,
    "sensitivity": sensitivity.main,
}


def main(argv: List[str] | None = None) -> int:
    """Dispatch to an experiment harness; 0 on success."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        print("commands:", ", ".join([*_COMMANDS, "all"]))
        return 0
    command, rest = argv[0], argv[1:]
    if command == "all":
        for name in ("table1", "table2", "figure5", "figure6", "ablation"):
            print(f"\n===== {name} =====")
            _COMMANDS[name](rest)
        return 0
    if command not in _COMMANDS:
        print(f"unknown command {command!r}; expected one of "
              f"{', '.join([*_COMMANDS, 'all'])}")
        return 2
    _COMMANDS[command](rest)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
