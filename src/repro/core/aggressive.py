"""Configuration of the aggressive unsafe-set estimation (Section III-C).

The aggressive estimation replaces the physical limits in the passing-
window computation by small buffers around the observed behaviour.  The
buffers are "user-defined" in the paper; this dataclass carries them plus
the on/off switch that distinguishes the *ultimate* compound planner
(aggressive estimation on) from the *basic* one (off — the NN planner
sees the same conservative window as the monitor).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_nonnegative

__all__ = ["AggressiveConfig"]


@dataclass(frozen=True, slots=True)
class AggressiveConfig:
    """Buffers of Eq. (8) and the enable switch.

    Attributes
    ----------
    enabled:
        Whether the NN planner is fed the aggressive (reduced) unsafe
        set.  The runtime monitor always keeps the conservative set
        regardless.
    a_buf:
        Acceleration buffer around the observed acceleration, m/s².
    v_buf:
        Velocity buffer around the observed velocity, m/s.
    """

    enabled: bool = True
    a_buf: float = 0.5
    v_buf: float = 1.0

    def __post_init__(self) -> None:
        check_nonnegative(self.a_buf, "a_buf")
        check_nonnegative(self.v_buf, "v_buf")

    @classmethod
    def disabled(cls) -> "AggressiveConfig":
        """The basic compound planner's configuration."""
        return cls(enabled=False)
