"""The runtime monitor (Section III-C).

Every control step the monitor evaluates the safety model's predicates on
the fused estimates and decides which planner controls the ego:

* in the **boundary safe set** — the state is one worst-case step from
  the unsafe set — the emergency planner takes over (the "last line of
  defense");
* in the estimated **unsafe set** itself — which a correct compound
  planner never reaches from safe initial states, but which the ego's
  *projected* occupancy window can drift into while crossing the area —
  the emergency planner also takes over, whose escape branch clears the
  area at full throttle;
* otherwise the embedded NN-based planner keeps control.

The monitor records per-run counters from which the experiments derive
the paper's *emergency frequency* column (the percentage of control steps
commanded by the emergency planner).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.unsafe_set import SafetyModel
from repro.planners.base import PlanningContext

__all__ = ["MonitorDecision", "RuntimeMonitor"]


@dataclass(frozen=True, slots=True)
class MonitorDecision:
    """Outcome of one monitor evaluation.

    Attributes
    ----------
    use_emergency:
        Whether the emergency planner must control this step.
    in_boundary:
        Boundary-safe-set membership at this step.
    in_unsafe:
        Estimated-unsafe-set membership at this step (should stay False
        for a correctly configured compound planner outside the crossing
        corner case described in the module docstring).
    """

    use_emergency: bool
    in_boundary: bool
    in_unsafe: bool


class RuntimeMonitor:
    """Selects between the NN-based and the emergency planner each step."""

    def __init__(self, safety_model: SafetyModel) -> None:
        self._model = safety_model
        self._decisions = 0
        self._emergency_decisions = 0
        self._unsafe_decisions = 0

    @property
    def safety_model(self) -> SafetyModel:
        """The scenario safety model consulted each step."""
        return self._model

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def evaluate(self, context: PlanningContext) -> MonitorDecision:
        """Evaluate both predicates and record the decision."""
        in_boundary = self._model.in_boundary_safe_set(
            context.time, context.ego, context.estimates
        )
        in_unsafe = self._model.in_estimated_unsafe_set(
            context.time, context.ego, context.estimates
        )
        decision = MonitorDecision(
            use_emergency=in_boundary or in_unsafe,
            in_boundary=in_boundary,
            in_unsafe=in_unsafe,
        )
        self._decisions += 1
        if decision.use_emergency:
            self._emergency_decisions += 1
        if in_unsafe:
            self._unsafe_decisions += 1
        return decision

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> int:
        """Total monitor evaluations since the last reset."""
        return self._decisions

    @property
    def emergency_decisions(self) -> int:
        """How many evaluations selected the emergency planner."""
        return self._emergency_decisions

    @property
    def unsafe_decisions(self) -> int:
        """How many evaluations found the estimated unsafe set entered."""
        return self._unsafe_decisions

    @property
    def emergency_frequency(self) -> float:
        """Fraction of steps commanded by the emergency planner."""
        if self._decisions == 0:
            return 0.0
        return self._emergency_decisions / self._decisions

    def reset(self) -> None:
        """Clear the counters (called by the engine between simulations)."""
        self._decisions = 0
        self._emergency_decisions = 0
        self._unsafe_decisions = 0
