"""Offline safety certification of a scenario's monitor + emergency pair.

The framework's guarantee holds for *any* embedded planner only if the
scenario's safety model and emergency planner satisfy their contracts
(sound over-approximation, Eq. (4)).  For the scenarios shipped here
those are covered by the test suite; a user bringing a *new* scenario
needs the same evidence.  :func:`certify` packages it: it wraps a suite
of adversarial embedded planners — the ones most likely to break a
monitor — in the compound planner and sweeps them over seeded episodes
under the given communication setups, reporting every violation.

A clean certificate is strong evidence (not proof) that the scenario's
safety model and emergency planner uphold the framework's theorem; a
violation pinpoints a broken contract with the seed, planner, and comm
setup to reproduce it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.dynamics.vehicle import VehicleLimits
from repro.planners.base import Planner, PlanningContext
from repro.scenarios.base import Scenario
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import Outcome
from repro.sim.runner import BatchRunner, EstimatorKind

__all__ = [
    "AdversarialPlanner",
    "adversarial_suite",
    "Violation",
    "CertificationReport",
    "certify",
]


class AdversarialPlanner:
    """Named adversarial embedded planners used by the certifier."""

    def __init__(self, name: str, fn) -> None:
        self.name = name
        self._fn = fn

    def plan(self, context: PlanningContext) -> float:
        """Delegate to the wrapped adversarial law."""
        return self._fn(context)


def adversarial_suite(limits: VehicleLimits) -> List[AdversarialPlanner]:
    """The standard battery of monitor-breaking embedded planners.

    * ``full_throttle`` — maximum pressure on the boundary set;
    * ``full_brake`` — maximum pressure on liveness/committed handling;
    * ``oscillate`` — chattering between the extremes, stressing the
      one-step margins;
    * ``nan`` — numerically broken output, stressing sanitisation;
    * ``random_bang`` — state-hash-driven bang-bang, stressing
      everything at once (deterministic, so certificates reproduce).
    """
    flip = {"value": False}

    def oscillate(context: PlanningContext) -> float:
        flip["value"] = not flip["value"]
        return limits.a_max if flip["value"] else limits.a_min

    def random_bang(context: PlanningContext) -> float:
        h = hash(
            (round(context.time * 20), round(context.ego.position, 1))
        )
        return limits.a_max if h % 3 else limits.a_min

    return [
        AdversarialPlanner("full_throttle", lambda c: limits.a_max),
        AdversarialPlanner("full_brake", lambda c: limits.a_min),
        AdversarialPlanner("oscillate", oscillate),
        AdversarialPlanner("nan", lambda c: math.nan),
        AdversarialPlanner("random_bang", random_bang),
    ]


@dataclass(frozen=True)
class Violation:
    """One certification failure, with everything needed to reproduce it."""

    planner_name: str
    comm_index: int
    estimator_kind: EstimatorKind
    seed_index: int
    collision_time: float


@dataclass
class CertificationReport:
    """Outcome of one :func:`certify` sweep."""

    scenario_name: str
    episodes_run: int
    violations: List[Violation] = field(default_factory=list)
    #: Episodes per (planner, comm, estimator) cell.
    episodes_per_cell: int = 0

    @property
    def certified(self) -> bool:
        """Whether no violation was observed."""
        return not self.violations

    def render(self) -> str:
        """Human-readable certificate."""
        lines = [
            f"safety certification: {self.scenario_name}",
            f"episodes: {self.episodes_run} "
            f"({self.episodes_per_cell} per cell)",
        ]
        if self.certified:
            lines.append("result: CERTIFIED — no violation observed")
        else:
            lines.append(f"result: FAILED — {len(self.violations)} violations")
            for v in self.violations[:10]:
                lines.append(
                    f"  planner={v.planner_name} comm[{v.comm_index}] "
                    f"{v.estimator_kind.value} seed_index={v.seed_index} "
                    f"t={v.collision_time:.2f}s"
                )
        return "\n".join(lines)


def certify(
    scenario: Scenario,
    comm_setups: Sequence[CommSetup],
    n_runs: int = 20,
    seed: int = 0,
    max_time: float = 30.0,
    planners: Optional[Sequence[Planner]] = None,
) -> CertificationReport:
    """Sweep adversarial embedded planners over a scenario.

    Parameters
    ----------
    scenario:
        The scenario whose safety model + emergency planner are under
        test.
    comm_setups:
        Communication environments to certify under (include the worst
        you intend to deploy in).
    n_runs:
        Episodes per (planner, comm setup, estimator kind) cell.
    seed:
        Base seed; identical across cells for pinpointable repros.
    planners:
        Override the adversarial suite (each must expose ``plan`` and a
        ``name`` attribute).
    """
    suite: Sequence = (
        planners
        if planners is not None
        else adversarial_suite(scenario.vehicle_limits(0))
    )
    report = CertificationReport(
        scenario_name=type(scenario).__name__,
        episodes_run=0,
        episodes_per_cell=n_runs,
    )
    for comm_index, comm in enumerate(comm_setups):
        engine = SimulationEngine(
            scenario,
            comm,
            SimulationConfig(max_time=max_time, record_trajectories=False),
        )
        for kind in (EstimatorKind.RAW, EstimatorKind.FILTERED):
            runner = BatchRunner(engine, kind)
            for adversary in suite:
                compound = CompoundPlanner(
                    nn_planner=adversary,
                    emergency_planner=scenario.emergency_planner(),
                    monitor=RuntimeMonitor(scenario.safety_model()),
                    limits=scenario.vehicle_limits(0),
                )
                results = runner.run_batch(compound, n_runs, seed=seed)
                report.episodes_run += n_runs
                for index, result in enumerate(results):
                    if result.outcome is Outcome.COLLISION:
                        report.violations.append(
                            Violation(
                                planner_name=getattr(
                                    adversary, "name", "custom"
                                ),
                                comm_index=comm_index,
                                estimator_kind=kind,
                                seed_index=index,
                                collision_time=float(
                                    result.collision_time or -1.0
                                ),
                            )
                        )
    return report
