"""The paper's primary contribution: monitor, emergency switch, compound planner."""

from repro.core.unsafe_set import SafetyModel
from repro.core.monitor import MonitorDecision, RuntimeMonitor
from repro.core.aggressive import AggressiveConfig
from repro.core.compound import CompoundPlanner
from repro.core.verification import CertificationReport, certify

__all__ = [
    "SafetyModel",
    "RuntimeMonitor",
    "MonitorDecision",
    "AggressiveConfig",
    "CompoundPlanner",
    "certify",
    "CertificationReport",
]
