"""The compound planner ``kappa_c`` (Section III-A).

A :class:`CompoundPlanner` embeds any NN-based (or other) planner and
wraps it with the runtime monitor and the emergency planner:

* each step the monitor evaluates the boundary-safe-set / unsafe-set
  predicates on the fused estimates;
* when the monitor flags danger, the emergency planner commands the
  step — safety is guaranteed by the Eq. (4) property of that planner;
* otherwise the embedded planner commands the step, and its raw output
  is sanitised (NaN/inf rejected, clipped to the actuation limits), so a
  pathological network cannot break the safety argument.

The planner also exposes per-run telemetry (emergency step count, last
decision) that the experiment harness turns into the paper's "emergency
frequency" column.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.monitor import MonitorDecision, RuntimeMonitor
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import PlannerError
from repro.obs.observer import resolve_observer
from repro.planners.base import Planner, PlanningContext, clipped

__all__ = ["CompoundPlanner"]


class CompoundPlanner:
    """Monitor-guarded composition of an NN planner and an emergency planner.

    Parameters
    ----------
    nn_planner:
        The embedded planner (``kappa_n``); any object satisfying the
        :class:`~repro.planners.base.Planner` protocol.
    emergency_planner:
        The scenario's emergency planner (``kappa_e``); must satisfy the
        Eq. (4) invariant for the monitor's safety model.
    monitor:
        The runtime monitor, built on the scenario's conservative safety
        model.
    limits:
        Ego actuation limits used to sanitise commands.
    observer:
        Optional :class:`~repro.obs.observer.Observer`; records
        shield-switch events (engage/release with cause), per-step
        safety-margin and boundary-distance samples, and counters.
        Write-only: the decision logic never reads it.
    """

    def __init__(
        self,
        nn_planner: Planner,
        emergency_planner: Planner,
        monitor: RuntimeMonitor,
        limits: VehicleLimits,
        observer=None,
    ) -> None:
        self._nn = nn_planner
        self._emergency = emergency_planner
        self._monitor = monitor
        self._limits = limits
        self._obs = resolve_observer(observer)
        self._last_decision: Optional[MonitorDecision] = None
        self._embedded_failures = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def nn_planner(self) -> Planner:
        """The embedded NN-based planner."""
        return self._nn

    @property
    def emergency_planner(self) -> Planner:
        """The emergency planner."""
        return self._emergency

    @property
    def monitor(self) -> RuntimeMonitor:
        """The runtime monitor (carries the per-run counters)."""
        return self._monitor

    @property
    def last_decision(self) -> Optional[MonitorDecision]:
        """The decision taken at the most recent step, if any."""
        return self._last_decision

    @property
    def emergency_frequency(self) -> float:
        """Fraction of steps commanded by the emergency planner."""
        return self._monitor.emergency_frequency

    @property
    def embedded_failures(self) -> int:
        """Steps where the embedded planner raised and was contained."""
        return self._embedded_failures

    # ------------------------------------------------------------------
    # Planner protocol
    # ------------------------------------------------------------------
    def plan(self, context: PlanningContext) -> float:
        """One monitored control step.

        A raising embedded planner is contained: the monitor only ever
        admits states from which the emergency planner keeps the system
        safe forever (the Eq. (4) induction), so when the embedded
        planner fails — a genuine :class:`~repro.errors.PlannerError` or
        an injected :class:`~repro.errors.PlannerFaultError` — the step
        falls back to the emergency command without voiding the theorem.

        Effects: mutates-args, draws-rng

        (The declared spec is the boundary for the effect inference:
        the syntactic call graph aliases ``self._nn.plan`` with *every*
        ``plan`` method in the tree, including the serve-only
        wall-clock :class:`~repro.faults.planner_wrapper.StallingPlanner`.
        No engine-built compound ever contains one — wall-clock stalls
        are banned from the deterministic simulation — so this planner
        is clock-free in every simulated composition.)
        """
        decision = self._monitor.evaluate(context)
        if self._obs.enabled:
            self._observe_decision(context, decision)
        self._last_decision = decision
        if decision.use_emergency:
            command = self._emergency.plan(context)
        else:
            try:
                command = self._nn.plan(context)
            except PlannerError:
                self._embedded_failures += 1
                if self._obs.enabled:
                    self._obs.instant(
                        "shield.embedded_failure", t=context.time
                    )
                    self._obs.count("shield.embedded_failures")
                command = self._emergency.plan(context)
        return clipped(command, self._limits)

    def _observe_decision(
        self, context: PlanningContext, decision: MonitorDecision
    ) -> None:
        """Emit shield telemetry for one step (enabled observers only).

        Called *before* ``self._last_decision`` is overwritten so
        engage/release transitions compare against the previous step.
        Strictly write-only — nothing here feeds back into the command.
        """
        obs = self._obs
        previous = self._last_decision
        was_emergency = previous is not None and previous.use_emergency
        if decision.use_emergency and not was_emergency:
            obs.instant(
                "shield.engage",
                t=context.time,
                cause="unsafe" if decision.in_unsafe else "boundary",
            )
            obs.count("shield.engagements")
        elif was_emergency and not decision.use_emergency:
            obs.instant("shield.release", t=context.time)
        obs.count("shield.steps")
        if decision.use_emergency:
            obs.count("shield.emergency_steps")
        model = self._monitor.safety_model
        margin_of = getattr(model, "safety_margin", None)
        if margin_of is not None:
            margin = margin_of(context.time, context.ego, context.estimates)
            if math.isfinite(margin):
                obs.sample("shield.margin", margin, t=context.time)
                obs.gauge("shield.margin", margin)
        boundary_of = getattr(model, "boundary_distance", None)
        if boundary_of is not None:
            distance = boundary_of(
                context.time, context.ego, context.estimates
            )
            if math.isfinite(distance):
                obs.sample("shield.boundary_distance", distance, t=context.time)

    def reset(self) -> None:
        """Clear per-run telemetry (engine calls this between runs)."""
        self._monitor.reset()
        self._last_decision = None
        self._embedded_failures = 0
        if hasattr(self._nn, "reset"):
            self._nn.reset()
