"""The scenario-agnostic safety-model protocol.

The runtime monitor of Section III-C needs two predicates over the
information available at a control step (the ego's own state plus fused
estimates of the other vehicles):

* membership in the (conservatively estimated) **unsafe set** ``X_u`` —
  states where a safety violation can no longer be ruled out;
* membership in the **boundary safe set** ``X_b`` (Eq. (3)) — safe
  states from which some admissible one-step evolution lands in ``X_u``.

Scenario packages (e.g. :mod:`repro.scenarios.left_turn.unsafe_set`)
implement this protocol from their geometry; everything in
:mod:`repro.core` is generic over it, which is what makes the framework
applicable "to any NN-based planner" and any scenario, as the paper
claims.

Soundness contract: both predicates must be evaluated against
*over-approximating* estimates of the other vehicles (the conservative
window in the left turn).  The safety theorem — a compound planner never
enters the true unsafe set — holds exactly when the estimated ``X_u``
contains the true one.
"""

from __future__ import annotations

from typing import Mapping, Protocol, runtime_checkable

from repro.dynamics.state import VehicleState
from repro.filtering.fusion import FusedEstimate

__all__ = ["SafetyModel"]


@runtime_checkable
class SafetyModel(Protocol):
    """Predicates the runtime monitor consults every control step."""

    def in_estimated_unsafe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Whether the current information cannot rule out a violation.

        Units: time [s]
        """
        ...

    def in_boundary_safe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Whether some admissible next step may enter the unsafe set.

        Units: time [s]
        """
        ...
