"""The scenario protocol the simulation engine is generic over.

A scenario bundles everything that is specific to one traffic situation:
the vehicles (limits, initial states, behaviour profiles of the non-ego
vehicles), the ground-truth collision and target predicates used by the
evaluation, and the safety model / emergency planner pair the compound
planner needs.  The engine, runner and experiment harness only speak this
protocol, which is what lets the same framework drive both the left-turn
case study and the car-following extension.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.unsafe_set import SafetyModel
from repro.dynamics.profiles import AccelerationProfile
from repro.dynamics.state import SystemState
from repro.dynamics.vehicle import VehicleLimits
from repro.planners.base import Planner
from repro.utils.rng import RngStream

__all__ = ["Scenario"]


@runtime_checkable
class Scenario(Protocol):
    """Everything the engine needs to simulate one traffic situation."""

    @property
    def n_vehicles(self) -> int:
        """Number of vehicles, ego included (index 0 is the ego)."""
        ...

    @property
    def dt_c(self) -> float:
        """Control period; the safety model's margin depends on it."""
        ...

    def vehicle_limits(self, index: int) -> VehicleLimits:
        """Physical limits of vehicle ``index``."""
        ...

    def initial_state(self, rng: RngStream) -> SystemState:
        """Draw the initial joint state for one simulation."""
        ...

    def profile_for(self, index: int, rng: RngStream) -> AccelerationProfile:
        """Behaviour profile of non-ego vehicle ``index`` for one run."""
        ...

    def is_collision(self, state: SystemState) -> bool:
        """Ground-truth unsafe-set membership (true states)."""
        ...

    def reached_target(self, state: SystemState) -> bool:
        """Ground-truth target-set membership."""
        ...

    def safety_model(self) -> SafetyModel:
        """The conservative safety model for the runtime monitor."""
        ...

    def emergency_planner(self) -> Planner:
        """The scenario's emergency planner (must satisfy Eq. (4))."""
        ...
