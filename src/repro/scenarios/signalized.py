"""Signalized intersection crossing: a deterministic-window scenario.

Third instantiation of the framework, complementing the left turn
(estimated windows from a moving vehicle) and car following (continuous
gap envelope): here the unsafe "window" is the traffic light's **red
phase**, a deterministic periodic schedule known exactly in advance —
no messages, no sensors, no estimation.  The ego must never occupy the
intersection box while the light is red.

What this exercises that the other scenarios cannot:

* a single-vehicle system (the engine's ``others`` set is empty and the
  planner contexts carry no estimates);
* a safety model whose conflict window comes from the *environment
  schedule* rather than fused estimates — the monitor algebra (slack,
  one-step lookahead, the full-throttle commit invariant) is reused
  verbatim from the left turn by overriding one method;
* green-wave speed advisory (GLOSA) as the embedded planner archetype,
  with a naive red-light runner as the unsafe baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.core.unsafe_set import SafetyModel
from repro.dynamics.profiles import AccelerationProfile
from repro.dynamics.state import SystemState, VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.planners.base import Planner, PlanningContext
from repro.scenarios.left_turn.emergency import LeftTurnEmergencyPlanner
from repro.scenarios.left_turn.geometry import (
    LeftTurnGeometry,
    earliest_arrival_time,
)
from repro.scenarios.left_turn.unsafe_set import LeftTurnSafetyModel
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "TrafficLight",
    "SignalizedSafetyModel",
    "SignalizedCrossingScenario",
    "GreenWavePlanner",
    "RedLightRunner",
]


@dataclass(frozen=True, slots=True)
class TrafficLight:
    """A fixed-cycle light: green for ``green``, red for ``red``.

    The cycle starts (greens) at ``offset``; before ``offset`` the light
    is treated as red (the intersection is not yet released).

    Units: green [s], red [s], offset [s]
    """

    green: float
    red: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.green, "green")
        check_positive(self.red, "red")

    @property
    def cycle(self) -> float:
        """Full cycle length.

        Units: -> [s]
        """
        return self.green + self.red

    def is_green(self, time: float) -> bool:
        """Whether the light shows green at ``time``.

        Units: time [s]
        """
        phase = time - self.offset
        if phase < 0.0:
            return False
        return (phase % self.cycle) < self.green

    def next_red_interval(self, time: float) -> Interval:
        """The first red interval that has not fully passed at ``time``.

        Returns absolute times; the pre-``offset`` red is
        ``[-inf, offset]``.

        Units: time [s] -> [s]
        """
        if time < self.offset:
            return Interval(-math.inf, self.offset)
        phase = (time - self.offset) % self.cycle
        cycle_start = time - phase
        red_start = cycle_start + self.green
        red_end = cycle_start + self.cycle
        if phase < self.green:
            return Interval(red_start, red_end)
        return Interval(red_start, red_end)  # currently inside this red

    def next_green_start(self, time: float) -> float:
        """When the current/next green phase begins (at or before ``time``
        if the light is green now).

        Units: time [s] -> [s]
        """
        if time < self.offset:
            return self.offset
        phase = (time - self.offset) % self.cycle
        cycle_start = time - phase
        if phase < self.green:
            return cycle_start
        return cycle_start + self.cycle

    def green_end_after(self, green_start: float) -> float:
        """The end of the green phase starting at ``green_start``.

        Units: green_start [s] -> [s]
        """
        return green_start + self.green


@dataclass(frozen=True)
class SignalizedSafetyModel(LeftTurnSafetyModel):
    """The left-turn monitor algebra with the light's red as the window.

    Overrides :meth:`oncoming_window` to return the next red interval
    (a deterministic schedule, ignoring estimates entirely); everything
    else — slack band, one-step lookahead, the full-throttle commit
    invariant — is inherited unchanged, which is the point: the monitor
    is generic over where the conflict window comes from.
    """

    light: TrafficLight = field(
        default_factory=lambda: TrafficLight(green=6.0, red=8.0)
    )

    def oncoming_window(
        self, estimates: Mapping[int, FusedEstimate]
    ) -> Interval:
        """The next red interval — no estimates involved.

        Units: -> [s]
        """
        del estimates
        return self.light.next_red_interval(self._now)

    # LeftTurnSafetyModel's predicates pass `time` positionally into the
    # window computation via instance state: stash it per evaluation.
    def in_estimated_unsafe_set(self, time, ego, estimates):
        """Eq. (6) against the red-phase window.

        Units: time [s]
        """
        object.__setattr__(self, "_now", time)
        return super().in_estimated_unsafe_set(time, ego, estimates)

    def in_boundary_safe_set(self, time, ego, estimates):
        """Eq. (3) against the red-phase window.

        Units: time [s]
        """
        object.__setattr__(self, "_now", time)
        return super().in_boundary_safe_set(time, ego, estimates)


class GreenWavePlanner:
    """GLOSA-style speed advisory: arrive at the line on green.

    Picks the earliest green phase in which the ego can both arrive at
    the stop line and clear the intersection box before the red, then
    paces its approach to hit that phase; crosses at ``go_accel`` once
    committed to a feasible green.
    """

    def __init__(
        self,
        geometry: LeftTurnGeometry,
        light: TrafficLight,
        limits: VehicleLimits,
        cruise_speed: float = 12.0,
        go_accel: float = 2.5,
        clear_margin: float = 0.5,
        gain: float = 1.5,
    ) -> None:
        check_positive(cruise_speed, "cruise_speed")
        check_positive(go_accel, "go_accel")
        check_positive(gain, "gain")
        self._geometry = geometry
        self._light = light
        self._limits = limits
        self._cruise = cruise_speed
        self._go_accel = go_accel
        self._margin = float(clear_margin)
        self._gain = gain

    def plan(self, context: PlanningContext) -> float:
        """One speed-advisory decision."""
        t = context.time
        p = context.ego.position
        v = max(context.ego.velocity, 0.0)
        geometry = self._geometry
        if p > geometry.p_front:
            return self._go(v)  # committed/inside: clear the box

        d_front = geometry.ego_distance_to_front(p)
        d_back = geometry.ego_distance_to_back(p)
        t_reach = earliest_arrival_time(
            d_front, v, self._limits.v_max, self._go_accel
        )
        t_clear = earliest_arrival_time(
            d_back, v, self._limits.v_max, self._go_accel
        )

        # Find the first green phase that fits the crossing.
        green_start = self._light.next_green_start(t)
        for _ in range(8):
            green_end = self._light.green_end_after(green_start)
            arrival = max(t + t_reach, green_start)
            crossing_time = t_clear - t_reach
            if arrival + crossing_time + self._margin <= green_end:
                break
            green_start += self._light.cycle
        else:  # pragma: no cover - a feasible phase always exists
            green_start = self._light.next_green_start(t) + self._light.cycle
            arrival = green_start

        if arrival <= t + t_reach + 1e-9:
            # The chosen green is open on arrival: commit and cross.
            return self._go(v)

        # Pace: target the speed that arrives exactly at the green start.
        time_budget = green_start - t
        v_target = min(self._cruise, d_front / max(time_budget, 1e-6))
        # Never exceed the speed from which a comfortable stop at the
        # line is possible (the light is red when we would arrive early).
        v_safe = math.sqrt(2.0 * 2.5 * max(d_front - 1.0, 0.0))
        command = self._gain * (min(v_target, v_safe) - v)
        return self._limits.clip_acceleration(min(command, self._go_accel))

    def _go(self, velocity: float) -> float:
        cap = min(self._limits.v_max, max(self._cruise, 8.0))
        if velocity >= cap:
            return 0.0
        return self._go_accel


class RedLightRunner:
    """The unsafe baseline: cruise at a fixed speed, ignore the light."""

    def __init__(self, limits: VehicleLimits, speed: float = 12.0) -> None:
        check_positive(speed, "speed")
        self._limits = limits
        self._speed = speed

    def plan(self, context: PlanningContext) -> float:
        """Track the fixed cruise speed regardless of the light."""
        return self._limits.clip_acceleration(
            1.5 * (self._speed - max(context.ego.velocity, 0.0))
        )


@dataclass(frozen=True)
class SignalizedCrossingScenario:
    """Single vehicle crossing a signalized intersection box.

    The ego must cross the box (``[p_front, p_back]`` of ``geometry``)
    without ever being inside it during a red phase; the target is the
    geometry's ``p_target``.  The scenario itself is deterministic;
    vary the light's phase via :meth:`with_offset` to build a batch of
    episodes that differ in how much waiting the schedule forces.
    """

    geometry: LeftTurnGeometry = field(
        default_factory=lambda: LeftTurnGeometry(
            p_front=5.0, p_back=15.0, p_target=25.0
        )
    )
    light: TrafficLight = field(
        default_factory=lambda: TrafficLight(green=6.0, red=8.0)
    )
    ego_limits: VehicleLimits = VehicleLimits(
        v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0
    )
    dt_c: float = 0.05
    ego_start: Tuple[float, float] = (-40.0, 10.0)

    def __post_init__(self) -> None:
        check_positive(self.dt_c, "dt_c")

    def with_offset(self, offset: float) -> "SignalizedCrossingScenario":
        """A copy whose light cycle is shifted by ``offset`` seconds."""
        from dataclasses import replace

        return replace(
            self,
            light=TrafficLight(
                green=self.light.green,
                red=self.light.red,
                offset=float(offset),
            ),
        )

    # ------------------------------------------------------------------
    # Scenario protocol (single-vehicle)
    # ------------------------------------------------------------------
    @property
    def n_vehicles(self) -> int:
        """Just the ego; the adversary is the schedule."""
        return 1

    def vehicle_limits(self, index: int) -> VehicleLimits:
        """Only index 0 exists."""
        if index != 0:
            raise ScenarioError(f"no vehicle with index {index}")
        return self.ego_limits

    def initial_state(self, rng: RngStream) -> SystemState:
        """The fixed ego start (the scenario itself is deterministic)."""
        del rng
        ego = VehicleState(
            position=self.ego_start[0], velocity=self.ego_start[1]
        )
        return SystemState(time=0.0, vehicles=(ego,))

    def profile_for(self, index: int, rng: RngStream) -> AccelerationProfile:
        """No other vehicles exist."""
        raise ScenarioError(f"vehicle {index} has no behaviour profile")

    def is_collision(self, state: SystemState) -> bool:
        """Red-light violation: inside the box while the light is red."""
        return self.geometry.ego_inside(
            state.ego.position
        ) and not self.light.is_green(state.time)

    def reached_target(self, state: SystemState) -> bool:
        """The ego crossed the target line."""
        return self.geometry.ego_reached_target(state.ego.position)

    def safety_model(self) -> SafetyModel:
        """Monitor over the deterministic red-phase schedule."""
        return SignalizedSafetyModel(
            geometry=self.geometry,
            ego_limits=self.ego_limits,
            # The "oncoming" fields are unused by the overridden window
            # but required by the base dataclass; any valid limits do.
            oncoming_limits=VehicleLimits(
                v_min=-1.0, v_max=0.0, a_min=-1.0, a_max=1.0
            ),
            dt_c=self.dt_c,
            light=self.light,
        )

    def emergency_planner(self) -> Planner:
        """Stop before the line / escape the box — reused verbatim."""
        return LeftTurnEmergencyPlanner(self.geometry, self.ego_limits)

    def green_wave_planner(self) -> GreenWavePlanner:
        """A ready-made GLOSA planner for this scenario."""
        return GreenWavePlanner(self.geometry, self.light, self.ego_limits)

    def red_light_runner(self) -> RedLightRunner:
        """The unsafe cruise-through baseline."""
        return RedLightRunner(self.ego_limits)
