"""Scenario instantiations of the safety framework."""

from repro.scenarios.base import Scenario
from repro.scenarios.car_following import (
    CarFollowingSafetyModel,
    CarFollowingScenario,
)
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.scenarios.signalized import (
    SignalizedCrossingScenario,
    TrafficLight,
)

__all__ = [
    "Scenario",
    "LeftTurnScenario",
    "CarFollowingScenario",
    "CarFollowingSafetyModel",
    "SignalizedCrossingScenario",
    "TrafficLight",
]
