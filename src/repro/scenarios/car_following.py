"""Car-following scenario: the paper's Section II gap-keeping example.

The paper introduces the unsafe set with a car-following example:
``X_u = {x | |p_0 - p_i| < p_gap}`` — the ego must keep a minimum gap to
the vehicle ahead.  This module instantiates the full framework on that
scenario, demonstrating that :mod:`repro.core` is generic over safety
models (the claim "applicable to any NN-based planner" extends to any
scenario with a sound safety model and a valid emergency planner).

The safety algebra is the classic braking-envelope argument:

* **slack** — ``gap + v_l^2 / (2 b_l) - v_0^2 / (2 b_e) - p_gap``,
  evaluated against the *worst corner* of the leader's fused band
  (closest position, slowest velocity): nonnegative slack means that
  even if the leader brakes as hard as physics allows, the ego — braking
  at full force — never closes within ``p_gap``;
* **boundary safe set** — slack within one worst-case step (ego at full
  throttle, leader at full brake) of going negative;
* **emergency planner** — full braking, which provably keeps the slack
  nonnegative (the property tests check this against adversarial leader
  behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.core.unsafe_set import SafetyModel
from repro.dynamics.profiles import AccelerationProfile, RandomWalkProfile
from repro.dynamics.state import SystemState, VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.planners.base import Planner
from repro.planners.constant import FullBrakePlanner
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["CarFollowingScenario", "CarFollowingSafetyModel", "following_slack"]

#: Default limits for both vehicles: highway-ish traffic.
_DEFAULT_EGO = VehicleLimits(v_min=0.0, v_max=30.0, a_min=-6.0, a_max=3.0)
_DEFAULT_LEADER = VehicleLimits(v_min=0.0, v_max=30.0, a_min=-6.0, a_max=3.0)


def following_slack(
    ego: VehicleState,
    leader_position_lo: float,
    leader_velocity_lo: float,
    p_gap: float,
    ego_limits: VehicleLimits,
    leader_limits: VehicleLimits,
) -> float:
    """Braking-envelope slack of the following ego.

    Uses the pessimistic corner of the leader's band: its closest
    possible position and slowest possible velocity.  Nonnegative slack
    certifies that full ego braking preserves the gap whatever the
    leader does within its physical limits.
    """
    gap = leader_position_lo - ego.position
    v0 = max(ego.velocity, 0.0)
    vl = max(leader_velocity_lo, 0.0)
    ego_stop = v0 * v0 / (-2.0 * ego_limits.a_min)
    leader_stop = vl * vl / (-2.0 * leader_limits.a_min)
    return gap + leader_stop - ego_stop - p_gap


@dataclass(frozen=True)
class CarFollowingSafetyModel:
    """Slack-based safety predicates over the leader's fused estimate."""

    p_gap: float
    ego_limits: VehicleLimits
    leader_limits: VehicleLimits
    dt_c: float
    leader_index: int = 1

    def __post_init__(self) -> None:
        check_positive(self.p_gap, "p_gap")
        check_positive(self.dt_c, "dt_c")

    def _slack(
        self, ego: VehicleState, estimates: Mapping[int, FusedEstimate]
    ) -> float:
        if self.leader_index not in estimates:
            raise ScenarioError(
                f"no estimate for the leader (index {self.leader_index})"
            )
        estimate = estimates[self.leader_index]
        return following_slack(
            ego,
            estimate.position.lo,
            estimate.velocity.lo,
            self.p_gap,
            self.ego_limits,
            self.leader_limits,
        )

    def _margin(self, ego: VehicleState, estimate: FusedEstimate) -> float:
        """Worst one-step slack decrease (ego full throttle, leader full brake)."""
        dt = self.dt_c
        v0 = max(ego.velocity, 0.0)
        a_max = self.ego_limits.a_max
        b_e = -self.ego_limits.a_min
        # Ego closes the gap and grows its stopping distance.
        ego_travel = v0 * dt + 0.5 * a_max * dt * dt
        ego_stop_growth = (2.0 * v0 * a_max * dt + a_max * a_max * dt * dt) / (
            2.0 * b_e
        )
        # The leader's braking-credit term can shrink by at most v_l * dt.
        leader_credit_loss = max(estimate.velocity.hi, 0.0) * dt
        return ego_travel + ego_stop_growth + leader_credit_loss

    # ------------------------------------------------------------------
    # Observability hooks (telemetry only — the monitor never calls these)
    # ------------------------------------------------------------------
    def safety_margin(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> float:
        """The following slack as a scalar safety margin, metres.

        Units: time [s] -> [m]
        """
        return self._slack(ego, estimates)

    def boundary_distance(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> float:
        """Distance of the slack to the ``X_b`` threshold, metres.

        Units: time [s] -> [m]
        """
        return self._slack(ego, estimates) - self._margin(
            ego, estimates[self.leader_index]
        )

    # ------------------------------------------------------------------
    # SafetyModel protocol
    # ------------------------------------------------------------------
    def in_estimated_unsafe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Negative slack: the gap can no longer be certified.

        Units: time [s]
        """
        return self._slack(ego, estimates) < 0.0

    def in_boundary_safe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Slack within one worst-case step of going negative.

        Units: time [s]
        """
        s = self._slack(ego, estimates)
        if s < 0.0:
            return True
        return s < self._margin(ego, estimates[self.leader_index])


@dataclass(frozen=True)
class CarFollowingScenario:
    """Two-vehicle single-lane following task.

    The ego starts ``initial_gap`` behind the leader and must cover
    ``travel_distance`` metres without ever closing within ``p_gap`` of
    the leader, whose speed wanders as a bounded random walk.
    """

    p_gap: float = 5.0
    ego_limits: VehicleLimits = _DEFAULT_EGO
    leader_limits: VehicleLimits = _DEFAULT_LEADER
    dt_c: float = 0.05
    initial_gap: float = 30.0
    ego_start_speed: float = 20.0
    leader_speed_range: Tuple[float, float] = (10.0, 20.0)
    travel_distance: float = 250.0
    #: Leader behaviour: random-walk acceleration bounds.
    leader_accel_range: Tuple[float, float] = (-3.0, 2.0)

    def __post_init__(self) -> None:
        check_positive(self.p_gap, "p_gap")
        check_positive(self.travel_distance, "travel_distance")
        if self.initial_gap <= self.p_gap:
            raise ScenarioError(
                f"initial_gap ({self.initial_gap}) must exceed p_gap "
                f"({self.p_gap})"
            )
        lo, hi = self.leader_accel_range
        if lo < self.leader_limits.a_min or hi > self.leader_limits.a_max:
            raise ScenarioError(
                "leader_accel_range must stay within the leader's limits"
            )

    # ------------------------------------------------------------------
    # Scenario protocol
    # ------------------------------------------------------------------
    @property
    def n_vehicles(self) -> int:
        """Ego plus one leader."""
        return 2

    def vehicle_limits(self, index: int) -> VehicleLimits:
        """Ego limits for 0, leader limits for 1."""
        if index == 0:
            return self.ego_limits
        if index == 1:
            return self.leader_limits
        raise ScenarioError(f"no vehicle with index {index}")

    def initial_state(self, rng: RngStream) -> SystemState:
        """Ego at the origin; leader ``initial_gap`` ahead."""
        leader_speed = float(rng.uniform(*self.leader_speed_range))
        ego = VehicleState(position=0.0, velocity=self.ego_start_speed)
        leader = VehicleState(position=self.initial_gap, velocity=leader_speed)
        return SystemState(time=0.0, vehicles=(ego, leader))

    def profile_for(self, index: int, rng: RngStream) -> AccelerationProfile:
        """Bounded random-walk acceleration for the leader."""
        if index != 1:
            raise ScenarioError(f"vehicle {index} has no behaviour profile")
        lo, hi = self.leader_accel_range
        return RandomWalkProfile(rng, a_low=lo, a_high=hi, max_step=0.4)

    def is_collision(self, state: SystemState) -> bool:
        """The true gap dropped below ``p_gap``."""
        gap = state.vehicle(1).position - state.ego.position
        return gap < self.p_gap

    def reached_target(self, state: SystemState) -> bool:
        """The ego covered the required distance."""
        return state.ego.position >= self.travel_distance

    def safety_model(self) -> SafetyModel:
        """The braking-envelope safety model."""
        return CarFollowingSafetyModel(
            p_gap=self.p_gap,
            ego_limits=self.ego_limits,
            leader_limits=self.leader_limits,
            dt_c=self.dt_c,
        )

    def emergency_planner(self) -> Planner:
        """Full braking (provably slack-preserving)."""
        return FullBrakePlanner(self.ego_limits)
