"""Passing-time-window estimation for the oncoming vehicle.

Section IV of the paper estimates the absolute time window
``[tau_{1,min}(t), tau_{1,max}(t)]`` during which the oncoming vehicle
``C_1`` may occupy the unsafe area:

* the **conservative** estimate (Eq. (7)) assumes the physical limits —
  ``C_1`` may floor the throttle up to ``v_max`` (earliest entry) or
  brake to ``v_min`` (latest exit) — evaluated over the *whole* fused
  uncertainty band, so the window is a sound over-approximation;
* the **aggressive** estimate (Eq. (8)) replaces the physical limits by a
  small buffer around the vehicle's *currently observed* behaviour
  (``a_est = min(a_1(t) + a_buf, a_max)``, ``v_est = min(v_1(t) + v_buf,
  v_max)``) evaluated at the nominal point estimate, producing the
  compact window that lets the NN planner act efficiently.

Coordinate convention: the oncoming vehicle's *global* coordinate
decreases along its direction of travel (it approaches from positive
positions, as in the paper's experiments where ``p_1(0) ≈ 50–60 m`` and
the area sits at ``[5, 15] m``).  All window algebra below works in
*speed* terms — speed ``= -velocity``, acceleration-toward-the-area
``= -a`` — so the shared kinematic primitives of
:mod:`repro.scenarios.left_turn.geometry` apply unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dynamics.vehicle import VehicleLimits
from repro.filtering.fusion import FusedEstimate
from repro.scenarios.left_turn.geometry import (
    NEVER,
    LeftTurnGeometry,
    arrival_time_under,
    earliest_arrival_time,
    latest_arrival_time,
)
from repro.utils.intervals import Interval
from repro.utils.validation import check_nonnegative

__all__ = [
    "conservative_window",
    "aggressive_window",
    "PassingWindowEstimator",
]


def _speed_quantities(limits: VehicleLimits):
    """Map the oncoming vehicle's raw limits into speed terms.

    Raw velocities are negative (coordinate decreases along travel), so
    raw ``v_min = -max_speed`` and ``v_max = -min_speed``; raw ``a_min``
    is the strongest speed-up and raw ``a_max`` the strongest braking.
    """
    max_speed = -limits.v_min
    min_speed = -limits.v_max
    max_speedup = -limits.a_min
    max_brake = -limits.a_max  # negative number in speed terms
    return max_speed, min_speed, max_speedup, max_brake


def conservative_window(
    estimate: FusedEstimate,
    geometry: LeftTurnGeometry,
    limits: VehicleLimits,
) -> Interval:
    """Sound occupancy window of the unsafe area (Eq. (7) over the band).

    The earliest entry combines the band edge *closest* to the area with
    the *fastest* possible speed and full physical acceleration; the
    latest exit combines the farthest edge, slowest speed and full
    braking down to the speed floor.  The result contains the true
    passing window whenever the fused band contains the true state.

    Returns an *absolute-time* interval; empty when the whole band has
    already cleared the area.

    Units: -> [s]
    """
    max_speed, min_speed, max_speedup, max_brake = _speed_quantities(limits)

    # Pessimistic clearance check: the farthest band edge must be past
    # the back line for the window to be closed for good.
    d_back_far = geometry.oncoming_distance_to_back(estimate.position.hi)
    if d_back_far <= 0.0:
        return Interval.EMPTY

    d_front_near = geometry.oncoming_distance_to_front(estimate.position.lo)
    fastest_speed = -estimate.velocity.lo
    slowest_speed = -estimate.velocity.hi

    entry = earliest_arrival_time(
        d_front_near, fastest_speed, max_speed, max_speedup
    )
    exit_ = latest_arrival_time(d_back_far, slowest_speed, min_speed, max_brake)
    if entry == NEVER:
        return Interval.EMPTY
    return Interval(estimate.time + entry, estimate.time + max(exit_, entry))


def aggressive_window(
    estimate: FusedEstimate,
    geometry: LeftTurnGeometry,
    limits: VehicleLimits,
    a_buf: float,
    v_buf: float,
) -> Interval:
    """Compact occupancy window from buffered nominal behaviour (Eq. (8)).

    Units: a_buf [m/s^2], v_buf [m/s] -> [s]

    Both buffers are nonnegative; the returned interval holds absolute
    times in seconds.

    Evaluated at the nominal point estimate with assumed acceleration and
    speed within ``a_buf``/``v_buf`` of the currently observed values
    (clipped at the physical limits).  The window is *not* sound — that
    is the point: the runtime monitor retains the conservative window, so
    feeding this one to the NN planner trades no safety for efficiency.
    """
    check_nonnegative(a_buf, "a_buf")
    check_nonnegative(v_buf, "v_buf")
    max_speed, min_speed, max_speedup, max_brake = _speed_quantities(limits)

    nominal = estimate.nominal
    d_back = geometry.oncoming_distance_to_back(nominal.position)
    if d_back <= 0.0:
        return Interval.EMPTY
    d_front = geometry.oncoming_distance_to_front(nominal.position)
    speed = -nominal.velocity
    accel = -nominal.acceleration

    # Entry: at most a_buf more acceleration and v_buf more speed than
    # currently observed (Eq. (8)).
    a_entry = min(accel + a_buf, max_speedup)
    v_entry_cap = min(speed + v_buf, max_speed)
    entry = arrival_time_under(
        d_front, speed, a_entry, max(v_entry_cap, min_speed), min_speed
    )
    if entry == NEVER:
        return Interval.EMPTY

    # Exit: at most a_buf more braking and v_buf less speed.
    a_exit = max(accel - a_buf, max_brake)
    v_exit_floor = max(speed - v_buf, min_speed)
    exit_ = arrival_time_under(
        d_back, speed, a_exit, max_speed, min(v_exit_floor, max_speed)
    )
    return Interval(estimate.time + entry, estimate.time + max(exit_, entry))


@dataclass(frozen=True, slots=True)
class PassingWindowEstimator:
    """Bundles geometry, limits and mode into a single window callable.

    Attributes
    ----------
    geometry:
        The left-turn geometry.
    limits:
        *Physical* limits of the oncoming vehicle (raw coordinates).
    aggressive:
        Whether to produce the Eq. (8) buffered window instead of the
        sound Eq. (7) window.
    a_buf, v_buf:
        Buffers for the aggressive mode (ignored otherwise).  The paper
        leaves the values user-defined; the experiment defaults live in
        :mod:`repro.experiments.config`.

    Units: a_buf [m/s^2], v_buf [m/s]
    """

    geometry: LeftTurnGeometry
    limits: VehicleLimits
    aggressive: bool = False
    a_buf: float = 0.5
    v_buf: float = 1.0

    def window(self, estimate: FusedEstimate) -> Interval:
        """Absolute-time occupancy window for the given estimate.

        Units: -> [s]
        """
        if self.aggressive:
            return aggressive_window(
                estimate, self.geometry, self.limits, self.a_buf, self.v_buf
            )
        return conservative_window(estimate, self.geometry, self.limits)
