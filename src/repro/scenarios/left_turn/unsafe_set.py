"""Unsafe set and boundary safe set of the unprotected left turn.

Implements the slack / projected-passing-window algebra of Section IV:

* the **slack** ``s(t)`` (Eq. (5)) — distance margin between the ego's
  braking envelope and the front line of the unsafe area; negative slack
  means the ego can no longer stop before the area;
* the ego's **projected passing window** ``[tau_{0,min}, tau_{0,max}]`` —
  when the ego would occupy the area at its current velocity;
* the **unsafe set** ``X_u`` (Eq. (6)) — negative slack and intersecting
  passing windows;
* the **boundary safe set** ``X_b`` — nonnegative slack smaller than the
  worst one-step slack decrease
  ``(v_0 dt_c + a_max dt_c^2 / 2)(1 - a_max / a_min)``, with intersecting
  windows; the runtime monitor hands control to the emergency planner
  exactly on this set.

:class:`LeftTurnSafetyModel` packages these predicates behind the
scenario-agnostic :class:`repro.core.unsafe_set.SafetyModel` protocol, on
top of a conservative :class:`PassingWindowEstimator` over the fused
estimates of the oncoming vehicle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.scenarios.left_turn.geometry import (
    LeftTurnGeometry,
    earliest_arrival_time,
)
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.utils.intervals import Interval
from repro.utils.validation import check_positive

__all__ = [
    "slack",
    "ego_passing_window",
    "boundary_slack_margin",
    "LeftTurnSafetyModel",
]


def slack(
    position: float,
    velocity: float,
    geometry: LeftTurnGeometry,
    ego_limits: VehicleLimits,
) -> float:
    """The slack ``s(t)`` of Eq. (5), in metres.

    Units: position [m], velocity [m/s] -> [m]

    ``position`` is the ego coordinate (negative velocities clamp to a
    standstill).

    Before the front line: front-line distance minus the braking distance
    ``d_b = -v^2 / (2 a_min)`` (``a_min < 0``).  Inside the area: the
    (negative) penetration past the back line.  Past the area: ``inf``.
    """
    v = max(velocity, 0.0)
    if position <= geometry.p_front:
        braking = -0.5 * v * v / ego_limits.a_min
        return geometry.p_front - braking - position
    if position <= geometry.p_back:
        return position - geometry.p_back
    return math.inf


def ego_passing_window(
    time: float,
    position: float,
    velocity: float,
    geometry: LeftTurnGeometry,
) -> Interval:
    """Projected occupancy window of the ego at its current velocity.

    Units: time [s], position [m], velocity [m/s] -> [s]

    ``time`` is the absolute timestamp; the window holds absolute
    seconds.

    Mirrors the paper's three cases: before the front line the window is
    ``[t + d_f/v, t + d_b/v]``; inside the area it opens now and closes
    at ``t + d_b/v``; past the area it is empty.  A stationary ego before
    the area never arrives (empty window); a stationary ego *inside* the
    area occupies it indefinitely (``[t, inf)``).
    """
    if position > geometry.p_back:
        return Interval.EMPTY
    v = max(velocity, 0.0)
    d_back = geometry.ego_distance_to_back(position)
    if position <= geometry.p_front:
        if v <= 0.0:
            return Interval.EMPTY
        d_front = geometry.ego_distance_to_front(position)
        return Interval(time + d_front / v, time + d_back / v)
    if v <= 0.0:
        return Interval(time, math.inf)
    return Interval(time, time + d_back / v)


def boundary_slack_margin(
    velocity: float, dt_c: float, ego_limits: VehicleLimits
) -> float:
    """Worst-case one-step slack decrease (the ``X_b`` threshold), metres.

    Units: velocity [m/s], dt_c [s] -> [m]

    Derived in Section IV: the slack after one control step is at least
    ``s(t) - (v_0 dt_c + a_max dt_c^2 / 2)(1 - a_max / a_min)``, so a
    state with slack below this margin may reach negative slack within
    one step.
    """
    check_positive(dt_c, "dt_c")
    v = max(velocity, 0.0)
    travel = v * dt_c + 0.5 * ego_limits.a_max * dt_c * dt_c
    factor = 1.0 - ego_limits.a_max / ego_limits.a_min
    return travel * factor


@dataclass(frozen=True)
class LeftTurnSafetyModel:
    """Scenario safety predicates over fused estimates.

    Implements the :class:`repro.core.unsafe_set.SafetyModel` protocol
    for the left-turn scenario: the oncoming vehicle's occupancy window
    is estimated conservatively (Eq. (7) over the fused band) and
    combined with the ego's slack and projected window.

    Attributes
    ----------
    geometry:
        Unsafe-area geometry.
    ego_limits:
        The ego's physical limits (slack and margin use ``a_min`` and
        ``a_max``).
    oncoming_limits:
        The oncoming vehicle's physical limits (the conservative window
        must use the true physical capabilities to stay sound).
    dt_c:
        Control period; fixes the boundary-set margin.
    oncoming_index:
        Which vehicle index holds the oncoming vehicle (1 by default).
    """

    geometry: LeftTurnGeometry
    ego_limits: VehicleLimits
    oncoming_limits: VehicleLimits
    dt_c: float
    oncoming_index: int = 1

    def __post_init__(self) -> None:
        check_positive(self.dt_c, "dt_c")
        if self.oncoming_index < 1:
            raise ScenarioError(
                f"oncoming_index must be >= 1, got {self.oncoming_index}"
            )

    # ------------------------------------------------------------------
    # Window plumbing
    # ------------------------------------------------------------------
    def conservative_estimator(self) -> PassingWindowEstimator:
        """The sound Eq. (7) window estimator this model uses."""
        return PassingWindowEstimator(
            geometry=self.geometry, limits=self.oncoming_limits, aggressive=False
        )

    def oncoming_window(
        self, estimates: Mapping[int, FusedEstimate]
    ) -> Interval:
        """Conservative occupancy window from the current estimates.

        Units: -> [s]
        """
        if self.oncoming_index not in estimates:
            raise ScenarioError(
                f"no estimate for the oncoming vehicle "
                f"(index {self.oncoming_index})"
            )
        return self.conservative_estimator().window(
            estimates[self.oncoming_index]
        )

    # ------------------------------------------------------------------
    # Observability hooks (telemetry only — the monitor never calls these)
    # ------------------------------------------------------------------
    def safety_margin(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> float:
        """The slack ``s(t)`` as a scalar safety margin, metres.

        Units: time [s] -> [m]
        """
        return slack(ego.position, ego.velocity, self.geometry, self.ego_limits)

    def boundary_distance(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> float:
        """Distance of the slack to the ``X_b`` threshold, metres.

        Units: time [s] -> [m]

        Positive while the slack exceeds the worst one-step decrease;
        zero or negative when the boundary safe set may be reached within
        one control step.
        """
        s = slack(ego.position, ego.velocity, self.geometry, self.ego_limits)
        return s - boundary_slack_margin(
            ego.velocity, self.dt_c, self.ego_limits
        )

    # ------------------------------------------------------------------
    # SafetyModel protocol
    # ------------------------------------------------------------------
    def in_estimated_unsafe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Eq. (6): negative slack and intersecting windows.

        Units: time [s]
        """
        s = slack(ego.position, ego.velocity, self.geometry, self.ego_limits)
        if s >= 0.0:
            return False
        ego_window = ego_passing_window(
            time, ego.position, ego.velocity, self.geometry
        )
        return ego_window.overlaps(self.oncoming_window(estimates))

    def in_boundary_safe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """``X_b``: one admissible step away from the unsafe set (Eq. (3)).

        Units: time [s]

        Two branches, both instances of the general definition:

        * **approaching** the area — the slack is nonnegative but within
          one worst-case step of going negative while the windows
          intersect (the derivation of Section IV);
        * **inside** the area — some admissible next step (worst case, a
          full-brake step that stretches the ego's projected occupancy)
          would overlap the oncoming window.  The Section-IV derivation
          leaves this branch implicit, but without it an embedded
          planner that decelerates mid-crossing could drift into the
          unsafe set unprotected; with it, the monitor hands control to
          the emergency planner's full-throttle escape branch as soon as
          lingering becomes a possibility.
        """
        position = ego.position
        if position > self.geometry.p_back:
            return False
        oncoming = self.oncoming_window(estimates)
        if oncoming.is_empty or oncoming.hi <= time:
            return False
        s = slack(position, ego.velocity, self.geometry, self.ego_limits)
        if position > self.geometry.p_front or s < 0.0:
            return self._committed_needs_escape(time, ego, oncoming)
        if 0.0 <= s < boundary_slack_margin(
            ego.velocity, self.dt_c, self.ego_limits
        ):
            ego_window = ego_passing_window(
                time, position, ego.velocity, self.geometry
            )
            if ego_window.overlaps(oncoming):
                return True
        return self._some_step_commits_unsafely(time, ego, oncoming)

    # ------------------------------------------------------------------
    # Full-throttle commit invariant
    # ------------------------------------------------------------------
    def _full_throttle_times(
        self, time: float, position: float, velocity: float
    ) -> tuple[float, float]:
        """Earliest possible (entry, exit) times of the unsafe area.

        Units: time [s], position [m], velocity [m/s]

        Both assume full throttle from ``(position, velocity)`` at
        ``time`` — the ego's fastest possible traversal.  These are the
        quantities the commit invariant is stated in: a committed ego is
        safe iff it can *outrun* the oncoming window
        (``exit_ff <= window.lo``) or *out-wait* it
        (``entry_ff >= window.hi``; entry can only be delayed further,
        never advanced past ``entry_ff``).
        """
        v = max(velocity, 0.0)
        d_front = self.geometry.ego_distance_to_front(position)
        d_back = self.geometry.ego_distance_to_back(position)
        entry = time + earliest_arrival_time(
            d_front, v, self.ego_limits.v_max, self.ego_limits.a_max
        )
        exit_ = time + earliest_arrival_time(
            d_back, v, self.ego_limits.v_max, self.ego_limits.a_max
        )
        return entry, exit_

    def _committed_safe(
        self, time: float, position: float, velocity: float, oncoming: Interval
    ) -> bool:
        """The commit invariant at one state.

        Units: time [s], position [m], velocity [m/s]
        """
        entry_ff, exit_ff = self._full_throttle_times(time, position, velocity)
        return exit_ff <= oncoming.lo or entry_ff >= oncoming.hi

    def _committed_needs_escape(
        self, time: float, ego: VehicleState, oncoming: Interval
    ) -> bool:
        """Committed/inside branch of ``X_b``.

        Units: time [s]

        Once stopping before the area is impossible, the only safe plans
        are "outrun the window" (requires flooring the throttle — hand
        control to the emergency planner's escape branch now) or
        "out-wait the window" (the earliest possible entry is after the
        window closes, so *any* control is safe and the NN planner may
        keep control).  The monitor therefore escalates exactly when the
        full-throttle entry could still fall inside the window.
        """
        entry_ff, _ = self._full_throttle_times(
            time, ego.position, ego.velocity
        )
        return entry_ff < oncoming.hi

    def _some_step_commits_unsafely(
        self, time: float, ego: VehicleState, oncoming: Interval
    ) -> bool:
        """Eq. (3) lookahead on the approach side.

        Units: time [s]

        Tests the extremal admissible next steps (full brake, coast,
        full throttle): if any of them loses the ability to stop
        (``s < 0``) while violating the commit invariant, the current
        state is one step from the unsafe set and the emergency planner
        must take over now, while stopping is still possible.  This also
        covers the (near-)stationary ego at the front line, whose
        current-velocity projected window is degenerate.
        """
        dt = self.dt_c
        v = max(ego.velocity, 0.0)
        for accel in (self.ego_limits.a_min, 0.0, self.ego_limits.a_max):
            v_next = min(
                max(v + accel * dt, max(self.ego_limits.v_min, 0.0)),
                self.ego_limits.v_max,
            )
            p_next = ego.position + v * dt + 0.5 * accel * dt * dt
            s_next = slack(p_next, v_next, self.geometry, self.ego_limits)
            if s_next < 0.0 and not self._committed_safe(
                time + dt, p_next, v_next, oncoming
            ):
                return True
        return False
