"""Left turn against *several* oncoming vehicles.

The paper's system model (Section II-A) is n-vehicle, but its case study
instantiates a single oncoming car.  This module extends the case study
to a platoon of oncoming vehicles, exercising the parts of the framework
the single-vehicle study cannot:

* the safety model composes per-vehicle predicates — the ego is in the
  (estimated) unsafe/boundary set iff it is with respect to *any*
  oncoming vehicle, which is sound because the emergency planner's
  actions (stop before the line / floor it out) are safe per vehicle
  and conjunctively safe;
* the expert's GO decision becomes *gap acceptance*: the ego's planned
  full-throttle crossing interval must fit between the merged conflict
  windows of the platoon.

One estimator/channel/sensor per oncoming vehicle falls out of the
engine for free (it is already per-vehicle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Sequence, Tuple

from repro.core.unsafe_set import SafetyModel
from repro.dynamics.profiles import AccelerationProfile, RandomSequenceProfile
from repro.dynamics.state import SystemState, VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ScenarioError
from repro.filtering.fusion import FusedEstimate
from repro.planners.base import Planner, PlanningContext
from repro.planners.expert import ExpertConfig
from repro.scenarios.left_turn.emergency import LeftTurnEmergencyPlanner
from repro.scenarios.left_turn.geometry import (
    LeftTurnGeometry,
    earliest_arrival_time,
)
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.scenarios.left_turn.scenario import (
    DEFAULT_EGO_LIMITS,
    DEFAULT_ONCOMING_LIMITS,
)
from repro.scenarios.left_turn.unsafe_set import LeftTurnSafetyModel
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = [
    "merge_windows",
    "MultiOncomingSafetyModel",
    "MultiOncomingLeftTurnScenario",
    "GapAcceptanceExpert",
]


def merge_windows(windows: Sequence[Interval]) -> List[Interval]:
    """Merge possibly overlapping windows into disjoint sorted intervals.

    Empty windows are dropped; touching windows are merged (a gap of
    zero width cannot be crossed through).
    """
    live = sorted(
        (w for w in windows if not w.is_empty), key=lambda w: w.lo
    )
    merged: List[Interval] = []
    for window in live:
        if merged and window.lo <= merged[-1].hi:
            merged[-1] = merged[-1].hull(window)
        else:
            merged.append(window)
    return merged


@dataclass(frozen=True)
class MultiOncomingSafetyModel:
    """Disjunction of per-vehicle left-turn safety models.

    The ego is one step from danger if it is one step from danger with
    respect to *any* oncoming vehicle.  Soundness of the composition:
    the emergency planner's braking branch is vehicle-independent (it
    only involves the ego and the front line), and its escape branch
    (full throttle) preserves the per-vehicle commit invariant for every
    vehicle simultaneously, so ORing the triggers never creates
    conflicting obligations.
    """

    geometry: LeftTurnGeometry
    ego_limits: VehicleLimits
    oncoming_limits: VehicleLimits
    dt_c: float
    oncoming_indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        check_positive(self.dt_c, "dt_c")
        if not self.oncoming_indices:
            raise ScenarioError("at least one oncoming vehicle required")
        per_vehicle = tuple(
            LeftTurnSafetyModel(
                geometry=self.geometry,
                ego_limits=self.ego_limits,
                oncoming_limits=self.oncoming_limits,
                dt_c=self.dt_c,
                oncoming_index=index,
            )
            for index in self.oncoming_indices
        )
        object.__setattr__(self, "_models", per_vehicle)

    def in_estimated_unsafe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Unsafe with respect to any oncoming vehicle.

        Units: time [s]
        """
        return any(
            model.in_estimated_unsafe_set(time, ego, estimates)
            for model in self._models
        )

    def in_boundary_safe_set(
        self,
        time: float,
        ego: VehicleState,
        estimates: Mapping[int, FusedEstimate],
    ) -> bool:
        """Boundary-safe with respect to any oncoming vehicle.

        Units: time [s]
        """
        return any(
            model.in_boundary_safe_set(time, ego, estimates)
            for model in self._models
        )


class GapAcceptanceExpert:
    """GO/YIELD against a platoon: fit the crossing into a gap.

    The GO predicate plans a full-throttle crossing starting now —
    occupying the area over ``[t + t_reach, t + t_clear]`` — pads it
    with ``entry_margin`` and accepts iff the padded interval is
    disjoint from every merged conflict window.  For one oncoming
    vehicle this reduces exactly to the single-vehicle expert's
    go-before / anticipatory-go disjunction.

    Yielding reuses the single-vehicle approach law against the first
    future merged window.
    """

    def __init__(
        self,
        geometry: LeftTurnGeometry,
        limits: VehicleLimits,
        window_estimator: PassingWindowEstimator,
        config: ExpertConfig,
        oncoming_indices: Sequence[int],
    ) -> None:
        from repro.planners.expert import LeftTurnExpertPlanner

        if not oncoming_indices:
            raise ScenarioError("at least one oncoming vehicle required")
        self._geometry = geometry
        self._limits = limits
        self._windows = window_estimator
        self._config = config
        self._indices = tuple(oncoming_indices)
        # Reuse the single-vehicle expert for the yield law.
        self._single = LeftTurnExpertPlanner(
            geometry=geometry,
            limits=limits,
            window_estimator=window_estimator,
            config=config,
        )

    @property
    def config(self) -> ExpertConfig:
        """Behaviour parameters."""
        return self._config

    def merged_conflicts(
        self, estimates: Mapping[int, FusedEstimate]
    ) -> List[Interval]:
        """The platoon's merged conflict windows."""
        return merge_windows(
            [self._windows.window(estimates[i]) for i in self._indices]
        )

    def plan(self, context: PlanningContext) -> float:
        """One gap-acceptance decision."""
        merged = self.merged_conflicts(context.estimates)
        time = context.time
        position = context.ego.position
        velocity = max(context.ego.velocity, 0.0)

        if position > self._geometry.p_front:
            # Committed/inside: keep going (the monitor guards).
            return self._go(velocity)

        future = [w for w in merged if w.hi > time]
        if not future or self._gap_fits(time, position, velocity, future):
            return self._go(velocity)

        # Yield toward the line, pacing off the first future window.
        return self._single.plan_from_window(
            time, position, velocity, future[0]
        )

    # ------------------------------------------------------------------
    def _gap_fits(
        self,
        time: float,
        position: float,
        velocity: float,
        future: Sequence[Interval],
    ) -> bool:
        d_front = self._geometry.ego_distance_to_front(position)
        d_back = self._geometry.ego_distance_to_back(position)
        t_reach = earliest_arrival_time(
            d_front, velocity, self._limits.v_max, self._config.go_accel
        )
        t_clear = earliest_arrival_time(
            d_back, velocity, self._limits.v_max, self._config.go_accel
        )
        crossing = Interval(
            time + t_reach, time + t_clear + self._config.entry_margin
        )
        return not any(crossing.overlaps(w) for w in future)

    def _go(self, velocity: float) -> float:
        cap = min(self._config.cruise_speed, self._limits.v_max)
        if velocity >= cap:
            return 0.0
        return self._config.go_accel


@dataclass(frozen=True)
class MultiOncomingLeftTurnScenario:
    """Unprotected left turn against a platoon of oncoming vehicles.

    Vehicles 1..n are staggered ``spacing`` metres apart behind the
    lead vehicle's sampled start position, each driving its own random
    acceleration sequence.
    """

    n_oncoming: int = 2
    spacing: float = 25.0
    geometry: LeftTurnGeometry = field(default_factory=LeftTurnGeometry)
    ego_limits: VehicleLimits = DEFAULT_EGO_LIMITS
    oncoming_limits: VehicleLimits = DEFAULT_ONCOMING_LIMITS
    dt_c: float = 0.05
    ego_start: Tuple[float, float] = (-30.0, 10.0)
    lead_start_positions: Tuple[float, ...] = tuple(
        50.5 + 0.5 * j for j in range(20)
    )
    oncoming_start_speed_range: Tuple[float, float] = (9.0, 14.0)
    profile_accel_range: Tuple[float, float] = (-2.0, 2.0)

    def __post_init__(self) -> None:
        if self.n_oncoming < 1:
            raise ScenarioError("n_oncoming must be >= 1")
        check_positive(self.spacing, "spacing")
        check_positive(self.dt_c, "dt_c")

    # ------------------------------------------------------------------
    # Scenario protocol
    # ------------------------------------------------------------------
    @property
    def n_vehicles(self) -> int:
        """Ego plus the platoon."""
        return 1 + self.n_oncoming

    @property
    def oncoming_indices(self) -> Tuple[int, ...]:
        """Vehicle indices of the platoon."""
        return tuple(range(1, self.n_vehicles))

    def vehicle_limits(self, index: int) -> VehicleLimits:
        """Ego limits for index 0, shared oncoming limits otherwise."""
        if index == 0:
            return self.ego_limits
        if 1 <= index < self.n_vehicles:
            return self.oncoming_limits
        raise ScenarioError(f"no vehicle with index {index}")

    def initial_state(self, rng: RngStream) -> SystemState:
        """Lead start from the paper's pool; followers staggered behind."""
        lead = float(rng.choice(list(self.lead_start_positions)))
        vehicles = [
            VehicleState(
                position=self.ego_start[0], velocity=self.ego_start[1]
            )
        ]
        for k in range(self.n_oncoming):
            speed = float(rng.uniform(*self.oncoming_start_speed_range))
            vehicles.append(
                VehicleState(
                    position=lead + k * self.spacing, velocity=-speed
                )
            )
        return SystemState(time=0.0, vehicles=tuple(vehicles))

    def profile_for(self, index: int, rng: RngStream) -> AccelerationProfile:
        """Independent random acceleration sequence per platoon member."""
        if not 1 <= index < self.n_vehicles:
            raise ScenarioError(f"vehicle {index} has no behaviour profile")
        lo, hi = self.profile_accel_range
        return RandomSequenceProfile(rng, a_low=lo, a_high=hi)

    def is_collision(self, state: SystemState) -> bool:
        """The ego shares the area with any platoon member."""
        if not self.geometry.ego_inside(state.ego.position):
            return False
        return any(
            self.geometry.oncoming_inside(state.vehicle(i).position)
            for i in self.oncoming_indices
        )

    def reached_target(self, state: SystemState) -> bool:
        """The ego completed the turn."""
        return self.geometry.ego_reached_target(state.ego.position)

    def safety_model(self) -> SafetyModel:
        """The disjunctive per-vehicle safety model."""
        return MultiOncomingSafetyModel(
            geometry=self.geometry,
            ego_limits=self.ego_limits,
            oncoming_limits=self.oncoming_limits,
            dt_c=self.dt_c,
            oncoming_indices=self.oncoming_indices,
        )

    def emergency_planner(self) -> Planner:
        """The (vehicle-independent) Section-IV emergency planner."""
        return LeftTurnEmergencyPlanner(self.geometry, self.ego_limits)

    def gap_expert(
        self, aggressive: bool = False, config: ExpertConfig | None = None
    ) -> GapAcceptanceExpert:
        """A ready-made gap-acceptance expert for this platoon."""
        estimator = PassingWindowEstimator(
            geometry=self.geometry,
            limits=self.oncoming_limits,
            aggressive=aggressive,
        )
        if config is None:
            config = (
                ExpertConfig.aggressive()
                if aggressive
                else ExpertConfig.conservative()
            )
        return GapAcceptanceExpert(
            geometry=self.geometry,
            limits=self.ego_limits,
            window_estimator=estimator,
            config=config,
            oncoming_indices=self.oncoming_indices,
        )
