"""The left-turn emergency planner (Section IV, "Emergency planner").

The law is:

.. math::

    \\kappa_e(x(t)) = \\begin{cases}
        -\\dfrac{v_0(t)^2}{2 (p_f - p_0(t))}, & p_0(t) \\le p_f;\\\\
        a_{0,max}, & \\text{otherwise.}
    \\end{cases}

Before the front line it brakes with exactly the force needed to stop at
the line (the *least* braking that still guarantees never entering the
area); past the line it floors the throttle to escape the area as fast as
possible.  Whenever the runtime monitor selects it from inside the
boundary safe set — where the slack is still nonnegative, i.e. stopping
before the line is still feasible — the required deceleration is within
the actuation limits, which is the Eq. (4) invariant the property tests
check.

Numerical guards: at ``p_0 = p_f`` the formula divides by zero; this
implementation commands full braking there (the slack-nonnegative
precondition implies ``v_0 = 0`` at that point, so full braking is a safe
refinement), and all commands are clipped to the actuation limits.
"""

from __future__ import annotations

from repro.dynamics.vehicle import VehicleLimits
from repro.planners.base import PlanningContext
from repro.scenarios.left_turn.geometry import LeftTurnGeometry

__all__ = ["LeftTurnEmergencyPlanner"]


class LeftTurnEmergencyPlanner:
    """Stop before the unsafe area, or escape it at full throttle.

    Parameters
    ----------
    geometry, limits:
        Scenario geometry and ego actuation limits.
    stop_margin:
        Distance before the front line the braking branch targets
        (metres).  The paper's law stops *exactly at* the line; a small
        positive margin keeps the discrete implementation strictly
        outside the (open) unsafe area under floating-point roundoff.
        Eq. (4) is only strengthened by it.
    """

    def __init__(
        self,
        geometry: LeftTurnGeometry,
        limits: VehicleLimits,
        stop_margin: float = 0.05,
    ) -> None:
        if stop_margin < 0.0:
            raise ValueError(f"stop_margin must be >= 0, got {stop_margin}")
        self._geometry = geometry
        self._limits = limits
        self._stop_margin = float(stop_margin)

    @property
    def geometry(self) -> LeftTurnGeometry:
        """The scenario geometry the planner protects."""
        return self._geometry

    @property
    def stop_margin(self) -> float:
        """Target distance before the front line when braking."""
        return self._stop_margin

    def plan(self, context: PlanningContext) -> float:
        """Apply the (extended) Section-IV emergency law.

        The paper's law assumes invocation from the boundary safe set,
        where stopping before the line is feasible.  This implementation
        extends the escape branch to *committed* states — negative slack,
        i.e. entering the area is already unavoidable — where braking
        would only stretch the ego's exposure inside the area: there the
        right move is full throttle, exactly as past the front line.
        """
        position = context.ego.position
        velocity = max(context.ego.velocity, 0.0)
        front_gap = self._geometry.ego_distance_to_front(position)
        if front_gap > 0.0:
            braking_distance = (
                -0.5 * velocity * velocity / self._limits.a_min
            )
            if braking_distance > front_gap:
                # Committed (negative slack): escape forward.
                return self._limits.a_max
            if velocity == 0.0:
                return 0.0  # already stopped before the line: hold
            target_gap = front_gap - self._stop_margin
            if target_gap <= 0.0:
                # Inside the margin band: brake as hard as possible.
                return self._limits.a_min
            required = -velocity * velocity / (2.0 * target_gap)
            return self._limits.clip_acceleration(required)
        if front_gap == 0.0:
            # At the line exactly; if still moving, brake as hard as
            # possible (see module docstring).
            return self._limits.a_min if velocity > 0.0 else 0.0
        return self._limits.a_max
