"""Geometry and kinematic algebra of the unprotected left turn.

Figure 4 of the paper: the ego vehicle ``C_0`` turns left across the path
of an oncoming vehicle ``C_1``; a collision happens iff both vehicles
occupy the *unsafe area* (the conflict rectangle) at the same time.  Both
paths are fixed, so each vehicle lives in its own 1-D longitudinal
coordinate and the geometry reduces to, per vehicle, the *distance to the
front line* and the *distance to the back line* of the unsafe area along
its direction of travel.

The ego's coordinate increases toward the area (``p_f = 5 m`` front,
``p_b = 15 m`` back in the paper's experiments).  The oncoming vehicle
approaches from the other side; :class:`LeftTurnGeometry` maps its global
position to the same distance-to-go form so all passing-time algebra is
shared.

Two kinematic primitives underpin every window computation:

* :func:`earliest_arrival_time` — minimum time to cover a distance under
  an acceleration limit and a velocity cap (full throttle, then cruise);
* :func:`latest_arrival_time` — maximum time, i.e. braking toward the
  velocity floor (infinite when the vehicle can stop before arriving).

.. note::
   Eq. (7) of the paper prints the no-cap branch as
   ``(-v + sqrt(v^2 + a (p_f - p1)))/a``.  Solving ``d = v t + a t^2 / 2``
   actually gives ``(-v + sqrt(v^2 + 2 a d))/a``; the missing factor 2 is
   a typo in the paper (the ``d_th`` threshold in the same equation is
   consistent with the factor-2 physics).  This module implements the
   physically correct form, which EXPERIMENTS.md records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ScenarioError
from repro.utils.intervals import Interval
from repro.utils.validation import check_positive

__all__ = [
    "LeftTurnGeometry",
    "earliest_arrival_time",
    "latest_arrival_time",
    "traversal_window",
]

#: Times beyond this horizon are treated as "never" in window algebra.
NEVER = math.inf


def earliest_arrival_time(
    distance: float, velocity: float, v_cap: float, a_cap: float
) -> float:
    """Minimum time to cover ``distance`` from speed ``velocity``.

    The minimising strategy accelerates at ``a_cap`` until the velocity
    cap ``v_cap`` and cruises at the cap afterwards — the strategy behind
    ``tau_{1,min}`` in Eq. (7).

    Units: distance [m], velocity [m/s], v_cap [m/s], a_cap [m/s^2] -> [s]

    Parameters
    ----------
    distance:
        Distance to go, metres.  Nonpositive distances return 0 (already
        arrived).
    velocity:
        Current speed along the direction of travel, m/s (clipped below
        at 0).
    v_cap:
        Velocity cap, m/s (> 0).
    a_cap:
        Acceleration limit, m/s² (>= 0; 0 means constant speed).

    Returns
    -------
    float
        The earliest arrival delay (seconds; ``inf`` if unreachable, e.g.
        zero speed and zero acceleration).
    """
    check_positive(v_cap, "v_cap")
    if a_cap < 0.0:
        raise ScenarioError(f"a_cap must be >= 0, got {a_cap}")
    if distance <= 0.0:
        return 0.0
    v = max(0.0, min(velocity, v_cap))
    if a_cap == 0.0:
        if v <= 0.0:
            return NEVER
        return distance / v
    d_th = (v_cap * v_cap - v * v) / (2.0 * a_cap)
    if distance > d_th:
        # Reach the cap, then cruise (first branch of Eq. (7)).
        return (v_cap - v) / a_cap + (distance - d_th) / v_cap
    # Arrive while still accelerating (second branch, factor-2 corrected).
    return (-v + math.sqrt(v * v + 2.0 * a_cap * distance)) / a_cap


def latest_arrival_time(
    distance: float, velocity: float, v_floor: float, a_floor: float
) -> float:
    """Maximum time to cover ``distance`` from speed ``velocity``.

    The maximising strategy brakes at ``a_floor`` (a negative
    acceleration) down to the velocity floor ``v_floor`` and crawls at the
    floor afterwards — the strategy behind ``tau_{1,max}``.  If the floor
    is zero (the vehicle may stop before arriving) the latest arrival is
    ``inf``.

    Units: distance [m], velocity [m/s], v_floor [m/s], a_floor [m/s^2]
    Units: -> [s]

    Parameters
    ----------
    distance:
        Distance to go, metres.  Nonpositive distances return 0.
    velocity:
        Current speed, m/s (clipped below at ``v_floor``).
    v_floor:
        Velocity floor, m/s (>= 0).
    a_floor:
        Most negative acceleration, m/s² (<= 0; 0 means constant speed).
    """
    if v_floor < 0.0:
        raise ScenarioError(f"v_floor must be >= 0, got {v_floor}")
    if a_floor > 0.0:
        raise ScenarioError(f"a_floor must be <= 0, got {a_floor}")
    if distance <= 0.0:
        return 0.0
    v = max(velocity, v_floor)
    if a_floor == 0.0:
        if v <= 0.0:
            return NEVER
        return distance / v
    decel = -a_floor
    if v_floor == 0.0:
        # Can the vehicle stop before covering the distance?
        stop_distance = v * v / (2.0 * decel)
        if stop_distance < distance:
            return NEVER
        disc = v * v - 2.0 * decel * distance
        return (v - math.sqrt(max(disc, 0.0))) / decel
    d_th = (v * v - v_floor * v_floor) / (2.0 * decel)
    if distance > d_th:
        # Brake to the floor, then crawl.
        return (v - v_floor) / decel + (distance - d_th) / v_floor
    disc = v * v - 2.0 * decel * distance
    return (v - math.sqrt(max(disc, 0.0))) / decel


def arrival_time_under(
    distance: float,
    velocity: float,
    accel: float,
    v_hi: float,
    v_lo: float,
) -> float:
    """Time to cover ``distance`` applying a *constant* acceleration.

    Units: distance [m], velocity [m/s], accel [m/s^2]
    Units: v_hi [m/s], v_lo [m/s] -> [s]

    The velocity saturates inside ``[v_lo, v_hi]``.  This is the primitive
    behind the aggressive estimation of Eq. (8), where the assumed
    acceleration ``a_est = min(a_1(t) + a_buf, a_max)`` may have either
    sign: positive values reduce to :func:`earliest_arrival_time` with cap
    ``v_hi``, negative values to :func:`latest_arrival_time` with floor
    ``v_lo`` (including the "never arrives" case when the vehicle can stop
    short).

    Returns ``inf`` when the vehicle never covers the distance.
    """
    if v_lo > v_hi:
        raise ScenarioError(f"v_lo ({v_lo}) must be <= v_hi ({v_hi})")
    if distance <= 0.0:
        return 0.0
    v = max(v_lo, min(velocity, v_hi))
    if accel > 0.0:
        if v_hi <= 0.0:
            return NEVER
        return earliest_arrival_time(distance, v, v_hi, accel)
    if accel < 0.0:
        return latest_arrival_time(distance, v, max(v_lo, 0.0), accel)
    if v <= 0.0:
        return NEVER
    return distance / v


def traversal_window(
    d_front: float,
    d_back: float,
    velocity: float,
    v_cap: float,
    a_cap: float,
    v_floor: float,
    a_floor: float,
) -> Interval:
    """Possible occupancy window ``[tau_min, tau_max]`` of the unsafe area.

    ``tau_min`` is the earliest the vehicle can *enter* (reach the front
    line under the fastest strategy); ``tau_max`` the latest it can *exit*
    (clear the back line under the slowest strategy).  Distances are in
    metres along the vehicle's direction of travel (velocities in m/s,
    accelerations in m/s², times in seconds); a vehicle past its back line
    yields an empty window.  All times are relative delays (add the
    current timestamp to get absolute times).

    Units: d_front [m], d_back [m], velocity [m/s], v_cap [m/s]
    Units: a_cap [m/s^2], v_floor [m/s], a_floor [m/s^2] -> [s]
    """
    if d_back < d_front:
        raise ScenarioError(
            f"d_back ({d_back}) must be >= d_front ({d_front})"
        )
    if d_back <= 0.0:
        return Interval.EMPTY
    entry = earliest_arrival_time(d_front, velocity, v_cap, a_cap)
    exit_ = latest_arrival_time(d_back, velocity, v_floor, a_floor)
    if entry == NEVER:
        return Interval.EMPTY
    return Interval(entry, exit_)


@dataclass(frozen=True, slots=True)
class LeftTurnGeometry:
    """Positions of the unsafe area along both vehicles' paths.

    Attributes
    ----------
    p_front, p_back:
        Front and back lines of the unsafe area in the *ego's* coordinate
        (the ego coordinate increases toward and through the area); the
        paper uses 5 m and 15 m.
    oncoming_front, oncoming_back:
        The same two physical lines in the *oncoming vehicle's* global
        coordinate.  The oncoming vehicle drives in the direction of
        decreasing coordinate (it starts around +50 m and approaches), so
        its front line is the *larger* coordinate.  Defaults mirror the
        ego's area (the conflict rectangle is shared).
    p_target:
        Ego coordinate whose crossing completes the left turn (the target
        set of the problem formulation).

    Units: p_front [m], p_back [m], oncoming_front [m]
    Units: oncoming_back [m], p_target [m]
    """

    p_front: float = 5.0
    p_back: float = 15.0
    oncoming_front: float = 15.0
    oncoming_back: float = 5.0
    p_target: float = 20.0

    def __post_init__(self) -> None:
        if self.p_back <= self.p_front:
            raise ScenarioError(
                f"p_back ({self.p_back}) must exceed p_front ({self.p_front})"
            )
        if self.oncoming_back >= self.oncoming_front:
            raise ScenarioError(
                "oncoming_back must be below oncoming_front (the oncoming "
                "vehicle drives toward decreasing coordinates)"
            )
        if self.p_target < self.p_back:
            raise ScenarioError(
                f"p_target ({self.p_target}) must be at or past p_back "
                f"({self.p_back})"
            )

    # ------------------------------------------------------------------
    # Ego-side distances (coordinate increases along travel)
    # ------------------------------------------------------------------
    def ego_distance_to_front(self, position: float) -> float:
        """Signed distance from the ego to the front line (+ = before).

        Units: position [m] -> [m]
        """
        return self.p_front - position

    def ego_distance_to_back(self, position: float) -> float:
        """Signed distance from the ego to the back line (+ = before).

        Units: position [m] -> [m]
        """
        return self.p_back - position

    def ego_inside(self, position: float) -> bool:
        """Whether the ego occupies the unsafe area.

        The interior is *open*: a vehicle stopped exactly on the front
        line does not occupy the area.  This matches the paper's slack
        algebra, where ``s = 0`` (able to stop exactly at the line) is a
        safe state, and makes the emergency planner's stop-at-the-line
        limit behaviour safe.

        Units: position [m]
        """
        return self.p_front < position < self.p_back

    def ego_cleared(self, position: float) -> bool:
        """Whether the ego has fully passed the unsafe area.

        Units: position [m]
        """
        return position > self.p_back

    def ego_reached_target(self, position: float) -> bool:
        """Whether the ego completed the turn (target-set membership).

        Units: position [m]
        """
        return position >= self.p_target

    # ------------------------------------------------------------------
    # Oncoming-side distances (coordinate decreases along travel)
    # ------------------------------------------------------------------
    def oncoming_distance_to_front(self, position: float) -> float:
        """Signed travel distance from the oncoming vehicle to its front line.

        Units: position [m] -> [m]
        """
        return position - self.oncoming_front

    def oncoming_distance_to_back(self, position: float) -> float:
        """Signed travel distance from the oncoming vehicle to its back line.

        Units: position [m] -> [m]
        """
        return position - self.oncoming_back

    def oncoming_inside(self, position: float) -> bool:
        """Whether the oncoming vehicle occupies the unsafe area.

        Open interior, symmetric with :meth:`ego_inside`.

        Units: position [m]
        """
        return self.oncoming_back < position < self.oncoming_front

    def oncoming_cleared(self, position: float) -> bool:
        """Whether the oncoming vehicle has fully passed the unsafe area.

        Units: position [m]
        """
        return position < self.oncoming_back

    # ------------------------------------------------------------------
    # Collision ground truth
    # ------------------------------------------------------------------
    def collision(self, ego_position: float, oncoming_position: float) -> bool:
        """Both vehicles in the unsafe area at once (the paper's X_u).

        Units: ego_position [m], oncoming_position [m]
        """
        return self.ego_inside(ego_position) and self.oncoming_inside(
            oncoming_position
        )
