"""The complete unprotected-left-turn scenario object.

Wires the geometry, safety model and emergency planner of Section IV into
the :class:`repro.scenarios.base.Scenario` protocol, with the paper's
experimental initial conditions: the ego starts 30 m before the unsafe
area; the oncoming vehicle starts at a position drawn from
``{50.5 + 0.5 j | j = 0..19}`` (approaching, so with negative raw
velocity) and follows a random acceleration sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.unsafe_set import SafetyModel
from repro.dynamics.profiles import AccelerationProfile, RandomSequenceProfile
from repro.dynamics.state import SystemState, VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.errors import ScenarioError
from repro.planners.base import Planner
from repro.scenarios.left_turn.emergency import LeftTurnEmergencyPlanner
from repro.scenarios.left_turn.geometry import LeftTurnGeometry
from repro.scenarios.left_turn.unsafe_set import LeftTurnSafetyModel
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["LeftTurnScenario", "DEFAULT_EGO_LIMITS", "DEFAULT_ONCOMING_LIMITS"]

#: Ego limits used throughout the experiments: 20 m/s cap, 4 m/s² throttle,
#: 6 m/s² emergency braking.
DEFAULT_EGO_LIMITS = VehicleLimits(v_min=0.0, v_max=20.0, a_min=-6.0, a_max=4.0)

#: Oncoming-vehicle limits in *raw* coordinates (it travels toward
#: decreasing positions, so raw velocity lies in [-v_speed_max,
#: -v_speed_min]).  Speed between 2 and 20 m/s, |accel| up to 3 m/s².
DEFAULT_ONCOMING_LIMITS = VehicleLimits(
    v_min=-20.0, v_max=-2.0, a_min=-3.0, a_max=3.0
)


@dataclass(frozen=True)
class LeftTurnScenario:
    """Two-vehicle unprotected left turn per the paper's experiments.

    Attributes
    ----------
    geometry:
        Unsafe-area geometry (paper: area at ``[5, 15]`` m, target at
        20 m).
    ego_limits, oncoming_limits:
        Physical limits; the oncoming limits are in raw (decreasing-
        coordinate) form.
    dt_c:
        Control period (fixes the boundary-set margin).
    ego_start:
        Ego initial ``(position, velocity)``; the paper starts at
        ``-30 m`` (initial speed unreported; 10 m/s makes crossing
        *before* the oncoming vehicle kinematically feasible when that
        vehicle starts far and slow, which is the efficiency lever the
        aggressive unsafe-set estimation exploits).
    oncoming_start_positions:
        The pool the oncoming initial position is drawn from (paper:
        ``{50.5 + 0.5 j}``).
    oncoming_start_speed_range:
        Range the initial approach speed is drawn from (m/s, positive =
        toward the area).  The paper does not report the initial speed;
        a moderate urban range keeps the passing time genuinely
        uncertain across simulations.
    profile_accel_range:
        Bounds of the random acceleration sequence driving the oncoming
        vehicle (raw coordinates; must stay within its limits for the
        conservative window to be sound).
    """

    geometry: LeftTurnGeometry = field(default_factory=LeftTurnGeometry)
    ego_limits: VehicleLimits = DEFAULT_EGO_LIMITS
    oncoming_limits: VehicleLimits = DEFAULT_ONCOMING_LIMITS
    dt_c: float = 0.05
    ego_start: Tuple[float, float] = (-30.0, 10.0)
    oncoming_start_positions: Tuple[float, ...] = tuple(
        50.5 + 0.5 * j for j in range(20)
    )
    oncoming_start_speed_range: Tuple[float, float] = (9.0, 14.0)
    profile_accel_range: Tuple[float, float] = (-2.0, 2.0)

    def __post_init__(self) -> None:
        check_positive(self.dt_c, "dt_c")
        if not self.oncoming_start_positions:
            raise ScenarioError("oncoming_start_positions must be non-empty")
        lo, hi = self.profile_accel_range
        if lo < self.oncoming_limits.a_min or hi > self.oncoming_limits.a_max:
            raise ScenarioError(
                "profile_accel_range must lie within the oncoming limits "
                "(otherwise the conservative window is unsound)"
            )
        speed_lo, speed_hi = self.oncoming_start_speed_range
        if speed_lo > speed_hi:
            raise ScenarioError("oncoming_start_speed_range must be ordered")
        for speed in (speed_lo, speed_hi):
            if not (
                -self.oncoming_limits.v_max <= speed <= -self.oncoming_limits.v_min
            ):
                raise ScenarioError(
                    f"oncoming start speed {speed} outside the physical "
                    f"range [{-self.oncoming_limits.v_max}, "
                    f"{-self.oncoming_limits.v_min}]"
                )

    # ------------------------------------------------------------------
    # Scenario protocol
    # ------------------------------------------------------------------
    @property
    def n_vehicles(self) -> int:
        """Two: the ego and the oncoming vehicle."""
        return 2

    def vehicle_limits(self, index: int) -> VehicleLimits:
        """Ego limits for index 0, oncoming limits for index 1."""
        if index == 0:
            return self.ego_limits
        if index == 1:
            return self.oncoming_limits
        raise ScenarioError(f"no vehicle with index {index}")

    def initial_state(self, rng: RngStream) -> SystemState:
        """Ego at its fixed start; oncoming position drawn from the pool."""
        p1 = float(rng.choice(list(self.oncoming_start_positions)))
        speed = float(rng.uniform(*self.oncoming_start_speed_range))
        ego = VehicleState(
            position=self.ego_start[0], velocity=self.ego_start[1]
        )
        oncoming = VehicleState(position=p1, velocity=-speed)
        return SystemState(time=0.0, vehicles=(ego, oncoming))

    def profile_for(self, index: int, rng: RngStream) -> AccelerationProfile:
        """The paper's random acceleration sequence for the oncoming car."""
        if index != 1:
            raise ScenarioError(f"vehicle {index} has no behaviour profile")
        lo, hi = self.profile_accel_range
        return RandomSequenceProfile(rng, a_low=lo, a_high=hi)

    def is_collision(self, state: SystemState) -> bool:
        """Both vehicles inside the unsafe area (the paper's ground truth)."""
        return self.geometry.collision(
            state.ego.position, state.vehicle(1).position
        )

    def reached_target(self, state: SystemState) -> bool:
        """The ego crossed the target line (left turn completed)."""
        return self.geometry.ego_reached_target(state.ego.position)

    def safety_model(self) -> SafetyModel:
        """Conservative safety model for the runtime monitor."""
        return LeftTurnSafetyModel(
            geometry=self.geometry,
            ego_limits=self.ego_limits,
            oncoming_limits=self.oncoming_limits,
            dt_c=self.dt_c,
        )

    def emergency_planner(self) -> Planner:
        """The Section-IV emergency planner."""
        return LeftTurnEmergencyPlanner(self.geometry, self.ego_limits)
