"""The unprotected left turn case study (Section IV of the paper)."""

from repro.scenarios.left_turn.geometry import (
    LeftTurnGeometry,
    earliest_arrival_time,
    latest_arrival_time,
)
from repro.scenarios.left_turn.passing_time import (
    PassingWindowEstimator,
    aggressive_window,
    conservative_window,
)
from repro.scenarios.left_turn.unsafe_set import LeftTurnSafetyModel
from repro.scenarios.left_turn.emergency import LeftTurnEmergencyPlanner
from repro.scenarios.left_turn.scenario import LeftTurnScenario

__all__ = [
    "LeftTurnGeometry",
    "earliest_arrival_time",
    "latest_arrival_time",
    "PassingWindowEstimator",
    "conservative_window",
    "aggressive_window",
    "LeftTurnSafetyModel",
    "LeftTurnEmergencyPlanner",
    "LeftTurnScenario",
]
