"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` from
misuse of numpy, etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent or invalid parameters.

    Examples: a negative time step, a sensor period that is not a multiple
    of the control period, velocity bounds with ``v_min > v_max``.
    """


class IntervalError(ReproError):
    """An interval operation received or produced an invalid interval."""


class EmptyIntervalError(IntervalError):
    """An operation that requires a non-empty interval got an empty one."""


class FilterError(ReproError):
    """The information filter reached an inconsistent internal state."""


class ReplayError(FilterError):
    """Message replay referenced a checkpoint that is not in the store."""


class PlannerError(ReproError):
    """A planner failed to produce a usable control decision."""


class PlannerFaultError(PlannerError):
    """An *injected* planner failure (see :mod:`repro.faults`).

    Raised by fault-injection wrappers to emulate a crashing planner
    process.  It derives from :class:`PlannerError` so the compound
    planner's containment path (fall back to the emergency planner)
    catches it like any genuine planner failure, while chaos tests can
    still distinguish injected faults from real ones.
    """


class TransientPlannerFaultError(PlannerFaultError):
    """An injected planner failure that may clear on retry.

    Models recoverable conditions — a timed-out RPC, a transient
    resource spike — that a caller with remaining deadline budget may
    retry once before degrading.  Subclasses
    :class:`PlannerFaultError`, so every legacy containment path
    (compound planner, engine watchdog) treats it exactly as before.
    """


class FatalPlannerFaultError(PlannerFaultError):
    """An injected planner failure that no retry can clear.

    Models a crashed or wedged planner process: retrying burns deadline
    budget for nothing, so callers that know about the taxonomy (the
    serve degradation ladder) must degrade to their shield action
    immediately.  Subclasses :class:`PlannerFaultError`, so legacy
    containment paths are unchanged.
    """


class ServeError(ReproError):
    """The decision server was misconfigured or received a bad request.

    Malformed observations never raise out of the request loop — they
    degrade to a safe braking response — but programmatic misuse of the
    serve API (invalid limits, a non-finite deadline) surfaces as this.
    """


class FaultInjectionError(ReproError):
    """A fault plan is inconsistent or was applied to an unsupported hook."""


class TrainingError(ReproError):
    """Neural-network training could not complete."""


class SerializationError(ReproError):
    """Saving or loading a model or result record failed."""


class SimulationError(ReproError):
    """The closed-loop simulation engine reached an invalid state."""


class ScenarioError(ReproError):
    """A scenario definition is inconsistent (e.g. unsafe area reversed)."""


class CampaignError(ReproError):
    """A durable campaign could not be started, resumed, or verified."""


class FingerprintMismatchError(CampaignError):
    """The manifest on disk no longer matches the journaled fingerprint.

    Resuming a campaign whose manifest changed would silently mix results
    from two different workloads; the resume is refused instead.  Start a
    fresh campaign directory for the new manifest.
    """


class JournalCorruptionError(CampaignError):
    """The write-ahead journal is damaged beyond the torn-tail case.

    A *torn tail* — a final record cut short by a crash mid-write — is
    expected and silently truncated on resume.  Damage anywhere else
    (checksum mismatch, out-of-sequence record, invalid JSON followed by
    further records) means the file was edited or the storage corrupted,
    and is surfaced instead of guessed around.
    """


class SloError(ReproError):
    """An SLO specification is invalid or cannot be evaluated.

    Raised for malformed spec files (unknown rule types, missing
    fields) and for documents whose shape no adapter recognises.  Rule
    *violations* are never exceptions — they are report entries the
    ``repro-obs slo check`` gate turns into an exit code.
    """


class LintError(ReproError):
    """The safelint static-analysis pass could not run as configured.

    Examples: an unreadable baseline file, an unknown rule id passed to
    ``--select``, a path that is neither a file nor a directory.  Rule
    *findings* are never exceptions — they are data (see
    :mod:`repro.lint.findings`).
    """


class SafetyViolationError(SimulationError):
    """Raised (optionally) when a planner that promised safety entered X_u.

    The simulation engine normally *records* violations rather than raising
    so that unsafe baselines (the pure aggressive NN planner of Table II)
    can be evaluated.  Strict mode turns a violation by a compound planner
    into this exception, because that would falsify the paper's theorem and
    indicates a bug in the monitor or emergency planner.
    """
