"""Paper reproduction harnesses: one module per table/figure.

Every module is runnable (``python -m repro.experiments.table1``) and is
also what the pytest benchmarks call, so the numbers in EXPERIMENTS.md
can be regenerated either way.
"""

from repro.experiments.config import ExperimentConfig, PAPER
from repro.experiments.harness import PlannerTrio, run_setting

__all__ = ["ExperimentConfig", "PAPER", "PlannerTrio", "run_setting"]
