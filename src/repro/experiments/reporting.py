"""Plain-text rendering of tables and figure series.

The paper's artifacts are regenerated as aligned text tables (one row
per configuration, one block per setting) and as x/y series tables for
the figures, so the whole reproduction is legible in a terminal and in
EXPERIMENTS.md without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.experiments.harness import SettingRow

__all__ = ["format_value", "render_table_rows", "render_series"]


def format_value(value: Optional[float], kind: str) -> str:
    """One cell: seconds, percentage, eta, or missing."""
    if value is None:
        return "-"
    if isinstance(value, float) and math.isnan(value):
        return "n/a"
    if kind == "seconds":
        return f"{value:.3f}s"
    if kind == "percent":
        return f"{100.0 * value:.2f}%"
    if kind == "eta":
        return f"{value:+.3f}"
    raise ValueError(f"unknown cell kind {kind!r}")


def render_table_rows(rows: Sequence[SettingRow], title: str) -> str:
    """Render table rows in the paper's column layout."""
    header = (
        f"{'setting':<18} {'planner':<9} {'reaching':>9} {'safe':>8} "
        f"{'eta':>7} {'winning':>8} {'emergency':>10}"
    )
    lines: List[str] = [title, header, "-" * len(header)]
    for row in rows:
        stats = row.stats
        lines.append(
            f"{row.setting:<18} {row.planner_type:<9} "
            f"{format_value(stats.mean_reaching_time, 'seconds'):>9} "
            f"{format_value(stats.safe_rate, 'percent'):>8} "
            f"{format_value(stats.mean_eta, 'eta'):>7} "
            f"{format_value(row.ultimate_wins, 'percent'):>8} "
            f"{format_value(stats.mean_emergency_frequency, 'percent'):>10}"
        )
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Iterable[float],
    columns: dict,
) -> str:
    """Render a figure as an x/series table.

    Parameters
    ----------
    title:
        Heading line.
    x_label:
        Name of the swept parameter.
    xs:
        The sweep values.
    columns:
        Mapping of series name to list of y values (same length as
        ``xs``).
    """
    xs = list(xs)
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(columns[name])} points, "
                f"expected {len(xs)}"
            )
    header = f"{x_label:>12} " + " ".join(f"{name:>12}" for name in names)
    lines = [title, header, "-" * len(header)]
    for i, x in enumerate(xs):
        cells = " ".join(
            f"{columns[name][i]:>12.4f}"
            if not math.isnan(columns[name][i])
            else f"{'n/a':>12}"
            for name in names
        )
        lines.append(f"{x:>12.4g} {cells}")
    return "\n".join(lines)
