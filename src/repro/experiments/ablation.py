"""Ablation: decompose the ultimate planner's gain into its two techniques.

Figure 1 of the paper sketches four compound designs between "basic" and
"ultimate":

* **basic** — raw estimates, conservative window to the NN (Fig. 1c);
* **filter-only** — information filter on, conservative window (Fig. 1d);
* **aggressive-only** — raw estimates, aggressive window (Fig. 1e);
* **ultimate** — both techniques (Fig. 1f).

The paper evaluates only the endpoints; this harness fills in the
middle so the contribution of each technique is measurable.  Expected
shape: both single-technique variants land between basic and ultimate
on mean eta, with the aggressive window dominating when communication
is good (estimates are tight anyway) and the filter dominating when it
is poor.

Run with ``python -m repro.experiments.ablation [--sims N]``.
"""

from __future__ import annotations

import argparse
from typing import Dict

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.experiments.config import SETTING_NAMES, ExperimentConfig
from repro.experiments.harness import trained_spec
from repro.experiments.reporting import format_value
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.results import AggregateStats
from repro.sim.runner import BatchRunner, EstimatorKind

__all__ = ["VARIANTS", "run_ablation", "render_ablation", "main"]

#: Variant name -> (information filter on?, aggressive window on?).
VARIANTS: Dict[str, tuple] = {
    "basic": (False, False),
    "filter_only": (True, False),
    "aggressive_only": (False, True),
    "ultimate": (True, True),
}


def run_ablation(
    style: str,
    setting: str,
    config: ExperimentConfig,
) -> Dict[str, AggregateStats]:
    """Run the four variants on identical workloads; aggregate each."""
    scenario = config.scenario()
    spec = trained_spec(style, config)
    engine = SimulationEngine(
        scenario,
        config.comm_setting(setting),
        SimulationConfig(max_time=config.max_time, record_trajectories=False),
    )

    results: Dict[str, AggregateStats] = {}
    for name, (use_filter, use_aggressive) in VARIANTS.items():
        estimator = PassingWindowEstimator(
            geometry=scenario.geometry,
            limits=scenario.oncoming_limits,
            aggressive=use_aggressive,
            a_buf=config.a_buf,
            v_buf=config.v_buf,
        )
        planner = CompoundPlanner(
            nn_planner=spec.build_planner(estimator, scenario.ego_limits),
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )
        kind = EstimatorKind.FILTERED if use_filter else EstimatorKind.RAW
        batch = BatchRunner(engine, kind).run_batch(
            planner, config.n_sims, seed=config.seed
        )
        results[name] = AggregateStats.from_results(batch)
    return results


def render_ablation(
    by_setting: Dict[str, Dict[str, AggregateStats]], style: str
) -> str:
    """The ablation grid as a text table."""
    header = (
        f"{'setting':<18} {'variant':<16} {'reaching':>9} {'safe':>8} "
        f"{'eta':>7} {'emergency':>10}"
    )
    lines = [
        f"Ablation ({style} NN planner): information filter vs "
        f"aggressive window",
        header,
        "-" * len(header),
    ]
    for setting, variants in by_setting.items():
        for name, stats in variants.items():
            lines.append(
                f"{setting:<18} {name:<16} "
                f"{format_value(stats.mean_reaching_time, 'seconds'):>9} "
                f"{format_value(stats.safe_rate, 'percent'):>8} "
                f"{format_value(stats.mean_eta, 'eta'):>7} "
                f"{format_value(stats.mean_emergency_frequency, 'percent'):>10}"
            )
    return "\n".join(lines)


def main(argv=None) -> str:
    """CLI entry point: the full ablation grid for both styles."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=None)
    parser.add_argument(
        "--style", default="conservative", choices=("conservative", "aggressive")
    )
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.sims is not None:
        config = config.with_sims(args.sims)
    by_setting = {
        setting: run_ablation(args.style, setting, config)
        for setting in SETTING_NAMES
    }
    text = render_ablation(by_setting, args.style)
    print(text)
    return text


if __name__ == "__main__":
    main()
