"""Figure 5: reaching time and emergency frequency vs disturbance severity.

Three sweeps over the conservative planner family (the figure's caption:
``kappa_{n,cons}``, ``kappa_{cb,cons}``, ``kappa_{cu,cons}``):

* **5a/5b** — transmission time step ``dt_m = dt_s`` (no drops/delay);
* **5c/5d** — message drop probability ``p_d`` (fixed delay 0.25 s);
* **5e/5f** — sensor uncertainty ``delta`` (messages always lost).

Shapes the harness must reproduce: reaching time grows with every kind
of disturbance for all planners; the ultimate compound planner stays
fastest with the gap widening as disturbance grows; emergency frequency
rises with disturbance and is highest for the ultimate planner (it rides
the monitor by design).

Run with ``python -m repro.experiments.figure5 [--sims N]``.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.comm.disturbance import (
    messages_delayed,
    messages_lost,
    no_disturbance,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_trio
from repro.experiments.reporting import render_series
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup
from repro.sim.results import AggregateStats

__all__ = [
    "TRANSMISSION_STEPS",
    "DROP_PROBABILITIES",
    "SENSOR_DELTAS",
    "sweep_transmission",
    "sweep_drop",
    "sweep_sensor",
    "main",
]

#: Default sweep grids (subsampled from the paper's 20-point grids; the
#: full grids are a CLI/constructor choice away).
TRANSMISSION_STEPS: Tuple[float, ...] = (0.1, 0.2, 0.4, 0.8, 1.6)
DROP_PROBABILITIES: Tuple[float, ...] = (0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9)
SENSOR_DELTAS: Tuple[float, ...] = (1.0, 1.6, 2.2, 2.8, 3.4, 4.0, 4.6)

#: Series produced per sweep point.
SweepResult = Dict[str, Dict[str, List[float]]]


def _collect(
    style: str,
    comms: Sequence[CommSetup],
    config: ExperimentConfig,
) -> SweepResult:
    """Run the trio at each sweep point; collect both figure series."""
    reaching: Dict[str, List[float]] = {"pure": [], "basic": [], "ultimate": []}
    emergency: Dict[str, List[float]] = {"basic": [], "ultimate": []}
    for comm in comms:
        batches = run_trio(style, comm, config)
        for name in reaching:
            stats = AggregateStats.from_results(batches[name])
            reaching[name].append(stats.mean_reaching_time)
        for name in emergency:
            stats = AggregateStats.from_results(batches[name])
            emergency[name].append(stats.mean_emergency_frequency)
    return {"reaching_time": reaching, "emergency_frequency": emergency}


def sweep_transmission(
    config: ExperimentConfig,
    steps: Sequence[float] = TRANSMISSION_STEPS,
) -> SweepResult:
    """Fig. 5a/5b: sweep the transmission (and sensing) period."""
    comms = [
        CommSetup(
            dt_m=step,
            dt_s=step,
            disturbance=no_disturbance(),
            sensor_bounds=NoiseBounds.uniform_all(config.base_sensor_delta),
        )
        for step in steps
    ]
    return _collect("conservative", comms, config)


def sweep_drop(
    config: ExperimentConfig,
    probabilities: Sequence[float] = DROP_PROBABILITIES,
) -> SweepResult:
    """Fig. 5c/5d: sweep the message drop probability."""
    comms = [
        CommSetup(
            dt_m=config.dt_m,
            dt_s=config.dt_s,
            disturbance=messages_delayed(config.message_delay, p),
            sensor_bounds=NoiseBounds.uniform_all(config.base_sensor_delta),
        )
        for p in probabilities
    ]
    return _collect("conservative", comms, config)


def sweep_sensor(
    config: ExperimentConfig,
    deltas: Sequence[float] = SENSOR_DELTAS,
) -> SweepResult:
    """Fig. 5e/5f: sweep the sensor uncertainty with messages lost."""
    comms = [
        CommSetup(
            dt_m=config.dt_m,
            dt_s=config.dt_s,
            disturbance=messages_lost(),
            sensor_bounds=NoiseBounds.uniform_all(delta),
        )
        for delta in deltas
    ]
    return _collect("conservative", comms, config)


def render_sweep(
    title_prefix: str,
    x_label: str,
    xs: Sequence[float],
    sweep: SweepResult,
    charts: bool = True,
) -> str:
    """Both panels of one sweep as text tables (plus terminal charts)."""
    parts = [
        render_series(
            f"{title_prefix}: reaching time (s)",
            x_label,
            xs,
            sweep["reaching_time"],
        ),
        render_series(
            f"{title_prefix}: emergency frequency",
            x_label,
            xs,
            sweep["emergency_frequency"],
        ),
    ]
    if charts and len(xs) >= 2:
        from repro.analysis.text_plot import line_chart

        parts.append(
            line_chart(
                xs,
                sweep["reaching_time"],
                width=56,
                height=10,
                title=f"{title_prefix} (chart): reaching time vs {x_label}",
                y_label="reaching time (s)",
            )
        )
    return "\n\n".join(parts)


def main(argv=None) -> str:
    """CLI entry point: run and print all three sweeps."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=None, help="runs per point")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.sims is not None:
        config = config.with_sims(args.sims)
    # Sweep batches are per-point, so a smaller default is sensible.
    if args.sims is None:
        config = replace(config, n_sims=max(60, config.n_sims // 3))

    sections = [
        render_sweep(
            "Fig. 5a/5b",
            "dt_m=dt_s (s)",
            TRANSMISSION_STEPS,
            sweep_transmission(config),
        ),
        render_sweep(
            "Fig. 5c/5d",
            "drop prob",
            DROP_PROBABILITIES,
            sweep_drop(config),
        ),
        render_sweep(
            "Fig. 5e/5f",
            "sensor delta",
            SENSOR_DELTAS,
            sweep_sensor(config),
        ),
    ]
    text = "\n\n".join(sections)
    print(text)
    return text


if __name__ == "__main__":
    main()
