"""The paper's experimental constants (Section V) and this repo's defaults.

Paper parameters reproduced exactly:

* control period ``dt_c = 0.05 s``; ``dt_m = dt_s`` (0.1 s here);
* message delay ``dt_d = 0.25 s`` in the "messages delayed" setting;
* drop-probability sweep ``{0.05 j | j = 0..19}``;
* sensor-uncertainty sweep ``{1 + 0.2 j | j = 0..19}``;
* ego start ``p_0(0) = -30 m``; oncoming start pool ``{50.5 + 0.5 j}``;
* unsafe area ``[5, 15] m``.

Parameters the paper leaves unreported (initial speeds, NN architecture,
the representative ``p_d`` / ``delta`` of the table rows, the aggressive
buffers) are fixed here and recorded in EXPERIMENTS.md.  The paper runs
80 000 simulations per setting; the default here is a few hundred (the
shapes are stable well below 80 k) and scales up via ``n_sims``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.comm.disturbance import (
    DisturbanceModel,
    messages_delayed,
    messages_lost,
    no_disturbance,
)
from repro.planners.training_data import DemonstrationConfig
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup

__all__ = ["ExperimentConfig", "PAPER", "SETTING_NAMES"]

#: The three communication settings of Tables I/II, in paper order.
SETTING_NAMES = ("no_disturbance", "messages_delayed", "messages_lost")


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of the reproduction experiments.

    Attributes
    ----------
    dt_c, dt_m, dt_s:
        Periods; the paper fixes ``dt_c = 0.05`` and ``dt_m = dt_s``.
    message_delay:
        ``dt_d`` of the delayed setting.
    table_drop_probability:
        The representative ``p_d`` used for the table rows (the paper
        sweeps it in Fig. 5c/d but does not say which value the tables
        use; 0.3 here).
    base_sensor_delta:
        Sensor uncertainty of the no-disturbance and delayed settings
        (the sweep's smallest value, 1.0).
    lost_sensor_delta:
        Sensor uncertainty of the messages-lost table rows (2.0 here;
        swept in Fig. 5e/f).
    n_sims:
        Simulations per (setting, planner) cell.
    seed:
        Batch seed; identical workloads across planners for the paired
        winning-percentage statistic.
    training_seed, demo_config, epochs, hidden:
        NN planner training settings.
    a_buf, v_buf:
        Aggressive unsafe-set buffers (Eq. (8); "user-defined" in the
        paper).
    max_time:
        Simulation horizon.
    """

    dt_c: float = 0.05
    dt_m: float = 0.1
    dt_s: float = 0.1
    message_delay: float = 0.25
    table_drop_probability: float = 0.3
    base_sensor_delta: float = 1.0
    lost_sensor_delta: float = 2.0
    n_sims: int = 300
    seed: int = 2023
    training_seed: int = 7
    demo_config: DemonstrationConfig = field(
        default_factory=lambda: DemonstrationConfig(
            n_random=4000, n_rollouts=80
        )
    )
    epochs: int = 200
    hidden: int = 64
    a_buf: float = 0.5
    v_buf: float = 1.0
    max_time: float = 30.0

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def scenario(self) -> LeftTurnScenario:
        """The paper's left-turn scenario at this control period."""
        return LeftTurnScenario(dt_c=self.dt_c)

    def comm_setting(self, name: str) -> CommSetup:
        """One of the three table communication settings by name."""
        disturbances: Dict[str, Tuple[DisturbanceModel, float]] = {
            "no_disturbance": (no_disturbance(), self.base_sensor_delta),
            "messages_delayed": (
                messages_delayed(
                    self.message_delay, self.table_drop_probability
                ),
                self.base_sensor_delta,
            ),
            "messages_lost": (messages_lost(), self.lost_sensor_delta),
        }
        if name not in disturbances:
            raise KeyError(
                f"unknown setting {name!r}; expected one of {SETTING_NAMES}"
            )
        disturbance, delta = disturbances[name]
        return CommSetup(
            dt_m=self.dt_m,
            dt_s=self.dt_s,
            disturbance=disturbance,
            sensor_bounds=NoiseBounds.uniform_all(delta),
        )

    def with_sims(self, n_sims: int) -> "ExperimentConfig":
        """A copy with a different batch size."""
        from dataclasses import replace

        return replace(self, n_sims=n_sims)


#: The default configuration used by the benchmarks and EXPERIMENTS.md.
PAPER = ExperimentConfig()
