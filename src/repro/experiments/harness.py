"""Shared experiment harness: build the planner trio, run paired batches.

Tables I and II compare three configurations built around one trained
NN planner:

* **pure NN** (``kappa_n``) — the planner alone, on raw (unfiltered)
  estimates, consulting the window estimator it was trained with;
* **basic compound** (``kappa_cb``) — monitor + emergency planner, no
  information filter, the NN fed the *conservative* window;
* **ultimate compound** (``kappa_cu``) — monitor + emergency planner +
  information filter, the NN fed the *aggressive* window.

:func:`run_setting` executes all three on identical seeded workloads and
returns per-configuration rows with the paper's columns (reaching time
over safe runs, safe rate, mean eta, winning percentage of the ultimate,
emergency frequency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.experiments.config import ExperimentConfig
from repro.planners.base import Planner
from repro.planners.factory import TrainedPlannerSpec, train_left_turn_planner
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.results import (
    AggregateStats,
    SimulationResult,
    winning_percentage,
)
from repro.sim.runner import BatchRunner, EstimatorKind

__all__ = ["PlannerTrio", "SettingRow", "run_setting", "trained_spec"]

#: Process-wide cache of trained planners, keyed by (style, seed).
_SPEC_CACHE: Dict[tuple, TrainedPlannerSpec] = {}


def trained_spec(style: str, config: ExperimentConfig) -> TrainedPlannerSpec:
    """Train (or fetch from the in-process cache) a planner of a style."""
    key = (
        style,
        config.training_seed,
        config.epochs,
        config.hidden,
        config.demo_config,
        config.a_buf,
        config.v_buf,
    )
    if key not in _SPEC_CACHE:
        scenario = config.scenario()
        _SPEC_CACHE[key] = train_left_turn_planner(
            style,
            scenario.geometry,
            scenario.ego_limits,
            scenario.oncoming_limits,
            seed=config.training_seed,
            demo_config=config.demo_config,
            epochs=config.epochs,
            hidden=config.hidden,
            a_buf=config.a_buf,
            v_buf=config.v_buf,
        )
    return _SPEC_CACHE[key]


@dataclass
class PlannerTrio:
    """The three configurations of one table, ready to run."""

    style: str
    pure: Planner
    basic: Planner
    ultimate: Planner

    #: Estimator kind per configuration (paper design: the information
    #: filter belongs to the ultimate compound planner only).
    KINDS = {
        "pure": EstimatorKind.RAW,
        "basic": EstimatorKind.RAW,
        "ultimate": EstimatorKind.FILTERED,
    }

    def named(self) -> Dict[str, Planner]:
        """The trio as an ordered name -> planner mapping."""
        return {"pure": self.pure, "basic": self.basic, "ultimate": self.ultimate}


def build_trio(
    spec: TrainedPlannerSpec,
    scenario: LeftTurnScenario,
    config: ExperimentConfig,
) -> PlannerTrio:
    """Assemble the pure / basic / ultimate configurations of one spec."""
    conservative = PassingWindowEstimator(
        geometry=scenario.geometry,
        limits=scenario.oncoming_limits,
        aggressive=False,
    )
    aggressive = PassingWindowEstimator(
        geometry=scenario.geometry,
        limits=scenario.oncoming_limits,
        aggressive=True,
        a_buf=config.a_buf,
        v_buf=config.v_buf,
    )

    def compound(window_estimator: PassingWindowEstimator) -> CompoundPlanner:
        return CompoundPlanner(
            nn_planner=spec.build_planner(window_estimator, scenario.ego_limits),
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )

    return PlannerTrio(
        style=spec.style,
        pure=spec.natural_planner(scenario.ego_limits),
        basic=compound(conservative),
        ultimate=compound(aggressive),
    )


@dataclass
class SettingRow:
    """One table row: a configuration's aggregate under one setting."""

    setting: str
    planner_type: str
    stats: AggregateStats
    #: Fraction of paired runs the ultimate beats this configuration on
    #: eta (``None`` on the ultimate's own row, as in the paper).
    ultimate_wins: Optional[float]
    results: List[SimulationResult]


def run_trio(
    style: str,
    comm,
    config: ExperimentConfig,
    record_trajectories: bool = False,
) -> Dict[str, List[SimulationResult]]:
    """Run pure/basic/ultimate on an explicit communication setup.

    All three run on identical workloads (same batch seed), so paired
    statistics are exact.  This is the primitive behind both the table
    settings and the figure-5 sweeps.
    """
    scenario = config.scenario()
    spec = trained_spec(style, config)
    trio = build_trio(spec, scenario, config)
    engine = SimulationEngine(
        scenario,
        comm,
        SimulationConfig(
            max_time=config.max_time,
            record_trajectories=record_trajectories,
        ),
    )
    batches: Dict[str, List[SimulationResult]] = {}
    for name, planner in trio.named().items():
        runner = BatchRunner(engine, PlannerTrio.KINDS[name])
        batches[name] = runner.run_batch(planner, config.n_sims, seed=config.seed)
    return batches


def run_setting(
    style: str,
    setting: str,
    config: ExperimentConfig,
    record_trajectories: bool = False,
) -> List[SettingRow]:
    """Run pure/basic/ultimate on one of the named table settings."""
    batches = run_trio(
        style,
        config.comm_setting(setting),
        config,
        record_trajectories=record_trajectories,
    )
    rows: List[SettingRow] = []
    for name, results in batches.items():
        rows.append(
            SettingRow(
                setting=setting,
                planner_type=name,
                stats=AggregateStats.from_results(results),
                ultimate_wins=(
                    None
                    if name == "ultimate"
                    else winning_percentage(batches["ultimate"], results)
                ),
                results=results,
            )
        )
    return rows
