"""Sensitivity of the ultimate planner to its tuning knobs.

The paper leaves two groups of knobs "user-defined" without guidance:

* the aggressive buffers ``a_buf`` / ``v_buf`` of Eq. (8) — larger
  buffers make the aggressive window more conservative (wider), smaller
  buffers make it hug the observed behaviour;
* the Kalman confidence half-width ``n_sigma`` of the information
  filter's band.

This harness sweeps both around the defaults and reports mean eta,
reaching time, and emergency frequency.  Measured shape (see the
benchmark): safety is flat at 100 % across the whole grid — the
monitor, not the knobs, owns safety.  Efficiency moves gently: tiny
buffers produce the tightest windows but push the NN into the monitor
most often (emergency braking costs time), so for a *conservative*
embedded planner modestly larger buffers trade monitor chatter for a
slightly wider window at a small net gain; only far larger buffers
degenerate toward the conservative window.  Narrower Kalman bands
(smaller ``n_sigma``) consistently help.

Run with ``python -m repro.experiments.sensitivity [--sims N]``.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Sequence, Tuple

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import trained_spec
from repro.experiments.reporting import format_value
from repro.filtering.info_filter import InformationFilter
from repro.scenarios.left_turn.passing_time import PassingWindowEstimator
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.results import AggregateStats
from repro.sim.runner import BatchRunner, EstimatorKind

__all__ = [
    "BUFFER_GRID",
    "N_SIGMA_GRID",
    "sweep_buffers",
    "sweep_n_sigma",
    "render_sensitivity",
    "main",
]

#: ``(a_buf, v_buf)`` pairs swept around the defaults (0.5, 1.0).
BUFFER_GRID: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (0.25, 0.5),
    (0.5, 1.0),
    (1.0, 2.0),
    (2.0, 4.0),
)

#: Kalman band half-widths swept around the default 3.
N_SIGMA_GRID: Tuple[float, ...] = (1.0, 2.0, 3.0, 5.0)


def _run_ultimate(
    config: ExperimentConfig,
    a_buf: float,
    v_buf: float,
    n_sigma: float,
    setting: str,
) -> AggregateStats:
    """One ultimate-planner cell with explicit knob values."""
    scenario = config.scenario()
    spec = trained_spec("conservative", config)
    estimator = PassingWindowEstimator(
        geometry=scenario.geometry,
        limits=scenario.oncoming_limits,
        aggressive=True,
        a_buf=a_buf,
        v_buf=v_buf,
    )
    planner = CompoundPlanner(
        nn_planner=spec.build_planner(estimator, scenario.ego_limits),
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )
    comm = config.comm_setting(setting)
    engine = SimulationEngine(
        scenario,
        comm,
        SimulationConfig(max_time=config.max_time, record_trajectories=False),
    )

    def factory(index: int) -> InformationFilter:
        return InformationFilter(
            limits=scenario.vehicle_limits(index),
            sensor_bounds=comm.sensor_bounds,
            sensing_period=comm.dt_s,
            n_sigma=n_sigma,
        )

    runner = BatchRunner(engine, EstimatorKind.FILTERED)
    # Swap in the custom-n_sigma factory (BatchRunner builds the default
    # one; the engine API takes the factory per run).
    results = [
        engine.run(planner, factory, stream)
        for stream in _streams(config)
    ]
    return AggregateStats.from_results(results)


def _streams(config: ExperimentConfig):
    from repro.utils.rng import spawn_streams

    return spawn_streams(config.seed, config.n_sims)


def sweep_buffers(
    config: ExperimentConfig,
    grid: Sequence[Tuple[float, float]] = BUFFER_GRID,
    setting: str = "messages_lost",
) -> Dict[Tuple[float, float], AggregateStats]:
    """Sweep the Eq. (8) buffers at the default ``n_sigma``."""
    return {
        (a_buf, v_buf): _run_ultimate(config, a_buf, v_buf, 3.0, setting)
        for a_buf, v_buf in grid
    }


def sweep_n_sigma(
    config: ExperimentConfig,
    grid: Sequence[float] = N_SIGMA_GRID,
    setting: str = "messages_lost",
) -> Dict[float, AggregateStats]:
    """Sweep the Kalman confidence width at the default buffers."""
    return {
        n_sigma: _run_ultimate(
            config, config.a_buf, config.v_buf, n_sigma, setting
        )
        for n_sigma in grid
    }


def render_sensitivity(
    buffers: Dict[Tuple[float, float], AggregateStats],
    sigmas: Dict[float, AggregateStats],
) -> str:
    """Both sweeps as text tables."""
    lines: List[str] = [
        "Sensitivity of the ultimate compound planner (messages lost)",
        "",
        f"{'a_buf':>7} {'v_buf':>7} {'reaching':>9} {'safe':>8} "
        f"{'eta':>7} {'emergency':>10}",
    ]
    for (a_buf, v_buf), stats in buffers.items():
        lines.append(
            f"{a_buf:>7.2f} {v_buf:>7.2f} "
            f"{format_value(stats.mean_reaching_time, 'seconds'):>9} "
            f"{format_value(stats.safe_rate, 'percent'):>8} "
            f"{format_value(stats.mean_eta, 'eta'):>7} "
            f"{format_value(stats.mean_emergency_frequency, 'percent'):>10}"
        )
    lines.append("")
    lines.append(
        f"{'n_sigma':>7} {'reaching':>9} {'safe':>8} {'eta':>7} "
        f"{'emergency':>10}"
    )
    for n_sigma, stats in sigmas.items():
        lines.append(
            f"{n_sigma:>7.1f} "
            f"{format_value(stats.mean_reaching_time, 'seconds'):>9} "
            f"{format_value(stats.safe_rate, 'percent'):>8} "
            f"{format_value(stats.mean_eta, 'eta'):>7} "
            f"{format_value(stats.mean_emergency_frequency, 'percent'):>10}"
        )
    return "\n".join(lines)


def main(argv=None) -> str:
    """CLI entry point: run and print both sweeps."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=None)
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    config = config.with_sims(args.sims if args.sims else 100)
    text = render_sensitivity(
        sweep_buffers(config), sweep_n_sigma(config)
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
