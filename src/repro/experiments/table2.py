"""Table II: the aggressive NN planner and its compound planners.

Paper claims this harness must reproduce in *shape*:

* the pure aggressive NN planner is fast but collides in a large
  fraction of simulations (the paper reports ~40-44 % collisions);
* both compound planners are 100 % safe;
* the ultimate compound planner is faster than the basic one and wins
  the paired eta comparison in the great majority of simulations;
* emergency frequency is much higher than in the conservative family
  (the aggressive planner rides the monitor).

The reaching-time column counts *safe* runs only (the paper's ``*``
convention), so the pure planner is not rewarded for fast crashes.

Run with ``python -m repro.experiments.table2 [--sims N] [--seed S]``.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.experiments.config import SETTING_NAMES, ExperimentConfig
from repro.experiments.harness import SettingRow, run_setting
from repro.experiments.reporting import render_table_rows

__all__ = ["run_table2", "main"]


def run_table2(config: ExperimentConfig) -> Dict[str, List[SettingRow]]:
    """All three communication settings for the aggressive family."""
    return {
        setting: run_setting("aggressive", setting, config)
        for setting in SETTING_NAMES
    }


def render(table: Dict[str, List[SettingRow]]) -> str:
    """The full table as text."""
    rows = [row for setting_rows in table.values() for row in setting_rows]
    return render_table_rows(
        rows,
        "Table II - aggressive NN planner vs its compound planners "
        "(reaching time over safe runs only)",
    )


def main(argv=None) -> str:
    """CLI entry point; prints and returns the rendered table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=None, help="runs per cell")
    parser.add_argument("--seed", type=int, default=None, help="batch seed")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.sims is not None:
        config = config.with_sims(args.sims)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    text = render(run_table2(config))
    print(text)
    return text


if __name__ == "__main__":
    main()
