"""Table I: the conservative NN planner and its compound planners.

Paper claims this harness must reproduce in *shape*:

* all three configurations are 100 % safe;
* the basic compound planner's reaching time matches the pure NN
  planner's (no efficiency degradation from the monitor alone);
* the ultimate compound planner is distinctly faster (information
  filter + aggressive unsafe set) and wins the paired eta comparison in
  nearly every simulation;
* reaching time degrades and emergency frequency rises as the
  communication setting worsens.

Run with ``python -m repro.experiments.table1 [--sims N] [--seed S]``.
"""

from __future__ import annotations

import argparse
from typing import Dict, List

from repro.experiments.config import SETTING_NAMES, ExperimentConfig
from repro.experiments.harness import SettingRow, run_setting
from repro.experiments.reporting import render_table_rows

__all__ = ["run_table1", "main"]


def run_table1(config: ExperimentConfig) -> Dict[str, List[SettingRow]]:
    """All three communication settings for the conservative family."""
    return {
        setting: run_setting("conservative", setting, config)
        for setting in SETTING_NAMES
    }


def render(table: Dict[str, List[SettingRow]]) -> str:
    """The full table as text."""
    rows = [row for setting_rows in table.values() for row in setting_rows]
    return render_table_rows(
        rows,
        "Table I - conservative NN planner vs its compound planners",
    )


def main(argv=None) -> str:
    """CLI entry point; prints and returns the rendered table."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sims", type=int, default=None, help="runs per cell")
    parser.add_argument("--seed", type=int, default=None, help="batch seed")
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    if args.sims is not None:
        config = config.with_sims(args.sims)
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    text = render(run_table1(config))
    print(text)
    return text


if __name__ == "__main__":
    main()
