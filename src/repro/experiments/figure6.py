"""Figure 6: information-filter and aggressive-window effectiveness.

**6a** — the Kalman filter with message replay versus raw sensing: one
example velocity trace (true / measured / filtered) plus the RMSE of
position and velocity before and after the filter over a batch of
sampled oncoming-vehicle trajectories.  The paper reports the filter
cutting the position RMSE by 69 % and the velocity RMSE by 76 %; the
shape to reproduce is a large reduction in both.

**6b** — the conservative (Eq. (7)) versus aggressive (Eq. (8)) passing
window along one trajectory, against the true passing interval: the
aggressive window must be nested inside the conservative one and hug the
true passing times.

Run with ``python -m repro.experiments.figure6 [--trajectories N]``.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.comm.channel import Channel
from repro.comm.disturbance import messages_delayed
from repro.dynamics.profiles import RandomSequenceProfile
from repro.dynamics.vehicle import VehicleModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import render_series
from repro.filtering.kalman import KalmanFilter
from repro.filtering.replay import ReplayKalmanFilter
from repro.filtering.fusion import FusedEstimate
from repro.scenarios.left_turn.passing_time import (
    aggressive_window,
    conservative_window,
)
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sensing.sensor import Sensor
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream, spawn_streams

__all__ = ["FilterStudy", "run_filter_study", "run_window_study", "main"]


@dataclass
class FilterStudy:
    """Aggregate outcome of the figure-6a experiment."""

    n_trajectories: int
    rmse_position_raw: float
    rmse_position_filtered: float
    rmse_velocity_raw: float
    rmse_velocity_filtered: float
    #: One example trace: (times, true_v, measured_v, filtered_v).
    example: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

    @property
    def position_reduction(self) -> float:
        """Fractional RMSE reduction in position (paper: 0.69)."""
        return 1.0 - self.rmse_position_filtered / self.rmse_position_raw

    @property
    def velocity_reduction(self) -> float:
        """Fractional RMSE reduction in velocity (paper: 0.76)."""
        return 1.0 - self.rmse_velocity_filtered / self.rmse_velocity_raw


def _one_trajectory(
    config: ExperimentConfig,
    scenario: LeftTurnScenario,
    rng: RngStream,
    horizon: float,
) -> Tuple[np.ndarray, ...]:
    """Simulate one sensed+filtered trajectory of the oncoming vehicle.

    Returns arrays (per sensing instant): true p, true v, measured p,
    measured v, filtered p, filtered v, and the sample times.
    """
    bounds = NoiseBounds.uniform_all(config.lost_sensor_delta)
    init_rng, sensor_rng, channel_rng, profile_rng = rng.spawn(4)
    state = scenario.initial_state(init_rng).vehicle(1)
    model = VehicleModel(scenario.oncoming_limits)
    profile = RandomSequenceProfile(
        profile_rng, *scenario.profile_accel_range
    )
    sensor = Sensor(target=1, period=config.dt_s, bounds=bounds, rng=sensor_rng)
    channel = Channel(
        period=config.dt_m,
        disturbance=messages_delayed(config.message_delay, 0.3),
        rng=channel_rng,
    )
    rkf = ReplayKalmanFilter(KalmanFilter(config.dt_s, bounds))

    dt = config.dt_c
    n_steps = int(round(horizon / dt))
    sensor_every = int(round(config.dt_s / dt))
    message_every = int(round(config.dt_m / dt))

    rows = []
    for step in range(n_steps):
        t = step * dt
        accel = profile(step, t, state)
        stamped = state.with_acceleration(accel)
        if step % message_every == 0:
            channel.send(1, t, stamped)
        for message in channel.receive(t):
            rkf.on_message(message, t)
        if step % sensor_every == 0:
            reading = sensor.measure(t, stamped)
            posterior = rkf.on_sensor_reading(reading)
            rows.append(
                (
                    t,
                    stamped.position,
                    stamped.velocity,
                    reading.position,
                    reading.velocity,
                    posterior.position,
                    posterior.velocity,
                )
            )
        state = model.step(state, accel, dt)
    arr = np.asarray(rows)
    return tuple(arr[:, i] for i in range(arr.shape[1]))


def run_filter_study(
    config: ExperimentConfig,
    n_trajectories: int = 200,
    horizon: float = 8.0,
    seed: int = 60,
) -> FilterStudy:
    """Fig. 6a: RMSE before/after the filter over sampled trajectories."""
    scenario = config.scenario()
    sq_p_raw = sq_p_f = sq_v_raw = sq_v_f = 0.0
    count = 0
    example: Optional[Tuple[np.ndarray, ...]] = None
    for stream in spawn_streams(seed, n_trajectories):
        t, p, v, p_m, v_m, p_f, v_f = _one_trajectory(
            config, scenario, stream, horizon
        )
        if example is None:
            example = (t, v, v_m, v_f)
        sq_p_raw += float(np.sum((p_m - p) ** 2))
        sq_p_f += float(np.sum((p_f - p) ** 2))
        sq_v_raw += float(np.sum((v_m - v) ** 2))
        sq_v_f += float(np.sum((v_f - v) ** 2))
        count += len(t)
    assert example is not None
    return FilterStudy(
        n_trajectories=n_trajectories,
        rmse_position_raw=math.sqrt(sq_p_raw / count),
        rmse_position_filtered=math.sqrt(sq_p_f / count),
        rmse_velocity_raw=math.sqrt(sq_v_raw / count),
        rmse_velocity_filtered=math.sqrt(sq_v_f / count),
        example=example,
    )


# ----------------------------------------------------------------------
# Figure 6b
# ----------------------------------------------------------------------
def run_window_study(
    config: ExperimentConfig,
    seed: int = 61,
    horizon: float = 6.0,
    sample_every: float = 0.25,
) -> Dict[str, object]:
    """Fig. 6b: conservative vs aggressive windows along one trajectory.

    Both windows are computed from the *true* state (the paper's
    illustration assumes perfect information here), sampled every
    ``sample_every`` seconds; the true passing interval is read off the
    simulated trajectory.
    """
    scenario = config.scenario()
    stream = RngStream(seed)
    init_rng, profile_rng = stream.spawn(2)
    state = scenario.initial_state(init_rng).vehicle(1)
    model = VehicleModel(scenario.oncoming_limits)
    profile = RandomSequenceProfile(profile_rng, *scenario.profile_accel_range)
    geometry = scenario.geometry

    dt = config.dt_c
    n_steps = int(round(horizon / dt))
    stride = max(1, int(round(sample_every / dt)))

    times: List[float] = []
    series: Dict[str, List[float]] = {
        "cons_lo": [],
        "cons_hi": [],
        "aggr_lo": [],
        "aggr_hi": [],
    }
    true_entry: Optional[float] = None
    true_exit: Optional[float] = None

    for step in range(n_steps):
        t = step * dt
        accel = profile(step, t, state)
        stamped = state.with_acceleration(accel)
        if true_entry is None and geometry.oncoming_inside(stamped.position):
            true_entry = t
        if (
            true_entry is not None
            and true_exit is None
            and geometry.oncoming_cleared(stamped.position)
        ):
            true_exit = t
        if step % stride == 0 and not geometry.oncoming_cleared(
            stamped.position
        ):
            estimate = FusedEstimate(
                time=t,
                position=Interval.point(stamped.position),
                velocity=Interval.point(stamped.velocity),
                nominal=stamped,
                message_age=0.0,
            )
            cons = conservative_window(
                estimate, geometry, scenario.oncoming_limits
            )
            aggr = aggressive_window(
                estimate,
                geometry,
                scenario.oncoming_limits,
                config.a_buf,
                config.v_buf,
            )
            times.append(t)
            series["cons_lo"].append(cons.lo)
            series["cons_hi"].append(min(cons.hi, 60.0))
            series["aggr_lo"].append(aggr.lo)
            series["aggr_hi"].append(min(aggr.hi, 60.0))
        state = model.step(state, accel, dt)

    return {
        "times": times,
        "series": series,
        "true_entry": true_entry,
        "true_exit": true_exit,
    }


def render_filter_study(study: FilterStudy) -> str:
    """Fig. 6a as text: example trace plus the RMSE summary."""
    t, v_true, v_meas, v_filt = study.example
    stride = max(1, len(t) // 20)
    trace = render_series(
        "Fig. 6a example: measured vs filtered velocity (m/s)",
        "time (s)",
        t[::stride],
        {
            "true": list(v_true[::stride]),
            "measured": list(v_meas[::stride]),
            "filtered": list(v_filt[::stride]),
        },
    )
    summary = (
        f"RMSE over {study.n_trajectories} trajectories:\n"
        f"  position: raw={study.rmse_position_raw:.3f}m "
        f"filtered={study.rmse_position_filtered:.3f}m "
        f"(reduction {100 * study.position_reduction:.1f}%; paper: 69%)\n"
        f"  velocity: raw={study.rmse_velocity_raw:.3f}m/s "
        f"filtered={study.rmse_velocity_filtered:.3f}m/s "
        f"(reduction {100 * study.velocity_reduction:.1f}%; paper: 76%)"
    )
    return trace + "\n\n" + summary


def render_window_study(study: Dict[str, object]) -> str:
    """Fig. 6b as text."""
    table = render_series(
        "Fig. 6b: passing-window estimates (absolute seconds)",
        "time (s)",
        study["times"],
        study["series"],
    )
    entry = study["true_entry"]
    exit_ = study["true_exit"]
    footer = (
        f"true passing interval: "
        f"[{entry if entry is not None else 'n/a'}, "
        f"{exit_ if exit_ is not None else 'n/a'}]"
    )
    return table + "\n" + footer


def main(argv=None) -> str:
    """CLI entry point: run and print both figure-6 studies."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trajectories", type=int, default=200, help="figure 6a sample size"
    )
    args = parser.parse_args(argv)
    config = ExperimentConfig()
    text = (
        render_filter_study(
            run_filter_study(config, n_trajectories=args.trajectories)
        )
        + "\n\n"
        + render_window_study(run_window_study(config))
    )
    print(text)
    return text


if __name__ == "__main__":
    main()
