"""Trajectory and batch analysis: comfort, separation, distributions."""

from repro.analysis.metrics import (
    ComfortMetrics,
    SeparationMetrics,
    comfort_metrics,
    minimum_separation,
    speed_statistics,
)
from repro.analysis.batch import BatchSummary, summarize_batch

__all__ = [
    "ComfortMetrics",
    "SeparationMetrics",
    "comfort_metrics",
    "minimum_separation",
    "speed_statistics",
    "BatchSummary",
    "summarize_batch",
]
