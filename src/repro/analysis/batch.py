"""Batch-level analysis beyond the paper's table columns.

:func:`summarize_batch` folds per-run records into distributional
summaries (reaching-time percentiles, eta histogram buckets, emergency
usage distribution, comfort over the ego trajectories when recorded) —
the diagnostics a practitioner looks at before trusting the headline
means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import ComfortMetrics, comfort_metrics
from repro.errors import SimulationError
from repro.sim.results import Outcome, SimulationResult

__all__ = ["BatchSummary", "summarize_batch"]


@dataclass(frozen=True)
class BatchSummary:
    """Distributional summary of one batch.

    Attributes
    ----------
    n_runs, n_collisions, n_timeouts:
        Outcome counts.
    reaching_percentiles:
        ``{5, 25, 50, 75, 95}`` percentiles of the reaching time over
        completed safe runs (empty dict when none completed).
    eta_mean, eta_std:
        Moments of the eta distribution.
    emergency_percentiles:
        Percentiles of the per-run emergency frequency.
    comfort:
        Mean comfort metrics over the recorded ego trajectories
        (``None`` when trajectories were not recorded).
    """

    n_runs: int
    n_collisions: int
    n_timeouts: int
    reaching_percentiles: Dict[int, float]
    eta_mean: float
    eta_std: float
    emergency_percentiles: Dict[int, float]
    comfort: Optional[ComfortMetrics] = None

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"runs: {self.n_runs}  collisions: {self.n_collisions}  "
            f"timeouts: {self.n_timeouts}",
            f"eta: {self.eta_mean:+.4f} ± {self.eta_std:.4f}",
        ]
        if self.reaching_percentiles:
            cells = "  ".join(
                f"p{p}={v:.2f}s"
                for p, v in sorted(self.reaching_percentiles.items())
            )
            lines.append(f"reaching time: {cells}")
        cells = "  ".join(
            f"p{p}={100 * v:.1f}%"
            for p, v in sorted(self.emergency_percentiles.items())
        )
        lines.append(f"emergency frequency: {cells}")
        if self.comfort is not None:
            lines.append(
                f"comfort (mean over runs): peak accel "
                f"{self.comfort.peak_acceleration:+.2f}, peak decel "
                f"{self.comfort.peak_deceleration:+.2f}, rms jerk "
                f"{self.comfort.rms_jerk:.2f}"
            )
        return "\n".join(lines)


_PERCENTILES = (5, 25, 50, 75, 95)


def summarize_batch(results: Sequence[SimulationResult]) -> BatchSummary:
    """Fold a batch of results into a :class:`BatchSummary`."""
    if not results:
        raise SimulationError("cannot summarize an empty batch")
    etas = np.array([r.eta for r in results])
    reached = [
        r.reaching_time
        for r in results
        if r.outcome is Outcome.REACHED and r.reaching_time is not None
    ]
    emergency = np.array([r.emergency_frequency for r in results])

    comfort = _mean_comfort(results)
    return BatchSummary(
        n_runs=len(results),
        n_collisions=sum(
            1 for r in results if r.outcome is Outcome.COLLISION
        ),
        n_timeouts=sum(1 for r in results if r.outcome is Outcome.TIMEOUT),
        reaching_percentiles=(
            {
                p: float(np.percentile(reached, p))
                for p in _PERCENTILES
            }
            if reached
            else {}
        ),
        eta_mean=float(np.mean(etas)),
        eta_std=float(np.std(etas)),
        emergency_percentiles={
            p: float(np.percentile(emergency, p)) for p in _PERCENTILES
        },
        comfort=comfort,
    )


def _mean_comfort(
    results: Sequence[SimulationResult],
) -> Optional[ComfortMetrics]:
    """Mean per-field comfort metrics over recorded ego trajectories."""
    metrics: List[ComfortMetrics] = []
    for result in results:
        if result.trajectories and len(result.trajectories[0]) >= 2:
            metrics.append(comfort_metrics(result.trajectories[0]))
    if not metrics:
        return None
    return ComfortMetrics(
        peak_acceleration=float(
            np.mean([m.peak_acceleration for m in metrics])
        ),
        peak_deceleration=float(
            np.mean([m.peak_deceleration for m in metrics])
        ),
        rms_acceleration=float(
            np.mean([m.rms_acceleration for m in metrics])
        ),
        peak_jerk=float(np.mean([m.peak_jerk for m in metrics])),
        rms_jerk=float(np.mean([m.rms_jerk for m in metrics])),
    )
