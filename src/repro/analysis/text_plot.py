"""Terminal plotting: line charts and sparklines without matplotlib.

The reproduction is deliberately dependency-light; these helpers render
the figure series as Unicode charts so the examples can *show* a trend,
not just print a table.

* :func:`line_chart` — a multi-series scatter/line chart on a character
  grid with axes and a legend;
* :func:`sparkline` — a one-line eight-level bar summary of a series;
* :func:`histogram` — a horizontal-bar distribution view.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = ["line_chart", "sparkline", "histogram"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """Eight-level bar summary of a series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    finite = [v for v in series if math.isfinite(v)]
    if not finite:
        return " " * len(series)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for v in series:
        if not math.isfinite(v):
            out.append(" ")
        elif span == 0.0:
            out.append(_SPARK_LEVELS[0])
        else:
            level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
            out.append(_SPARK_LEVELS[level])
    return "".join(out)


def line_chart(
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 60,
    height: int = 14,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """A multi-series character chart with axes and a legend.

    Parameters
    ----------
    xs:
        Shared x values (need not be evenly spaced).
    series:
        Mapping of series name to y values (same length as ``xs``).
    width, height:
        Plot-area size in characters.
    title, y_label:
        Decorations.
    """
    if width < 10 or height < 4:
        raise ConfigurationError("chart area too small")
    xs = [float(x) for x in xs]
    if len(xs) < 2:
        raise ConfigurationError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} length {len(ys)} != {len(xs)}"
            )

    all_y = [
        float(y)
        for ys in series.values()
        for y in ys
        if math.isfinite(float(y))
    ]
    if not all_y:
        raise ConfigurationError("no finite values to plot")
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            y = float(y)
            if not math.isfinite(y):
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = 9
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:>{label_width}.3g}"
        elif i == height - 1:
            label = f"{y_lo:>{label_width}.3g}"
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{'':>{label_width}} +{'-' * width}+"
    lines.append(x_axis)
    lines.append(
        f"{'':>{label_width}}  {x_lo:<{width // 2}.3g}{x_hi:>{width // 2}.3g}"
    )
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':>{label_width}}  {legend}")
    if y_label:
        lines.append(f"{'':>{label_width}}  y: {y_label}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal-bar histogram of a sample.

    NaNs are dropped; the bin edges are printed per row.
    """
    if bins < 1:
        raise ConfigurationError("bins must be >= 1")
    sample = [float(v) for v in values if math.isfinite(float(v))]
    if not sample:
        raise ConfigurationError("no finite values to histogram")
    lo, hi = min(sample), max(sample)
    if hi == lo:  # safelint: disable=SFL001 - exact min==max identity
        hi = lo + 1.0
    counts = [0] * bins
    for v in sample:
        index = min(int((v - lo) / (hi - lo) * bins), bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines: List[str] = []
    if title:
        lines.append(title)
    for i, count in enumerate(counts):
        edge_lo = lo + (hi - lo) * i / bins
        edge_hi = lo + (hi - lo) * (i + 1) / bins
        bar = "█" * (0 if peak == 0 else round(width * count / peak))
        lines.append(
            f"[{edge_lo:8.3g}, {edge_hi:8.3g}) {bar} {count}"
        )
    return "\n".join(lines)
