"""Per-trajectory quality metrics.

The paper's evaluation function ``eta`` scores only safety and reaching
time; a deployable planner also cares about ride quality and how close
calls actually got.  This module computes the standard secondary
metrics from recorded trajectories:

* **comfort** — peak/RMS acceleration and jerk (the derivative of the
  applied acceleration across control steps);
* **separation** — the minimum spatial/temporal separation between the
  ego and another vehicle over a run (for the left turn, the margin by
  which the unsafe area was shared; for car following, the minimum gap);
* **speed statistics** — time-weighted mean and peak speed.

All functions operate on :class:`repro.dynamics.trajectory.Trajectory`
objects as recorded by the simulation engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dynamics.trajectory import Trajectory
from repro.errors import SimulationError

__all__ = [
    "ComfortMetrics",
    "SeparationMetrics",
    "comfort_metrics",
    "minimum_separation",
    "speed_statistics",
    "SpeedStatistics",
]


@dataclass(frozen=True)
class ComfortMetrics:
    """Acceleration/jerk summary of one trajectory.

    Attributes
    ----------
    peak_acceleration, peak_deceleration:
        Most positive and most negative applied commands, m/s².
    rms_acceleration:
        Root-mean-square of the applied command, m/s².
    peak_jerk:
        Largest |step-to-step change of the command| / dt, m/s³.
    rms_jerk:
        RMS jerk, m/s³.
    """

    peak_acceleration: float
    peak_deceleration: float
    rms_acceleration: float
    peak_jerk: float
    rms_jerk: float

    @property
    def comfortable(self) -> bool:
        """Rule-of-thumb comfort: |a| <= 3 m/s², jerk <= 30 m/s³.

        Emergency interventions intentionally violate this; the metric
        exists to *measure* how often, not to forbid it.
        """
        return (
            self.peak_acceleration <= 3.0
            and self.peak_deceleration >= -3.0
            and self.peak_jerk <= 30.0
        )


def comfort_metrics(trajectory: Trajectory) -> ComfortMetrics:
    """Compute :class:`ComfortMetrics` from one recorded trajectory."""
    if len(trajectory) < 2:
        raise SimulationError(
            "comfort metrics need at least two trajectory samples"
        )
    accel = trajectory.accelerations()
    times = trajectory.times()
    dts = np.diff(times)
    jerk = np.diff(accel) / dts
    return ComfortMetrics(
        peak_acceleration=float(np.max(accel)),
        peak_deceleration=float(np.min(accel)),
        rms_acceleration=float(np.sqrt(np.mean(accel**2))),
        peak_jerk=float(np.max(np.abs(jerk))) if len(jerk) else 0.0,
        rms_jerk=float(np.sqrt(np.mean(jerk**2))) if len(jerk) else 0.0,
    )


@dataclass(frozen=True)
class SeparationMetrics:
    """Closest approach between two trajectories.

    Attributes
    ----------
    min_distance:
        Minimum |p_a - p_b| over common samples (coordinate distance;
        for vehicles on different paths interpret per scenario).
    time_of_min:
        When the minimum occurred.
    min_time_headway:
        Minimum ``distance / ego_speed`` over samples with the ego
        moving (``inf`` if it never moved).
    """

    min_distance: float
    time_of_min: float
    min_time_headway: float


def minimum_separation(
    ego: Trajectory, other: Trajectory
) -> SeparationMetrics:
    """Closest coordinate approach between two recorded trajectories.

    Samples are matched on the ego's timestamps (the engine records all
    vehicles on the same schedule; the other trajectory's latest sample
    at or before each ego time is used, so mismatched lengths at episode
    end are tolerated).
    """
    if ego.is_empty or other.is_empty:
        raise SimulationError("separation needs non-empty trajectories")
    min_distance = math.inf
    time_of_min = ego.start_time
    min_headway = math.inf
    for point in ego:
        if point.time < other.start_time:
            continue
        q = other.at_or_before(point.time)
        distance = abs(q.position - point.position)
        if distance < min_distance:
            min_distance = distance
            time_of_min = point.time
        if point.velocity > 1e-6:
            min_headway = min(min_headway, distance / point.velocity)
    return SeparationMetrics(
        min_distance=min_distance,
        time_of_min=time_of_min,
        min_time_headway=min_headway,
    )


@dataclass(frozen=True)
class SpeedStatistics:
    """Time-weighted speed summary of one trajectory."""

    mean_speed: float
    peak_speed: float
    stopped_fraction: float

    @property
    def kept_moving(self) -> bool:
        """Whether the vehicle never (measurably) stopped."""
        return self.stopped_fraction == 0.0


def speed_statistics(
    trajectory: Trajectory, stopped_threshold: float = 0.1
) -> SpeedStatistics:
    """Time-weighted mean/peak speed and the fraction of time stopped."""
    if len(trajectory) < 2:
        raise SimulationError(
            "speed statistics need at least two trajectory samples"
        )
    speeds = np.abs(trajectory.velocities())
    times = trajectory.times()
    dts = np.diff(times)
    # Piecewise-constant weighting by the interval each sample opens.
    weighted = speeds[:-1]
    total = float(np.sum(dts))
    return SpeedStatistics(
        mean_speed=float(np.sum(weighted * dts) / total),
        peak_speed=float(np.max(speeds)),
        stopped_fraction=float(
            np.sum(dts[weighted < stopped_threshold]) / total
        ),
    )
