"""A small synchronous client for the decision server.

Used by the chaos/soak tests, the smoke script, and anything that
wants laddered decisions without running an event loop.  One client is
one connection; requests are answered in order (the server guarantees
per-connection ordering), so :meth:`ServeClient.decide` is a plain
blocking call.

The client is strict about what it accepts back: a closed connection
or an unparseable reply raises :class:`~repro.errors.ServeError` —
after a server SIGKILL the caller *knows* it got no decision and can
fall back to its own full-brake default, exactly like the in-vehicle
deployment would.
"""

from __future__ import annotations

import socket
from typing import Iterable, Mapping, Optional, Union

from repro.dynamics.state import VehicleState
from repro.errors import ServeError
from repro.serve.protocol import (
    OP_DECIDE,
    OP_HEALTH,
    OP_METRICS,
    OP_PING,
    OP_STATS,
    decode_line,
    encode_message,
)
from repro.serve.session import RemoteReport

__all__ = ["ServeClient"]

_EgoLike = Union[VehicleState, Mapping[str, float]]
_ReportLike = Union[RemoteReport, Mapping[str, float]]


def _ego_payload(ego: _EgoLike) -> dict:
    if isinstance(ego, VehicleState):
        return {
            "position": ego.position,
            "velocity": ego.velocity,
            "acceleration": ego.acceleration,
        }
    return dict(ego)


def _report_payload(report: _ReportLike) -> dict:
    if isinstance(report, RemoteReport):
        return {
            "vehicle": report.vehicle,
            "stamp": report.stamp,
            "position": report.position,
            "velocity": report.velocity,
            "acceleration": report.acceleration,
        }
    return dict(report)


class ServeClient:
    """Blocking newline-JSON client; context-manager friendly.

    Parameters
    ----------
    host, port:
        TCP endpoint (ignored when ``path`` is given).
    path:
        Unix-socket path.
    timeout:
        Socket timeout for connect and each reply, seconds.
        Units: timeout [s]
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        timeout: float = 5.0,
    ) -> None:
        if path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(path)
            except OSError as exc:
                sock.close()
                raise ServeError(
                    f"cannot connect to decision server at {path!r}: {exc}"
                ) from exc
        else:
            try:
                sock = socket.create_connection((host, port), timeout=timeout)
            except OSError as exc:
                raise ServeError(
                    f"cannot connect to decision server at "
                    f"{host}:{port}: {exc}"
                ) from exc
            sock.settimeout(timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Raw request/reply
    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request line and block for its reply line."""
        try:
            self._sock.sendall(encode_message(payload))
            line = self._file.readline()
        except OSError as exc:
            raise ServeError(f"decision server connection lost: {exc}") from exc
        if not line:
            raise ServeError("decision server closed the connection")
        message = decode_line(line)
        if message is None:
            raise ServeError(f"malformed server reply: {line!r}")
        return message

    # ------------------------------------------------------------------
    # Typed helpers
    # ------------------------------------------------------------------
    def decide(
        self,
        time: float,
        ego: _EgoLike,
        reports: Iterable[_ReportLike] = (),
        deadline_ms: Optional[float] = None,
        request_id: Optional[object] = None,
    ) -> dict:
        """One decision request; returns the decoded reply event.

        ``deadline_ms`` is the per-request deadline budget in
        milliseconds (the wire unit of the protocol field).

        Units: time [s]
        """
        if request_id is None:
            request_id = self._next_id
            self._next_id += 1
        payload = {
            "op": OP_DECIDE,
            "id": request_id,
            "time": time,
            "ego": _ego_payload(ego),
            "messages": [_report_payload(r) for r in reports],
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request(payload)

    def ping(self) -> dict:
        """Liveness probe."""
        return self.request({"op": OP_PING})

    def health(self) -> dict:
        """Readiness probe (inflight, stalled workers, drain state)."""
        return self.request({"op": OP_HEALTH})

    def stats(self) -> dict:
        """Ladder/latency counter snapshot."""
        return self.request({"op": OP_STATS})

    def metrics(self) -> dict:
        """Registry snapshot plus Prometheus text exposition."""
        return self.request({"op": OP_METRICS})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            # Closing an already-dead socket; nothing left to release.
            return

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
