"""``python -m repro.serve`` — run the decision server CLI."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
