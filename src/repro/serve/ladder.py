"""The guaranteed-safe degradation ladder (serve's core invariant).

Every decision request is answered from the **highest ladder rung that
can still be justified**:

1. ``FULL`` — the monitored compound planner
   (:class:`~repro.core.compound.CompoundPlanner`) runs within the
   request's deadline budget.  The runtime monitor inside it already
   guards every command (the paper's Theorem 1 shield), so a level-1
   answer is safe by construction.
2. ``SHIELD`` — the planner missed its deadline, raised, or kept
   raising past the retry budget.  The answer is the scenario's
   emergency command evaluated on the **last verified state** (the
   same fused context the monitor would have admitted) — exactly the
   fallback the Eq. (4) induction proves safe from any admitted state.
3. ``BRAKE`` — there is no verified state at all (required vehicle
   never reported, report older than the freshness bound, malformed
   request, shed under overload).  The answer is the physical
   full-brake command ``a_min``, justified by reachability: braking
   bounds the ego's future occupancy to a computable stop position
   regardless of what anything else does.

:meth:`LadderPolicy.verify` re-checks every outgoing action *after*
the rung chose it — the belt to the ladder's braces.  An action that
fails verification (out of actuation bounds, or a flagged state whose
action is not the emergency command) is replaced by full braking and
flagged ``verify_replaced``, so a bug anywhere above this line degrades
to safety instead of shipping an unsafe command.  The chaos tests
assert the flag stays ``False``; the replacement exists so that even
under bugs those tests *find*, no unsafe action ever leaves the server.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import IntEnum
from typing import Optional, Tuple

from repro.core.compound import CompoundPlanner
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleLimits
from repro.faults.planner_wrapper import call_contained
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.base import Planner, PlanningContext, clipped

__all__ = [
    "LadderLevel",
    "LadderDecision",
    "LadderPolicy",
    "CAUSE_NN",
    "CAUSE_MONITOR",
    "CAUSE_DEADLINE",
    "CAUSE_PLANNER_TRANSIENT",
    "CAUSE_PLANNER_FATAL",
    "CAUSE_NO_STATE",
    "CAUSE_STALE_STATE",
    "CAUSE_MALFORMED",
    "CAUSE_SHED",
    "CAUSE_DRAINING",
]

#: Level 1: the embedded planner's command passed the monitor.
CAUSE_NN = "nn"
#: Level 1: the monitor engaged the emergency planner inside the shield.
CAUSE_MONITOR = "monitor"
#: Level 2: the planner call did not return within the deadline budget.
CAUSE_DEADLINE = "deadline"
#: Level 2: transient planner faults exhausted the retry budget.
CAUSE_PLANNER_TRANSIENT = "planner-transient"
#: Level 2: a fatal planner fault — retrying cannot help.
CAUSE_PLANNER_FATAL = "planner-fatal"
#: Level 3: a required vehicle has never reported.
CAUSE_NO_STATE = "no-state"
#: Level 3: the freshest report is older than the freshness bound.
CAUSE_STALE_STATE = "stale-state"
#: Level 3: the request could not be parsed (answered safely anyway).
CAUSE_MALFORMED = "malformed"
#: Level 3: admission control refused the request (queue full).
CAUSE_SHED = "shed"
#: Level 3: the server is draining and accepts no new decisions.
CAUSE_DRAINING = "draining"

#: Acceleration comparison tolerance, m/s^2 — float noise only; any
#: genuine deviation from the emergency command is orders larger.
_ACTION_TOLERANCE = 1e-9


class LadderLevel(IntEnum):
    """Which rung of the degradation ladder answered."""

    FULL = 1
    SHIELD = 2
    BRAKE = 3


@dataclass(frozen=True)
class LadderDecision:
    """One laddered decision: the action plus its justification.

    Units: action [m/s^2], stop_position [m]
    """

    level: LadderLevel
    action: float
    cause: str
    #: Level 1 only: did the monitor hand the step to the emergency
    #: planner inside the shield?
    monitor_engaged: Optional[bool] = None
    #: Transient-fault retries spent before this answer.
    retries: int = 0
    #: The post-hoc verifier replaced an unsafe action with full brake.
    verify_replaced: bool = False
    #: Level 3 only: sound upper bound on how far the ego can still
    #: travel under the commanded full brake (reachability, Eq. (2)).
    stop_position: Optional[float] = None


class LadderPolicy:
    """Builds and verifies decisions for one connection.

    Parameters
    ----------
    compound:
        The monitored compound planner (level 1) whose emergency
        planner also answers level 2.
    limits:
        Ego actuation limits; every outgoing action is checked against
        them and level 3 commands ``limits.a_min``.
    ego_analyzer:
        Reachability analyzer over the *ego's* limits, used to attach
        the sound stop-position bound to level-3 answers.  Defaults to
        one built from ``limits``.
    planner:
        The object level 1 actually invokes; defaults to ``compound``.
        Chaos injection hands in the compound wrapped with the
        :mod:`repro.faults` decorators here — the compound *absorbs*
        embedded-planner faults by design (the paper's shield), so
        faults that must reach the ladder (a crash or hang of the
        whole planner unit) have to wrap the outside.
    """

    def __init__(
        self,
        compound: CompoundPlanner,
        limits: VehicleLimits,
        ego_analyzer: Optional[ReachabilityAnalyzer] = None,
        planner: Optional[Planner] = None,
    ) -> None:
        self._compound = compound
        self._limits = limits
        self._planner: Planner = planner if planner is not None else compound
        self._analyzer = (
            ego_analyzer
            if ego_analyzer is not None
            else ReachabilityAnalyzer(limits)
        )

    @property
    def compound(self) -> CompoundPlanner:
        """The level-1 planner."""
        return self._compound

    @property
    def limits(self) -> VehicleLimits:
        """Ego actuation limits."""
        return self._limits

    # ------------------------------------------------------------------
    # Rungs
    # ------------------------------------------------------------------
    def full_attempt(
        self, context: PlanningContext
    ) -> Tuple[Optional[LadderDecision], Optional[BaseException]]:
        """Level 1: one contained compound-planner invocation.

        Runs in a worker thread under the server's deadline; any crash
        is returned as data (via
        :func:`~repro.faults.planner_wrapper.call_contained`) for the
        caller to classify, never raised into the event loop.
        """
        command, error = call_contained(self._planner, context)
        if error is not None or command is None:
            return None, error
        last = self._compound.last_decision
        engaged = bool(last.use_emergency) if last is not None else False
        return (
            LadderDecision(
                level=LadderLevel.FULL,
                action=command,
                cause=CAUSE_MONITOR if engaged else CAUSE_NN,
                monitor_engaged=engaged,
            ),
            None,
        )

    def shield_decision(
        self, context: PlanningContext, cause: str, retries: int = 0
    ) -> LadderDecision:
        """Level 2: the emergency command on the last verified state."""
        action = clipped(
            self._compound.emergency_planner.plan(context), self._limits
        )
        return LadderDecision(
            level=LadderLevel.SHIELD,
            action=action,
            cause=cause,
            retries=retries,
        )

    def brake_decision(
        self, ego: Optional[VehicleState], cause: str
    ) -> LadderDecision:
        """Level 3: reachability-justified full brake.

        When the ego state is known, attaches the Eq. (2) upper bound
        on the braking ego's final position — the sound "this is where
        we stop" certificate that holds with no information about any
        other vehicle.
        """
        return LadderDecision(
            level=LadderLevel.BRAKE,
            action=self._limits.a_min,
            cause=cause,
            stop_position=None if ego is None else self.stop_position(ego),
        )

    def stop_position(self, ego: VehicleState) -> float:
        """Upper bound on the braking ego's final position, metres.

        Under the full-brake command the ego's velocity reaches the
        floor after ``(v - v_min) / |a_min|`` seconds; the reachability
        analyzer's minimal-position trajectory *is* the full-brake
        trajectory, so evaluating it at the stop time bounds the total
        travel.  (With a positive velocity floor the "stop" position is
        the position at the moment braking saturates.)
        """
        brake_time = max(
            0.0,
            (ego.velocity - self._limits.v_min) / -self._limits.a_min,
        )
        return self._analyzer.min_position(
            ego.position, ego.velocity, brake_time
        )

    # ------------------------------------------------------------------
    # Post-hoc verification
    # ------------------------------------------------------------------
    def verify(
        self, decision: LadderDecision, context: Optional[PlanningContext]
    ) -> LadderDecision:
        """Re-check an outgoing action; replace with full brake if unsafe.

        The checks are independent of how the rung computed the action:

        * every level — the action is finite and within actuation
          limits;
        * level 3 — the action *is* the full-brake command;
        * levels 1–2 with a context — if the safety model flags the
          state (boundary or unsafe set), the action must match the
          emergency command; level 2 must match it unconditionally.

        A failed check returns a copy commanding ``a_min`` with
        ``verify_replaced=True`` — full braking is safe from any state
        the monitor ever admitted (Eq. (4)), so the replacement never
        makes things worse.
        """
        if self._action_verified(decision, context):
            return decision
        return replace(
            decision,
            action=self._limits.a_min,
            verify_replaced=True,
        )

    def _action_verified(
        self, decision: LadderDecision, context: Optional[PlanningContext]
    ) -> bool:
        action = decision.action
        limits = self._limits
        if not math.isfinite(action):
            return False
        if not (
            limits.a_min - _ACTION_TOLERANCE
            <= action
            <= limits.a_max + _ACTION_TOLERANCE
        ):
            return False
        if decision.level is LadderLevel.BRAKE:
            return abs(action - limits.a_min) <= _ACTION_TOLERANCE
        if context is None:
            # Levels 1-2 are only ever built from a verified context; a
            # missing one means a server bug — degrade to full brake.
            return False
        model = self._compound.monitor.safety_model
        flagged = model.in_boundary_safe_set(
            context.time, context.ego, context.estimates
        ) or model.in_estimated_unsafe_set(
            context.time, context.ego, context.estimates
        )
        if decision.level is LadderLevel.SHIELD or flagged:
            emergency = clipped(
                self._compound.emergency_planner.plan(context), limits
            )
            return abs(action - emergency) <= _ACTION_TOLERANCE
        return True
