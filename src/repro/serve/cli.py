"""``repro-serve``: the deadline-enforced decision server command line.

Serves the car-following scenario's compound planner (IDM embedded by
default) behind the degradation ladder.  The chaos-injection flags
wrap the *whole compound planner* with the :mod:`repro.faults`
decorators — ``--inject-stall-seconds`` makes it genuinely hang on
scheduled calls (what the smoke script uses to force ladder-2
deadline answers) and ``--inject-error-*`` makes it raise transient
or fatal planner faults.  Wrapping the outside is deliberate: the
compound *absorbs* embedded-planner faults by design (the paper's
shield theorem), so faults that must exercise the ladder's own
level-2 machinery have to hit the planner unit as a whole.  Whatever
the injection does, every reply is still ladder-verified safe.

Every numeric flag goes through the shared validators in
:mod:`repro.utils.validation` — ``--deadline-ms nan``, a zero
``--max-inflight``, or a negative ``--workers`` fails with exit code 2
and the flag name on stderr, before a socket is bound.

Exit codes: 0 after a clean drain (SIGINT/SIGTERM); 2 for invalid
flags or any server error.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from typing import List, Optional, Tuple

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.errors import ConfigurationError, ReproError
from repro.faults.plan import (
    PlannerFault,
    PlannerFaultKind,
    PlannerFaultSeverity,
    StepWindow,
)
from repro.faults.planner_wrapper import FaultyPlanner, StallingPlanner
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.base import Planner
from repro.planners.constant import FullBrakePlanner
from repro.planners.idm import GapChaserPlanner, IDMPlanner
from repro.scenarios.car_following import CarFollowingScenario
from repro.serve.ladder import LadderPolicy
from repro.serve.server import DecisionServer, ServeConfig
from repro.serve.session import DecisionSession
from repro.utils.validation import (
    check_flag_at_least,
    check_flag_count,
    check_flag_positive,
)

__all__ = ["main", "build_parser"]

EXIT_OK = 0
EXIT_ERROR = 2

#: Leader vehicle index in the car-following scenario.
_LEADER = 1


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Shield-as-a-service: laddered, deadline-enforced planner "
            "decisions over newline JSON."
        ),
    )
    bind = parser.add_argument_group("binding")
    bind.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    bind.add_argument(
        "--port", type=int, default=7433, help="TCP port (0 = pick free)"
    )
    bind.add_argument(
        "--unix-socket",
        default=None,
        help="serve on a unix socket path instead of TCP",
    )

    budget = parser.add_argument_group("budgets")
    budget.add_argument(
        "--deadline-ms",
        type=float,
        default=50.0,
        help="default per-request deadline budget, milliseconds",
    )
    budget.add_argument(
        "--max-inflight",
        type=int,
        default=16,
        help="admission bound on concurrent decisions (excess is shed)",
    )
    budget.add_argument(
        "--workers", type=int, default=2, help="planner worker threads"
    )
    budget.add_argument(
        "--max-state-age-s",
        type=float,
        default=1.0,
        help="freshness bound on V2V reports, seconds",
    )
    budget.add_argument(
        "--transient-retries",
        type=int,
        default=1,
        help="retry budget for transient planner faults per request",
    )
    budget.add_argument(
        "--drain-grace-s",
        type=float,
        default=5.0,
        help="seconds to wait for inflight decisions on SIGINT/SIGTERM",
    )

    workload = parser.add_argument_group("workload")
    workload.add_argument(
        "--planner",
        choices=("idm", "gap-chaser", "full-brake"),
        default="idm",
        help="embedded planner inside the shield",
    )
    workload.add_argument(
        "--p-gap",
        type=float,
        default=5.0,
        help="minimum safe gap of the car-following scenario, metres",
    )

    chaos = parser.add_argument_group("chaos injection (planner unit)")
    chaos.add_argument(
        "--inject-stall-seconds",
        type=float,
        default=0.0,
        help="wall-clock hang injected into scheduled planner calls",
    )
    chaos.add_argument(
        "--inject-stall-window",
        action="append",
        default=[],
        metavar="START:STOP",
        help="planner-call window to stall (repeatable; none = every call)",
    )
    chaos.add_argument(
        "--inject-error-window",
        action="append",
        default=[],
        metavar="START:STOP",
        help="planner-call window that raises (repeatable)",
    )
    chaos.add_argument(
        "--inject-error-severity",
        choices=("transient", "fatal"),
        default="transient",
        help="severity of injected planner exceptions",
    )

    parser.add_argument(
        "--quiet", action="store_true", help="suppress startup/drain prints"
    )
    return parser


def _parse_window(text: str, flag: str) -> StepWindow:
    """Parse a ``START:STOP`` step window; flag-named errors."""
    parts = text.split(":")
    if len(parts) != 2:
        raise ConfigurationError(
            f"{flag} must look like START:STOP, got {text!r}"
        )
    try:
        start, stop = int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise ConfigurationError(
            f"{flag} must hold integers, got {text!r}"
        ) from exc
    if start < 0 or stop <= start:
        raise ConfigurationError(
            f"{flag} needs 0 <= START < STOP, got {text!r}"
        )
    return StepWindow(start=start, stop=stop)


def _validate(args: argparse.Namespace) -> None:
    """Reject nonsensical knob values before binding any socket.

    The same shared helpers back the ``repro-campaign`` flags, so NaN,
    zero, and negative values fail identically across both CLIs.
    """
    check_flag_positive(args.deadline_ms, "--deadline-ms")
    check_flag_count(args.max_inflight, "--max-inflight", minimum=1)
    check_flag_count(args.workers, "--workers", minimum=1)
    check_flag_positive(args.max_state_age_s, "--max-state-age-s")
    check_flag_count(args.transient_retries, "--transient-retries", minimum=0)
    check_flag_at_least(args.drain_grace_s, 0.0, "--drain-grace-s")
    check_flag_at_least(args.inject_stall_seconds, 0.0, "--inject-stall-seconds")
    check_flag_positive(args.p_gap, "--p-gap")
    for text in args.inject_stall_window:
        _parse_window(text, "--inject-stall-window")
    for text in args.inject_error_window:
        _parse_window(text, "--inject-error-window")


def _embedded_planner(
    args: argparse.Namespace, scenario: CarFollowingScenario
) -> Planner:
    if args.planner == "idm":
        return IDMPlanner(scenario.ego_limits, leader_index=_LEADER)
    if args.planner == "gap-chaser":
        return GapChaserPlanner(scenario.ego_limits, leader_index=_LEADER)
    return FullBrakePlanner(scenario.ego_limits)


def _wrap_chaos(planner: Planner, args: argparse.Namespace) -> Planner:
    """Apply the ``--inject-*`` decorators to the planner unit."""
    error_windows = tuple(
        _parse_window(text, "--inject-error-window")
        for text in args.inject_error_window
    )
    if error_windows:
        severity = PlannerFaultSeverity(args.inject_error_severity)
        planner = FaultyPlanner(
            planner,
            faults=tuple(
                PlannerFault(
                    window=window,
                    kind=PlannerFaultKind.EXCEPTION,
                    severity=severity,
                )
                for window in error_windows
            ),
        )
    if args.inject_stall_seconds > 0.0:
        stall_windows = tuple(
            _parse_window(text, "--inject-stall-window")
            for text in args.inject_stall_window
        )
        planner = StallingPlanner(
            planner, args.inject_stall_seconds, windows=stall_windows
        )
    return planner


def build_server(args: argparse.Namespace) -> DecisionServer:
    """Wire scenario, planner, chaos decorators, and config together."""
    scenario = CarFollowingScenario(p_gap=args.p_gap)

    def ladder_factory() -> LadderPolicy:
        compound = CompoundPlanner(
            nn_planner=_embedded_planner(args, scenario),
            emergency_planner=scenario.emergency_planner(),
            monitor=RuntimeMonitor(scenario.safety_model()),
            limits=scenario.ego_limits,
        )
        return LadderPolicy(
            compound,
            scenario.ego_limits,
            planner=_wrap_chaos(compound, args),
        )

    def session_factory() -> DecisionSession:
        return DecisionSession(
            {_LEADER: ReachabilityAnalyzer(scenario.leader_limits)},
            max_state_age=args.max_state_age_s,
        )

    config = ServeConfig(
        deadline_s=args.deadline_ms / 1000.0,
        max_inflight=args.max_inflight,
        workers=args.workers,
        max_state_age=args.max_state_age_s,
        transient_retries=args.transient_retries,
        drain_grace=args.drain_grace_s,
    )
    return DecisionServer(ladder_factory, session_factory, config=config)


async def _serve(server: DecisionServer, args: argparse.Namespace) -> None:
    await server.start(
        host=args.host, port=args.port, path=args.unix_socket
    )
    if not args.quiet:
        where = (
            args.unix_socket
            if args.unix_socket is not None
            else f"{args.host}:{server.tcp_port()}"
        )
        print(
            f"repro-serve: pid={os.getpid()} listening on {where} "
            f"(deadline {args.deadline_ms:g} ms, "
            f"ladder full->shield->brake)",
            flush=True,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(signum, stop.set)
    await server.serve_until(stop)
    if not args.quiet:
        stats = server.stats()
        print(
            f"repro-serve: drained — offered={stats['offered']:g} "
            f"served={stats['served']:g} degraded={stats['degraded']:g} "
            f"shed={stats['shed']:g}",
            flush=True,
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        _validate(args)
        server = build_server(args)
        asyncio.run(_serve(server, args))
        return EXIT_OK
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
