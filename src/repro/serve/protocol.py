"""The decision-server wire protocol: one JSON object per line.

The serve layer reuses the shard protocol's framing philosophy
(:mod:`repro.campaign.shard.protocol`): every message is a single
newline-terminated canonical JSON line, and a line that fails to parse
is never guessed at.  Unlike the shard layer — where a torn line is
silently dropped and lease expiry recovers — a decision server must
*answer* everything, so a malformed request line is answered with an
``error`` event that still carries a guaranteed-safe full-brake action.
No request, however broken, gets silence or an unsafe command back.

Requests (client → server)
    ``{"op": "decide", "id": ..., "time": t, "ego": {...},
    "messages": [...], "deadline_ms": ...}``
        One observation snapshot; the reply is a ``decision`` event.
        ``messages`` carries V2V state reports (possibly delayed or
        lost upstream); ``deadline_ms`` optionally overrides the
        server's per-request budget.
    ``{"op": "ping"}``    — liveness probe, answered with ``pong``.
    ``{"op": "health"}``  — readiness probe (inflight, stalled workers).
    ``{"op": "stats"}``   — ladder/latency counters snapshot.
    ``{"op": "metrics"}`` — full registry snapshot plus its Prometheus
    text exposition (v0.0.4), for scrapers and ``repro-obs top``.

Events (server → client)
    ``decision`` — the laddered, shield-verified acceleration command.
    ``pong``, ``health``, ``stats``, ``metrics`` — probe replies.
    ``error``    — unparseable or unknown request; carries a safe
                   full-brake ``action`` anyway.

Replies are data, not trust: every ``decision`` carries the ladder
level and cause that produced it, so a client (or the chaos tests) can
audit exactly which rung of the degradation ladder answered.
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = [
    "decode_line",
    "encode_message",
    "OP_DECIDE",
    "OP_PING",
    "OP_HEALTH",
    "OP_STATS",
    "OP_METRICS",
    "EVENT_DECISION",
    "EVENT_PONG",
    "EVENT_HEALTH",
    "EVENT_STATS",
    "EVENT_METRICS",
    "EVENT_ERROR",
    "STATUS_OK",
    "STATUS_DEGRADED",
    "STATUS_SHED",
]

OP_DECIDE = "decide"
OP_PING = "ping"
OP_HEALTH = "health"
OP_STATS = "stats"
OP_METRICS = "metrics"

EVENT_DECISION = "decision"
EVENT_PONG = "pong"
EVENT_HEALTH = "health"
EVENT_STATS = "stats"
EVENT_METRICS = "metrics"
EVENT_ERROR = "error"

#: The full compound planner answered within budget (ladder level 1).
STATUS_OK = "ok"
#: A lower ladder rung answered (deadline miss, planner fault, stale
#: or missing state, malformed request).
STATUS_DEGRADED = "degraded"
#: Admission control refused the request (queue full or draining); the
#: reply still carries the ladder-3 safe action.
STATUS_SHED = "shed"


def encode_message(message: dict) -> bytes:
    """One protocol message as a newline-terminated UTF-8 JSON line."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> Optional[dict]:
    """Parse one protocol line; ``None`` for anything malformed.

    Torn lines, stray bytes, and non-object JSON all map to ``None``;
    the server answers them with a safe-action ``error`` event and the
    client raises — neither side ever guesses at a broken line.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(message, dict):
        return None
    return message
