"""The deadline-enforced asyncio decision server.

``DecisionServer`` accepts newline-JSON observation streams over TCP
or a unix socket and answers every ``decide`` request through the
degradation ladder of :mod:`repro.serve.ladder`:

* the compound planner runs in a worker thread under the request's
  **deadline budget** (``asyncio.wait_for`` around a
  ``ThreadPoolExecutor`` call) — a planner that hangs simply never
  returns into the reply path;
* a deadline miss or a fatal planner fault answers from the shield
  (level 2) and **retires the wedged planner**: the connection gets a
  freshly built compound planner, the moral equivalent of restarting a
  crashed planner process, while the hung thread is left to die off
  the reply path (tracked as a *stalled worker* in health probes);
* admission control bounds concurrent decisions: past
  ``max_inflight`` a request is **shed**, which still answers with the
  ladder-3 safe action — load shedding degrades service, never safety.

Ordering is per connection: one connection's requests are answered
sequentially and in order (a session's state store must see its
observations in arrival order); concurrency comes from serving many
connections.

Graceful drain (`SIGINT`/`SIGTERM` via the CLI, or :meth:`drain`)
stops accepting connections, answers new decisions with the shed/
draining safe action, waits up to ``drain_grace`` seconds for inflight
work, then tears down.  A SIGKILL needs no cooperation: the protocol
is stateless per request, so a restarted server is immediately
serviceable (clients reconnect and the first fresh observation
repopulates the state store) — the chaos tests exercise exactly this.

Every counter the server keeps is a ``serve.*`` metric on the injected
(or internally created) observer; ``benchmarks/test_bench_serve.py``
turns them into ``BENCH_serve.json``.  The accounting invariant is
exact: ``serve.offered == serve.served + serve.degraded + serve.shed``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Future as WorkerFuture
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ServeError
from repro.faults.plan import PlannerFaultSeverity
from repro.faults.planner_wrapper import classify_planner_failure
from repro.obs.expo import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import histogram_quantile
from repro.obs.observer import Observer
from repro.planners.base import PlanningContext
from repro.serve.ladder import (
    CAUSE_DEADLINE,
    CAUSE_DRAINING,
    CAUSE_MALFORMED,
    CAUSE_NO_STATE,
    CAUSE_PLANNER_FATAL,
    CAUSE_PLANNER_TRANSIENT,
    CAUSE_SHED,
    CAUSE_STALE_STATE,
    LadderDecision,
    LadderPolicy,
)
from repro.serve.protocol import (
    EVENT_DECISION,
    EVENT_ERROR,
    EVENT_HEALTH,
    EVENT_METRICS,
    EVENT_PONG,
    EVENT_STATS,
    OP_DECIDE,
    OP_HEALTH,
    OP_METRICS,
    OP_PING,
    OP_STATS,
    STATUS_DEGRADED,
    STATUS_OK,
    STATUS_SHED,
    decode_line,
    encode_message,
)
from repro.serve.session import DecisionSession, parse_observation
from repro.utils.validation import check_nonnegative, check_positive

__all__ = ["ServeConfig", "DecisionServer", "DECISION_LATENCY_BUCKETS"]

#: Histogram bucket bounds for ``serve.decision_seconds`` — sub-ms to
#: seconds; fixed so snapshots compare across runs (see MetricsRegistry).
DECISION_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)

_OUTCOME_COUNTERS = {
    STATUS_OK: "serve.served",
    STATUS_DEGRADED: "serve.degraded",
    STATUS_SHED: "serve.shed",
}


@dataclass(frozen=True)
class ServeConfig:
    """Decision-server knobs.

    Units: deadline_s [s], max_state_age [s], drain_grace [s]

    Attributes
    ----------
    deadline_s:
        Default per-request deadline budget (a request's
        ``deadline_ms`` overrides it).
    max_inflight:
        Admission bound on concurrently processed decisions; excess
        requests are shed with the ladder-3 safe action.
    workers:
        Planner worker threads.  Each abandoned (hung) call occupies
        one until it dies, so this also bounds tolerated concurrent
        hangs.
    max_state_age:
        Freshness bound on stored V2V reports at decision time.
    transient_retries:
        Retry budget for transient planner faults within one deadline.
    drain_grace:
        How long :meth:`DecisionServer.drain` waits for inflight
        decisions before forcing connections closed.
    """

    deadline_s: float = 0.05
    max_inflight: int = 16
    workers: int = 2
    max_state_age: float = 1.0
    transient_retries: int = 1
    drain_grace: float = 5.0

    def __post_init__(self) -> None:
        check_positive(self.deadline_s, "deadline_s")
        check_positive(self.max_state_age, "max_state_age")
        check_nonnegative(self.drain_grace, "drain_grace")
        if int(self.max_inflight) < 1:
            raise ServeError(
                f"max_inflight must be >= 1, got {self.max_inflight!r}"
            )
        if int(self.workers) < 1:
            raise ServeError(f"workers must be >= 1, got {self.workers!r}")
        if int(self.transient_retries) < 0:
            raise ServeError(
                f"transient_retries must be >= 0, got "
                f"{self.transient_retries!r}"
            )


class _Connection:
    """Per-connection mutable state: the ladder and the session store."""

    __slots__ = ("ladder", "session")

    def __init__(self, ladder: LadderPolicy, session: DecisionSession) -> None:
        self.ladder = ladder
        self.session = session


class DecisionServer:
    """Shield-as-a-service: laddered decisions over newline JSON.

    Parameters
    ----------
    ladder_factory:
        Builds a fresh :class:`LadderPolicy` (compound planner +
        limits).  Called once per connection and again whenever a
        planner is retired after a hang or fatal fault.
    session_factory:
        Builds a fresh :class:`DecisionSession` per connection.
    config:
        Knobs; see :class:`ServeConfig`.
    observer:
        Metrics sink.  ``None`` creates an internal
        :class:`~repro.obs.observer.Observer` so ``serve.*`` counters
        always exist.  The server only ever *writes* metrics on the
        request path; probes read them as exporters.
    """

    def __init__(
        self,
        ladder_factory: Callable[[], LadderPolicy],
        session_factory: Callable[[], DecisionSession],
        config: Optional[ServeConfig] = None,
        observer: Optional[Observer] = None,
    ) -> None:
        self._ladder_factory = ladder_factory
        self._session_factory = session_factory
        self._config = config if config is not None else ServeConfig()
        self._obs = observer if observer is not None else Observer()
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: Set["asyncio.Task[None]"] = set()
        self._abandoned: List["WorkerFuture[object]"] = []
        self._inflight = 0
        self._draining = False

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> ServeConfig:
        """The server's knobs."""
        return self._config

    @property
    def observer(self) -> Observer:
        """The metrics sink (always enabled unless one was injected)."""
        return self._obs

    @property
    def draining(self) -> bool:
        """Whether the server has begun its graceful drain."""
        return self._draining

    @property
    def inflight(self) -> int:
        """Decisions currently being processed."""
        return self._inflight

    def tcp_port(self) -> int:
        """The bound TCP port (after :meth:`start` with ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
    ) -> None:
        """Bind and begin accepting connections.

        ``path`` selects a unix socket; otherwise TCP on
        ``host:port`` (``port=0`` picks a free port — read it back via
        :meth:`tcp_port`).
        """
        if self._server is not None:
            raise ServeError("server already started")
        if self._obs.enabled:
            self._obs.metrics.register_histogram(
                "serve.decision_seconds", DECISION_LATENCY_BUCKETS
            )
        self._executor = ThreadPoolExecutor(
            max_workers=int(self._config.workers),
            thread_name_prefix="serve-planner",
        )
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host, port
            )

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain gracefully."""
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish inflight, tear down.

        New decisions arriving on surviving connections during the
        drain are answered with the ladder-3 ``draining`` safe action
        (counted as shed).  After ``drain_grace`` seconds any remaining
        connection is cancelled; the executor is released without
        waiting for hung planner threads.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self._config.drain_grace
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        tasks = list(self._connections)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self._server = None

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self._gauge("serve.connections", len(self._connections))
        conn = _Connection(self._ladder_factory(), self._session_factory())
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, OSError):
                    # Oversized line or a connection reset mid-read.
                    self._count("serve.protocol_errors")
                    break
                if not line:
                    break
                message = decode_line(line)
                if message is None:
                    self._count("serve.protocol_errors")
                    reply = self._error_payload(conn, "malformed line", None)
                else:
                    reply = await self._handle(conn, message)
                if not await self._send(writer, reply):
                    break
        except asyncio.CancelledError:
            # Drain teardown cancelled this connection.  Exit quietly:
            # asyncio's per-connection callback re-raises a cancelled
            # task's exception into the loop logger otherwise.
            self._count("serve.connections_cancelled")
        finally:
            if task is not None:
                self._connections.discard(task)
            self._gauge("serve.connections", len(self._connections))
            writer.close()

    async def _send(
        self, writer: asyncio.StreamWriter, payload: dict
    ) -> bool:
        try:
            writer.write(encode_message(payload))
            await writer.drain()
            return True
        except OSError:
            # The client vanished mid-reply (e.g. SIGKILLed); nothing
            # to answer anymore — the connection loop exits.
            self._count("serve.client_gone")
            return False

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _handle(self, conn: _Connection, message: dict) -> dict:
        op = message.get("op")
        if op == OP_DECIDE:
            return await self._decide(conn, message)
        if op == OP_PING:
            return {"event": EVENT_PONG, "id": message.get("id")}
        if op == OP_HEALTH:
            return self._health_payload()
        if op == OP_STATS:
            return self._stats_payload()
        if op == OP_METRICS:
            return self._metrics_payload()
        self._count("serve.protocol_errors")
        return self._error_payload(
            conn, f"unknown op {op!r}", message.get("id")
        )

    def _error_payload(
        self, conn: _Connection, reason: str, request_id: object
    ) -> dict:
        """An ``error`` event that still carries a verified-safe action."""
        decision = conn.ladder.verify(
            conn.ladder.brake_decision(None, CAUSE_MALFORMED), None
        )
        return {
            "event": EVENT_ERROR,
            "id": request_id,
            "error": reason,
            "action": decision.action,
            "ladder": int(decision.level),
            "cause": decision.cause,
            "safe": True,
        }

    # ------------------------------------------------------------------
    # The laddered decision path
    # ------------------------------------------------------------------
    async def _decide(self, conn: _Connection, message: dict) -> dict:
        t_start = time.monotonic()
        self._count("serve.offered")
        context: Optional[PlanningContext] = None
        deadline_s = self._config.deadline_s
        if self._draining:
            decision = conn.ladder.brake_decision(None, CAUSE_DRAINING)
            outcome = STATUS_SHED
        elif self._inflight >= int(self._config.max_inflight):
            decision = conn.ladder.brake_decision(None, CAUSE_SHED)
            outcome = STATUS_SHED
        else:
            self._inflight += 1
            self._gauge("serve.inflight", self._inflight)
            try:
                decision, outcome, context, deadline_s = await self._laddered(
                    conn, message, t_start
                )
            finally:
                self._inflight -= 1
                self._gauge("serve.inflight", self._inflight)
        verified = conn.ladder.verify(decision, context)
        if verified.verify_replaced:
            self._count("serve.verify_replaced")
        elapsed = time.monotonic() - t_start
        self._count(_OUTCOME_COUNTERS[outcome])
        self._count("serve.decisions", ladder=int(verified.level))
        if self._obs.enabled:
            self._obs.observe("serve.decision_seconds", elapsed)
        return {
            "event": EVENT_DECISION,
            "id": message.get("id"),
            "status": outcome,
            "ladder": int(verified.level),
            "action": verified.action,
            "cause": verified.cause,
            "safe": True,
            "monitor_engaged": verified.monitor_engaged,
            "retries": verified.retries,
            "verify_replaced": verified.verify_replaced,
            "stop_position": verified.stop_position,
            "elapsed_ms": elapsed * 1000.0,
            "deadline_ms": deadline_s * 1000.0,
        }

    async def _laddered(
        self, conn: _Connection, message: dict, t_start: float
    ) -> Tuple[LadderDecision, str, Optional[PlanningContext], float]:
        """Walk the ladder for one admitted request.

        Returns ``(decision, outcome, context, deadline_s)`` — the
        context is ``None`` exactly when the answer came from level 3.
        """
        cfg = self._config
        try:
            observation = parse_observation(message)
        except ServeError:
            self._count("serve.malformed")
            return (
                conn.ladder.brake_decision(None, CAUSE_MALFORMED),
                STATUS_DEGRADED,
                None,
                cfg.deadline_s,
            )
        deadline_s = (
            observation.deadline_s
            if observation.deadline_s is not None
            else cfg.deadline_s
        )
        accepted = conn.session.ingest(observation)
        if accepted:
            self._count("serve.reports_accepted", accepted)
        context = conn.session.context_for(observation)
        if context is None:
            reported = conn.session.staleness(observation.time) is not None
            cause = CAUSE_STALE_STATE if reported else CAUSE_NO_STATE
            return (
                conn.ladder.brake_decision(observation.ego, cause),
                STATUS_DEGRADED,
                None,
                deadline_s,
            )
        retries = 0
        while True:
            remaining = deadline_s - (time.monotonic() - t_start)
            if remaining <= 0.0:
                self._count("serve.deadline_misses")
                return (
                    conn.ladder.shield_decision(
                        context, CAUSE_DEADLINE, retries
                    ),
                    STATUS_DEGRADED,
                    context,
                    deadline_s,
                )
            # Submit directly (not run_in_executor) to keep the worker
            # future: a cancelled asyncio wrapper reports done() at
            # once, but the worker future stays not-done while a hung
            # thread runs — which is what stalled_workers must see.
            submitted = self._executor.submit(
                conn.ladder.full_attempt, context
            )
            try:
                decision, error = await asyncio.wait_for(
                    asyncio.wrap_future(submitted), remaining
                )
            except asyncio.TimeoutError:
                # The planner is hung (or starved behind hung peers):
                # abandon the call off the reply path and retire the
                # planner so the *next* request gets a fresh one.
                self._abandoned.append(submitted)
                self._count("serve.deadline_misses")
                self._restart_planner(conn)
                return (
                    conn.ladder.shield_decision(
                        context, CAUSE_DEADLINE, retries
                    ),
                    STATUS_DEGRADED,
                    context,
                    deadline_s,
                )
            if error is None and decision is not None:
                if retries:
                    decision = replace(decision, retries=retries)
                return decision, STATUS_OK, context, deadline_s
            severity = classify_planner_failure(error)
            self._count("serve.planner_errors", severity=severity.value)
            if severity is PlannerFaultSeverity.FATAL:
                self._restart_planner(conn)
                return (
                    conn.ladder.shield_decision(
                        context, CAUSE_PLANNER_FATAL, retries
                    ),
                    STATUS_DEGRADED,
                    context,
                    deadline_s,
                )
            if retries >= int(cfg.transient_retries):
                return (
                    conn.ladder.shield_decision(
                        context, CAUSE_PLANNER_TRANSIENT, retries
                    ),
                    STATUS_DEGRADED,
                    context,
                    deadline_s,
                )
            retries += 1
            self._count("serve.retries")

    def _restart_planner(self, conn: _Connection) -> None:
        """Retire a wedged/crashed planner: build a fresh ladder."""
        conn.ladder = self._ladder_factory()
        self._count("serve.planner_restarts")

    # ------------------------------------------------------------------
    # Probes (metric reads here are exporter-role, never decision input)
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` probe payload (for the CLI's drain summary)."""
        return self._stats_payload()

    def metrics_exposition(self) -> dict:
        """The ``metrics`` probe payload (exposition + raw snapshot)."""
        return self._metrics_payload()

    def stalled_workers(self) -> int:
        """Abandoned planner calls whose thread has not finished yet."""
        self._abandoned = [f for f in self._abandoned if not f.done()]
        return len(self._abandoned)

    def _health_payload(self) -> dict:
        stalled = self.stalled_workers()
        cfg = self._config
        ready = (
            not self._draining
            and self._inflight < int(cfg.max_inflight)
            and stalled < int(cfg.workers)
        )
        return {
            "event": EVENT_HEALTH,
            "status": "draining" if self._draining else "serving",
            "ready": ready,
            "inflight": self._inflight,
            "max_inflight": int(cfg.max_inflight),
            "workers": int(cfg.workers),
            "stalled_workers": stalled,
            "connections": len(self._connections),
        }

    def _stats_payload(self) -> dict:
        if not self._obs.enabled:
            return {"event": EVENT_STATS, "enabled": False}
        metrics = self._obs.metrics
        offered = metrics.counter_value("serve.offered")
        shed = metrics.counter_value("serve.shed")
        ladder: Dict[str, float] = {
            str(level): metrics.counter_value("serve.decisions", ladder=level)
            for level in (1, 2, 3)
        }
        histograms = metrics.snapshot()["histograms"]
        latency = histograms.get("serve.decision_seconds")
        p50 = p99 = None
        if latency is not None:
            q50 = histogram_quantile(latency, 0.5)
            q99 = histogram_quantile(latency, 0.99)
            p50 = None if q50 is None else q50 * 1000.0
            p99 = None if q99 is None else q99 * 1000.0
        return {
            "event": EVENT_STATS,
            "enabled": True,
            "offered": offered,
            "served": metrics.counter_value("serve.served"),
            "degraded": metrics.counter_value("serve.degraded"),
            "shed": shed,
            "shed_rate": (shed / offered) if offered > 0 else 0.0,
            "ladder": ladder,
            "deadline_misses": metrics.counter_value("serve.deadline_misses"),
            "retries": metrics.counter_value("serve.retries"),
            "planner_restarts": metrics.counter_value(
                "serve.planner_restarts"
            ),
            "verify_replaced": metrics.counter_value("serve.verify_replaced"),
            "malformed": metrics.counter_value("serve.malformed"),
            "protocol_errors": metrics.counter_value("serve.protocol_errors"),
            "p50_ms": p50,
            "p99_ms": p99,
        }

    def _metrics_payload(self) -> dict:
        """Full registry snapshot plus its Prometheus text exposition.

        Exporter-role read, like ``_stats_payload``: the snapshot is
        rendered and shipped to the client, never fed back into the
        ladder.  A server running with the null observer answers
        ``enabled: false`` with an empty exposition rather than
        erroring, so scrapers degrade gracefully.
        """
        if not self._obs.enabled:
            return {
                "event": EVENT_METRICS,
                "enabled": False,
                "content_type": CONTENT_TYPE,
                "text": "",
                "snapshot": None,
            }
        snapshot = self._obs.metrics.snapshot()
        return {
            "event": EVENT_METRICS,
            "enabled": True,
            "content_type": CONTENT_TYPE,
            "text": render_prometheus(snapshot),
            "snapshot": snapshot,
        }

    # ------------------------------------------------------------------
    # Metric write helpers
    # ------------------------------------------------------------------
    def _count(self, name: str, value: float = 1, **labels: object) -> None:
        if self._obs.enabled:
            self._obs.count(name, value, **labels)

    def _gauge(self, name: str, value: float) -> None:
        if self._obs.enabled:
            self._obs.gauge(name, value)
