"""Shield-as-a-service: the deadline-enforced decision server.

Wraps the paper's compound planner (Section III-A) behind a network
boundary without ever weakening its guarantee: every reply — on time,
late, degraded, shed, even unparseable — carries an action the safety
shield verifies before it leaves the process.  The **degradation
ladder** (:mod:`repro.serve.ladder`) picks the strongest justifiable
answer: (1) the monitored compound planner within the deadline budget,
(2) the emergency command on the last verified state after a deadline
miss or planner fault, (3) the reachability-justified full brake when
no verified state exists at all.

Layers
------

``protocol``  — newline-JSON framing, ops/events/status constants.
``session``   — request parsing, newest-report-wins state store,
                reachability propagation to the request time.
``ladder``    — the three rungs plus post-hoc action verification.
``server``    — asyncio server: deadlines, admission control/shedding,
                planner retirement, drain, ``serve.*`` metrics.
``client``    — blocking client used by tests and the smoke script.
``cli``       — ``repro-serve`` (validated flags, chaos injection).
"""

from repro.serve.client import ServeClient
from repro.serve.ladder import LadderDecision, LadderLevel, LadderPolicy
from repro.serve.server import DecisionServer, ServeConfig
from repro.serve.session import (
    DecisionSession,
    Observation,
    RemoteReport,
    parse_observation,
)

__all__ = [
    "ServeClient",
    "LadderDecision",
    "LadderLevel",
    "LadderPolicy",
    "DecisionServer",
    "ServeConfig",
    "DecisionSession",
    "Observation",
    "RemoteReport",
    "parse_observation",
]
