"""Per-connection observation state: parsing, storage, propagation.

A decision request carries the ego's own (exactly known) state plus
whatever V2V state reports reached the client — possibly delayed,
reordered, or lost upstream.  The session keeps the **newest report
per remote vehicle** (newest *stamp* wins, so an out-of-order stale
report never overwrites fresher knowledge) and turns that store into
the :class:`~repro.planners.base.PlanningContext` the compound planner
consumes, by propagating each stored report to the request time with
the sound reachability bands of
:class:`~repro.filtering.reachability.ReachabilityAnalyzer` (Eq. (2)).

Freshness is a safety input, not a tuning knob: a report older than
``max_state_age`` produces bands so wide the monitor would brake
anyway, but more importantly a server must *never* pretend it knows a
vehicle it has effectively lost.  When any required vehicle is missing
or stale, :meth:`DecisionSession.context_for` returns ``None`` and the
server answers from ladder level 3 (reachability-justified full
brake) instead of planning on fiction.

Parsing is strict: a request with a non-finite time, a report stamped
in the future, or a NaN deadline is *malformed* — the server still
answers it (with the safe brake action), but nothing malformed ever
enters the state store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.dynamics.state import VehicleState
from repro.errors import ServeError
from repro.filtering.fusion import FusedEstimate
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.base import PlanningContext

__all__ = ["RemoteReport", "Observation", "DecisionSession", "parse_observation"]

#: Slack for "stamped in the future" checks, seconds — absorbs the
#: float noise of a client stamping with the same clock it sends with.
_STAMP_TOLERANCE = 1e-9


@dataclass(frozen=True)
class RemoteReport:
    """One V2V state report about one remote vehicle.

    Units: stamp [s], position [m], velocity [m/s],
    Units: acceleration [m/s^2]
    """

    vehicle: int
    stamp: float
    position: float
    velocity: float
    acceleration: float = 0.0

    def state(self) -> VehicleState:
        """The reported state as a :class:`VehicleState`."""
        return VehicleState(
            position=self.position,
            velocity=self.velocity,
            acceleration=self.acceleration,
        )


@dataclass(frozen=True)
class Observation:
    """One parsed ``decide`` request.

    Attributes
    ----------
    time:
        The client's timestamp for this decision, seconds.  Requests on
        one connection need not be monotone — the session tolerates a
        clock stepping backwards by refusing (not crashing on) reports
        it cannot propagate to the earlier time.
    ego:
        The ego vehicle's own state (exactly known — the ego knows
        itself).
    reports:
        V2V state reports bundled with this request; may be empty.
    deadline_s:
        Per-request deadline override, seconds; ``None`` uses the
        server's configured budget.
    """

    time: float
    ego: VehicleState
    reports: Tuple[RemoteReport, ...] = ()
    deadline_s: Optional[float] = None


def _require_finite(value: object, field: str) -> float:
    try:
        v = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise ServeError(f"{field} must be a number, got {value!r}") from exc
    if not math.isfinite(v):
        raise ServeError(f"{field} must be finite, got {value!r}")
    return v


def _parse_report(entry: object, index: int, now: float) -> RemoteReport:
    if not isinstance(entry, dict):
        raise ServeError(f"messages[{index}] must be an object, got {entry!r}")
    try:
        vehicle = int(entry["vehicle"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(
            f"messages[{index}].vehicle must be an integer index"
        ) from exc
    stamp = _require_finite(entry.get("stamp"), f"messages[{index}].stamp")
    if stamp > now + _STAMP_TOLERANCE:
        raise ServeError(
            f"messages[{index}] stamped in the future: "
            f"stamp={stamp!r} > time={now!r}"
        )
    return RemoteReport(
        vehicle=vehicle,
        stamp=stamp,
        position=_require_finite(
            entry.get("position"), f"messages[{index}].position"
        ),
        velocity=_require_finite(
            entry.get("velocity"), f"messages[{index}].velocity"
        ),
        acceleration=_require_finite(
            entry.get("acceleration", 0.0), f"messages[{index}].acceleration"
        ),
    )


def parse_observation(payload: Mapping[str, object]) -> Observation:
    """Parse and validate one ``decide`` request payload.

    Raises :class:`~repro.errors.ServeError` for anything malformed:
    non-finite numbers, future-stamped reports, a non-positive or NaN
    ``deadline_ms``.  The caller answers such requests with the ladder-3
    safe action; nothing malformed reaches the session store.
    """
    now = _require_finite(payload.get("time"), "time")
    ego_entry = payload.get("ego")
    if not isinstance(ego_entry, dict):
        raise ServeError(f"ego must be an object, got {ego_entry!r}")
    ego = VehicleState(
        position=_require_finite(ego_entry.get("position"), "ego.position"),
        velocity=_require_finite(ego_entry.get("velocity"), "ego.velocity"),
        acceleration=_require_finite(
            ego_entry.get("acceleration", 0.0), "ego.acceleration"
        ),
    )
    raw_messages = payload.get("messages", [])
    if not isinstance(raw_messages, list):
        raise ServeError(f"messages must be a list, got {raw_messages!r}")
    reports = tuple(
        _parse_report(entry, i, now) for i, entry in enumerate(raw_messages)
    )
    deadline_s: Optional[float] = None
    if payload.get("deadline_ms") is not None:
        deadline_ms = _require_finite(payload["deadline_ms"], "deadline_ms")
        if deadline_ms <= 0.0:
            raise ServeError(f"deadline_ms must be > 0, got {deadline_ms!r}")
        deadline_s = deadline_ms / 1000.0
    return Observation(time=now, ego=ego, reports=reports, deadline_s=deadline_s)


class DecisionSession:
    """Newest-report-per-vehicle store with reachability propagation.

    Parameters
    ----------
    analyzers:
        One :class:`ReachabilityAnalyzer` per *required* remote
        vehicle, keyed by vehicle index and built on that vehicle's
        physical limits.  A decision context exists only when every
        required vehicle has a fresh report.
    max_state_age:
        Maximum acceptable age of a report at decision time, seconds.
        Units: max_state_age [s]
    """

    def __init__(
        self,
        analyzers: Mapping[int, ReachabilityAnalyzer],
        max_state_age: float,
    ) -> None:
        if not analyzers:
            raise ServeError("DecisionSession requires >= 1 required vehicle")
        if not math.isfinite(max_state_age) or max_state_age <= 0.0:
            raise ServeError(
                f"max_state_age must be finite and > 0, got {max_state_age!r}"
            )
        self._analyzers = dict(analyzers)
        self._max_age = float(max_state_age)
        self._reports: Dict[int, RemoteReport] = {}
        self._accepted = 0
        self._superseded = 0

    @property
    def required_vehicles(self) -> Tuple[int, ...]:
        """Vehicle indices a decision context needs, sorted."""
        return tuple(sorted(self._analyzers))

    @property
    def reports_accepted(self) -> int:
        """Reports that entered (or refreshed) the store."""
        return self._accepted

    @property
    def reports_superseded(self) -> int:
        """Reports discarded because a newer stamp was already stored."""
        return self._superseded

    def last_stamp(self, vehicle: int) -> Optional[float]:
        """Stamp of the stored report for ``vehicle``, or ``None``."""
        report = self._reports.get(vehicle)
        return None if report is None else report.stamp

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, observation: Observation) -> int:
        """Merge a request's reports into the store; newest stamp wins.

        Reports about vehicles no analyzer was configured for are
        ignored (the server cannot reason soundly about a vehicle whose
        physical limits it does not know).  Returns how many reports
        were accepted.
        """
        accepted = 0
        for report in observation.reports:
            if report.vehicle not in self._analyzers:
                continue
            stored = self._reports.get(report.vehicle)
            if stored is not None and stored.stamp >= report.stamp:
                self._superseded += 1
                continue
            self._reports[report.vehicle] = report
            accepted += 1
        self._accepted += accepted
        return accepted

    # ------------------------------------------------------------------
    # Context construction
    # ------------------------------------------------------------------
    def context_for(self, observation: Observation) -> Optional[PlanningContext]:
        """The planning context at the request time, or ``None``.

        ``None`` means a required vehicle is missing, stale, or stamped
        after the (regressed) request time — the caller must answer
        from ladder level 3, never by inventing an estimate.
        """
        estimates: Dict[int, FusedEstimate] = {}
        now = observation.time
        for vehicle, analyzer in self._analyzers.items():
            report = self._reports.get(vehicle)
            if report is None:
                return None
            age = now - report.stamp
            if age < -_STAMP_TOLERANCE or age > self._max_age:
                return None
            band = analyzer.band_from_state(report.state(), report.stamp, now)
            estimates[vehicle] = FusedEstimate(
                time=now,
                position=band.position,
                velocity=band.velocity,
                nominal=VehicleState(
                    position=band.position.midpoint,
                    velocity=band.velocity.midpoint,
                    acceleration=report.acceleration,
                ),
                message_age=max(age, 0.0),
            )
        return PlanningContext(
            time=now, ego=observation.ego, estimates=estimates
        )

    def staleness(self, now: float) -> Optional[float]:
        """Age of the oldest required report at ``now``, seconds.

        Units: now [s] -> [s]

        ``None`` when some required vehicle has never reported.
        """
        worst = 0.0
        for vehicle in self._analyzers:
            report = self._reports.get(vehicle)
            if report is None:
                return None
            worst = max(worst, now - report.stamp)
        return worst
