"""The observer façade: what instrumented code is handed.

Every instrumentation site in the engine, planner shield, filter,
channel, and campaign layers takes an *observer* — either the
:class:`NullObserver` singleton (the default: every call is a
constant-time no-op and hot loops additionally guard on
``observer.enabled`` so the disabled path costs one attribute read) or
an :class:`Observer` binding a :class:`~repro.obs.trace.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`.

The load-bearing invariant — **observation must not perturb the
system** — is structural: the façade exposes only *write* operations
(``begin``/``end``/``span``/``instant``/``sample``/``count``/``gauge``/
``observe``); reading recorded values back belongs to the exporters and
the ``repro-trace`` CLI, and any dataflow from an observation value
into planner/dynamics/filter arguments is flagged by safelint rule
SFL011.  Tests enforce the invariant end to end by byte-comparing
traced and untraced :class:`~repro.sim.results.SimulationResult`
serialisations.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "Observer",
    "MetricsOnlyObserver",
    "NullObserver",
    "NULL_OBSERVER",
    "resolve_observer",
]


class NullObserver:
    """The disabled observer: every operation is a near-free no-op.

    Instrumentation sites hold a reference to this singleton when no
    observer is injected, and hot loops read :attr:`enabled` once per
    iteration (or once per run) to skip attribute construction
    entirely.  All methods are safe to call anyway — they do nothing.
    """

    __slots__ = ()

    #: Hot-loop guard: ``if observer.enabled:`` skips instrumentation.
    enabled = False

    def begin(self, name: str, **attrs) -> int:
        """No-op; returns an invalid span handle."""
        return -1

    def end(self, handle: int, **attrs) -> None:
        """No-op."""

    def instant(self, name: str, **attrs) -> None:
        """No-op."""

    def sample(self, name: str, value: float, **attrs) -> None:
        """No-op."""

    def count(self, name: str, value: float = 1, **labels) -> None:
        """No-op."""

    def gauge(self, name: str, value: float, **labels) -> None:
        """No-op."""

    def observe(self, name: str, value: float, **labels) -> None:
        """No-op."""

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[int]:
        """No-op context manager."""
        yield -1


#: The shared disabled observer; ``resolve_observer(None)`` returns it.
NULL_OBSERVER = NullObserver()


class Observer:
    """An enabled observer: tracer plus metrics behind one façade.

    Parameters
    ----------
    tracer:
        Event collector; a fresh :class:`~repro.obs.trace.Tracer` by
        default.
    metrics:
        Aggregate collector; a fresh
        :class:`~repro.obs.metrics.MetricsRegistry` by default.
    """

    __slots__ = ("tracer", "metrics")

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs) -> int:
        """Open a span (see :meth:`Tracer.begin`)."""
        return self.tracer.begin(name, **attrs)

    def end(self, handle: int, **attrs) -> None:
        """Close a span (see :meth:`Tracer.end`)."""
        self.tracer.end(handle, **attrs)

    def instant(self, name: str, **attrs) -> None:
        """Record a point event."""
        self.tracer.instant(name, **attrs)

    def sample(self, name: str, value: float, **attrs) -> None:
        """Record one time-series point."""
        self.tracer.sample(name, value, **attrs)

    def span(self, name: str, **attrs):
        """Context-managed span."""
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels) -> None:
        """Accumulate a counter."""
        self.metrics.count(name, value, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge."""
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record a histogram observation."""
        self.metrics.observe(name, value, **labels)


class MetricsOnlyObserver(Observer):
    """An enabled observer that aggregates metrics but keeps no events.

    Counters, gauges, and histograms aggregate in O(1) memory, while
    the :class:`Tracer` appends one record per span/instant — unbounded
    over a long run.  Long-lived processes that only need the metric
    side (shard workers streaming deltas to the coordinator, servers
    exposing the ``metrics`` probe for days) use this variant: every
    tracing operation is a no-op, every metric operation aggregates as
    usual.  Still write-only (SFL011 applies unchanged).
    """

    __slots__ = ()

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        super().__init__(tracer=Tracer(), metrics=metrics)

    def begin(self, name: str, **attrs) -> int:
        """No-op; returns an invalid span handle."""
        return -1

    def end(self, handle: int, **attrs) -> None:
        """No-op."""

    def instant(self, name: str, **attrs) -> None:
        """No-op."""

    def sample(self, name: str, value: float, **attrs) -> None:
        """No-op."""

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[int]:
        """No-op context manager."""
        yield -1


def resolve_observer(observer) -> object:
    """``None`` -> the shared :data:`NULL_OBSERVER`; else pass through.

    The idiom every instrumented constructor/entry point uses::

        self._obs = resolve_observer(observer)
    """
    return NULL_OBSERVER if observer is None else observer
