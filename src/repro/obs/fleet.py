"""Fleet aggregation: merging per-worker metric deltas exactly.

Shard workers piggyback metric *deltas* — the change in their local
:class:`~repro.obs.metrics.MetricsRegistry` since the previous report —
on the heartbeat/completed events they already stream to the
coordinator.  The coordinator folds every delta into one fleet-wide
registry under a ``fleet.`` prefix with **exact-sum semantics**:

* each counter delta adds into the unlabelled fleet total *and* into a
  per-worker labelled series, so
  ``fleet.x == sum_w fleet.x{worker=w}`` holds by construction (the
  acceptance test pins this identity across >= 3 real workers);
* histogram deltas merge bucket-by-bucket via
  :meth:`MetricsRegistry.absorb_histogram`;
* gauges are last-value-wins per worker (a fleet "total" of gauges is
  meaningless, so they only exist labelled).

Counter resets (a worker whose registry restarted) surface as negative
deltas and are dropped, keeping every fleet total monotonic.
Everything here runs on the coordinator's read/merge
side — worker registries themselves are never read back into control
flow (safelint SFL011).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry, parse_series_key

__all__ = [
    "FLEET_PREFIX",
    "empty_snapshot",
    "snapshot_delta",
    "delta_is_empty",
    "merge_delta",
]

#: Series-name prefix every merged worker metric gains in the fleet
#: registry (``engine.runs`` -> ``fleet.engine.runs``).
FLEET_PREFIX = "fleet."


def empty_snapshot() -> dict:
    """A structurally valid snapshot with no series."""
    return {"counters": {}, "gauges": {}, "histograms": {}}


def snapshot_delta(previous: dict, current: dict) -> dict:
    """The change from one registry snapshot to a later one.

    Counters difference key-by-key (zero-change series are omitted);
    gauges carry their current values (last-wins); histograms diff
    bucket counts/count/sum and keep the *cumulative* min/max, whose
    repeated absorption is idempotent.  The result is small enough to
    piggyback on a heartbeat line.
    """
    delta = empty_snapshot()
    prev_counters = previous.get("counters", {})
    for key, value in current.get("counters", {}).items():
        change = value - prev_counters.get(key, 0)
        if change:
            delta["counters"][key] = change
    delta["gauges"] = dict(current.get("gauges", {}))
    prev_hists = previous.get("histograms", {})
    for key, hist in current.get("histograms", {}).items():
        before = prev_hists.get(key)
        if before is None:
            delta["histograms"][key] = dict(hist)
            continue
        change = int(hist["count"]) - int(before["count"])
        if not change:
            continue
        delta["histograms"][key] = {
            "buckets": list(hist["buckets"]),
            "counts": [
                int(now) - int(then)
                for now, then in zip(hist["counts"], before["counts"])
            ],
            "count": change,
            "sum": float(hist["sum"]) - float(before["sum"]),
            "min": hist.get("min"),
            "max": hist.get("max"),
        }
    return delta


def delta_is_empty(delta: dict) -> bool:
    """True when a delta carries no counters, gauges, or histograms."""
    return not (
        delta.get("counters") or delta.get("gauges") or delta.get("histograms")
    )


def _labels_dict(labels) -> Dict[str, str]:
    return {k: v for k, v in labels}


def merge_delta(
    registry: MetricsRegistry,
    delta: dict,
    worker: Optional[str] = None,
    prefix: str = FLEET_PREFIX,
) -> None:
    """Fold one worker delta into the fleet registry.

    When ``worker`` is given, counters additionally accumulate into a
    ``worker=<id>``-labelled series and gauges are stored *only* under
    that label (per-worker last-value).  Histograms merge into the
    unlabelled fleet series via exact bucket sums.
    """
    for key, value in delta.get("counters", {}).items():
        name, labels = parse_series_key(key)
        base = _labels_dict(labels)
        change = float(value)
        if change < 0:
            # A negative delta means the upstream registry reset
            # (counters are monotonic); dropping it keeps the fleet
            # totals monotonic too, the property exact-sum relies on.
            continue
        registry.count(prefix + name, change, **base)
        if worker is not None:
            registry.count(prefix + name, change, worker=worker, **base)
    for key, value in delta.get("gauges", {}).items():
        name, labels = parse_series_key(key)
        base = _labels_dict(labels)
        if worker is not None:
            base["worker"] = worker
        registry.gauge(prefix + name, float(value), **base)
    for key, hist in delta.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        registry.absorb_histogram(prefix + name, hist, **_labels_dict(labels))
