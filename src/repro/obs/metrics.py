"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` aggregates named series keyed by a sorted
label set, Prometheus-style: ``channel.dropped{channel=veh1,stage=loss}``.
Three instrument kinds:

* **counter** — monotonically accumulated float/int (message drops,
  shield engagements, chunk retries);
* **gauge** — last written value (current safety margin, fused band
  width);
* **histogram** — fixed cumulative-style bucket counts plus
  count/sum/min/max (fsync latency, per-copy channel delay).

Buckets are fixed per histogram *name* at first use (or pre-registered
via :meth:`MetricsRegistry.register_histogram`), never derived from the
observed data, so two runs of the same workload produce structurally
identical snapshots.

Everything here is write-aggregate-snapshot: the instrumented layers
only call :meth:`count` / :meth:`gauge` / :meth:`observe`; reading a
snapshot back into planner, dynamics, or filter arguments is flagged by
safelint rule SFL011.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "metric_key",
    "histogram_quantile",
]

#: Default histogram bucket upper bounds, seconds-flavoured: spans the
#: microsecond-to-minute range the instrumented layers produce.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    60.0,
)


def histogram_quantile(snapshot: dict, q: float) -> Optional[float]:
    """Approximate the ``q``-quantile of one histogram snapshot.

    Prometheus-style linear interpolation inside the bucket that
    contains the rank, with the first bucket's lower edge taken as 0
    (the instrumented quantities — latencies, delays — are
    nonnegative).  Ranks falling in the overflow bucket return the
    observed maximum, which upper-bounds the true quantile.  Returns
    ``None`` for an empty histogram.

    This is a *reporting* helper (exporters, probes, benchmarks);
    feeding its output back into planner/filter/dynamics arguments is
    exactly what safelint rule SFL011 exists to flag.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
    count = snapshot["count"]
    if not count:
        return None
    rank = q * count
    cumulative = 0
    lower = 0.0
    for bound, bucket_count in zip(snapshot["buckets"], snapshot["counts"]):
        if bucket_count > 0 and cumulative + bucket_count >= rank:
            fraction = (rank - cumulative) / bucket_count
            return lower + (bound - lower) * max(fraction, 0.0)
        cumulative += bucket_count
        lower = bound
    return snapshot["max"]


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical series key: ``name{label=value,...}`` with sorted labels."""
    if not labels:
        return name
    parts = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{parts}}}"


class _Histogram:
    """One histogram series: fixed buckets plus running aggregates."""

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        # counts[i] observations <= buckets[i]; last slot is +inf overflow.
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Aggregated counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._buckets_by_name: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register_histogram(
        self, name: str, buckets: Sequence[float]
    ) -> None:
        """Fix the bucket bounds for every series of histogram ``name``.

        Must be strictly increasing and non-empty; re-registering with
        different bounds is refused (bucket identity is what makes
        snapshots comparable across runs).
        """
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        for lo, hi in zip(bounds, bounds[1:]):
            if hi <= lo:
                raise ConfigurationError(
                    f"histogram {name!r} buckets must be strictly "
                    f"increasing, got {bounds}"
                )
        existing = self._buckets_by_name.get(name)
        if existing is not None and existing != bounds:
            raise ConfigurationError(
                f"histogram {name!r} already registered with buckets "
                f"{existing}; refusing to change them mid-run"
            )
        self._buckets_by_name[name] = bounds

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to a counter series (monotonic accumulation)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to its latest value."""
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        key = metric_key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            buckets = self._buckets_by_name.setdefault(name, DEFAULT_BUCKETS)
            series = self._histograms[key] = _Histogram(buckets)
        series.observe(float(value))

    # ------------------------------------------------------------------
    # Reading (exporters and reports only — see SFL011)
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter series (0 if never written)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        """Latest value of one gauge series, or ``None``."""
        return self._gauges.get(metric_key(name, labels))

    def snapshot(self) -> dict:
        """Deterministically ordered dump of every series."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
        }

    def counter_series(self, prefix: str) -> Dict[str, float]:
        """Counter series whose key starts with ``prefix`` (reports)."""
        return {
            key: value
            for key, value in sorted(self._counters.items())
            if key.startswith(prefix)
        }

    def clear(self) -> None:
        """Reset every series (bucket registrations are kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
