"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` aggregates named series keyed by a sorted
label set, Prometheus-style: ``channel.dropped{channel=veh1,stage=loss}``.
Three instrument kinds:

* **counter** — monotonically accumulated float/int (message drops,
  shield engagements, chunk retries);
* **gauge** — last written value (current safety margin, fused band
  width);
* **histogram** — fixed cumulative-style bucket counts plus
  count/sum/min/max (fsync latency, per-copy channel delay).

Buckets are fixed per histogram *name* at first use (or pre-registered
via :meth:`MetricsRegistry.register_histogram`), never derived from the
observed data, so two runs of the same workload produce structurally
identical snapshots.

Everything here is write-aggregate-snapshot: the instrumented layers
only call :meth:`count` / :meth:`gauge` / :meth:`observe`; reading a
snapshot back into planner, dynamics, or filter arguments is flagged by
safelint rule SFL011.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "metric_key",
    "parse_series_key",
    "series_sort_key",
    "histogram_quantile",
]

#: Default histogram bucket upper bounds, seconds-flavoured: spans the
#: microsecond-to-minute range the instrumented layers produce.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    60.0,
)


def histogram_quantile(snapshot: dict, q: float) -> Optional[float]:
    """Approximate the ``q``-quantile of one histogram snapshot.

    Prometheus-style linear interpolation inside the bucket that
    contains the rank, with the first bucket's lower edge taken as 0
    (the instrumented quantities — latencies, delays — are
    nonnegative).  Ranks falling in the overflow bucket return the
    observed maximum, which upper-bounds the true quantile.  The result
    is clamped into the observed ``[min, max]`` envelope, so ``q=0``
    yields the observed minimum, ``q=1`` the observed maximum, and a
    rank interpolated inside a wide first bucket can never undershoot
    any value actually seen.  Returns ``None`` for an empty histogram.

    This is a *reporting* helper (exporters, probes, benchmarks);
    feeding its output back into planner/filter/dynamics arguments is
    exactly what safelint rule SFL011 exists to flag.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
    count = snapshot["count"]
    if not count:
        return None
    observed_min = snapshot.get("min")
    observed_max = snapshot.get("max")
    if q <= 0.0 and observed_min is not None:
        return observed_min
    if q >= 1.0 and observed_max is not None:
        return observed_max
    rank = q * count
    cumulative = 0
    lower = 0.0
    value: Optional[float] = None
    for bound, bucket_count in zip(snapshot["buckets"], snapshot["counts"]):
        if bucket_count > 0 and cumulative + bucket_count >= rank:
            fraction = (rank - cumulative) / bucket_count
            value = lower + (bound - lower) * max(fraction, 0.0)
            break
        cumulative += bucket_count
        lower = bound
    if value is None:
        # The rank fell past every finite bucket: the overflow (+inf)
        # slot.  The observed maximum is the tightest upper bound.
        value = observed_max
    if value is None:
        return None
    if observed_min is not None and value < observed_min:
        value = observed_min
    if observed_max is not None and value > observed_max:
        value = observed_max
    return value


def metric_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical series key: ``name{label=value,...}`` with sorted labels."""
    if not labels:
        return name
    parts = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{parts}}}"


def parse_series_key(key: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Split a series key back into ``(name, ((label, value), ...))``.

    The inverse of :func:`metric_key` for the label shapes the
    instrumented layers emit (scalar values without ``,``/``=`` in
    them).  A key that does not parse as ``name{k=v,...}`` is returned
    whole as the name with no labels — the function is total, which is
    what the deterministic-ordering and fleet-merge layers need.
    """
    if "{" not in key or not key.endswith("}"):
        return key, ()
    name, _, rest = key.partition("{")
    body = rest[:-1]
    if not body:
        return name, ()
    labels = []
    for part in body.split(","):
        label, sep, value = part.partition("=")
        if not sep:
            return key, ()
        labels.append((label, value))
    return name, tuple(labels)


def series_sort_key(key: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """Deterministic sort key: metric name first, then label items.

    Plain string order would interleave differently-labelled series of
    the same metric with unrelated metrics (``{`` sorts above
    alphanumerics), so snapshots — and the byte-stable exposition
    format built on them — sort by ``(name, labels)`` instead.
    """
    return parse_series_key(key)


class _Histogram:
    """One histogram series: fixed buckets plus running aggregates."""

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        # counts[i] observations <= buckets[i]; last slot is +inf overflow.
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Aggregated counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._buckets_by_name: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def register_histogram(
        self, name: str, buckets: Sequence[float]
    ) -> None:
        """Fix the bucket bounds for every series of histogram ``name``.

        Must be strictly increasing and non-empty; re-registering with
        different bounds is refused (bucket identity is what makes
        snapshots comparable across runs).
        """
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs >= 1 bucket")
        for lo, hi in zip(bounds, bounds[1:]):
            if hi <= lo:
                raise ConfigurationError(
                    f"histogram {name!r} buckets must be strictly "
                    f"increasing, got {bounds}"
                )
        existing = self._buckets_by_name.get(name)
        if existing is not None and existing != bounds:
            raise ConfigurationError(
                f"histogram {name!r} already registered with buckets "
                f"{existing}; refusing to change them mid-run"
            )
        self._buckets_by_name[name] = bounds

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels) -> None:
        """Add ``value`` to a counter series (monotonic accumulation)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge series to its latest value."""
        self._gauges[metric_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into a histogram series."""
        key = metric_key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            buckets = self._buckets_by_name.setdefault(name, DEFAULT_BUCKETS)
            series = self._histograms[key] = _Histogram(buckets)
        series.observe(float(value))

    def absorb_histogram(self, name: str, snapshot: dict, **labels) -> None:
        """Merge one histogram *snapshot* into a series of this registry.

        Exact-sum semantics: bucket counts, total count, and sum add;
        min/max fold with ``min``/``max`` (idempotent, so re-absorbing
        a worker's cumulative snapshot after a counter-style delta
        converges to the true envelope).  The snapshot's bucket bounds
        must match any bounds already fixed for ``name`` — the fleet
        aggregation layer relies on this to refuse mixing incompatible
        histograms.
        """
        bounds = tuple(float(b) for b in snapshot["buckets"])
        self.register_histogram(name, bounds)
        key = metric_key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            series = self._histograms[key] = _Histogram(bounds)
        counts = snapshot["counts"]
        if len(counts) != len(series.counts):
            raise ConfigurationError(
                f"histogram {name!r} snapshot has {len(counts)} bucket "
                f"counts, series expects {len(series.counts)}"
            )
        for i, bucket_count in enumerate(counts):
            series.counts[i] += int(bucket_count)
        series.count += int(snapshot["count"])
        series.sum += float(snapshot["sum"])
        if snapshot.get("min") is not None:
            series.min = min(series.min, float(snapshot["min"]))
        if snapshot.get("max") is not None:
            series.max = max(series.max, float(snapshot["max"]))

    # ------------------------------------------------------------------
    # Reading (exporters and reports only — see SFL011)
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        """Current value of one counter series (0 if never written)."""
        return self._counters.get(metric_key(name, labels), 0)

    def gauge_value(self, name: str, **labels) -> Optional[float]:
        """Latest value of one gauge series, or ``None``."""
        return self._gauges.get(metric_key(name, labels))

    def snapshot(self) -> dict:
        """Dump of every series, ordered by (name, label items).

        The ordering is a contract: it is what makes the Prometheus
        exposition built on snapshots byte-stable regardless of the
        order in which series were first written.
        """
        return {
            "counters": {
                k: self._counters[k]
                for k in sorted(self._counters, key=series_sort_key)
            },
            "gauges": {
                k: self._gauges[k]
                for k in sorted(self._gauges, key=series_sort_key)
            },
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms, key=series_sort_key)
            },
        }

    def counter_series(self, prefix: str) -> Dict[str, float]:
        """Counter series whose key starts with ``prefix`` (reports)."""
        return {
            key: self._counters[key]
            for key in sorted(self._counters, key=series_sort_key)
            if key.startswith(prefix)
        }

    def clear(self) -> None:
        """Reset every series (bucket registrations are kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
