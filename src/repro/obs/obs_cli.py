"""The ``repro-obs`` command line: dashboard, exposition, SLO gate.

Three subcommands over the fleet telemetry plane:

``repro-obs top``
    Live terminal dashboard (see :mod:`repro.obs.top`) over either a
    campaign/shard telemetry sidecar (``--dir``/``--file``) or a
    running decision server polled through its ``metrics`` probe
    (``--socket``/``--connect``).  ``--follow`` refreshes in place.

``repro-obs expo``
    Print one document (telemetry sidecar, metrics snapshot JSON, or
    serve stats payload) as Prometheus text exposition v0.0.4.

``repro-obs slo check``
    Evaluate a declarative SLO spec (see :mod:`repro.obs.slo`) against
    a document and exit 0 (pass) / 1 (violation) / 2 (error) — the CI
    gate over ``BENCH_serve.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, List, Optional

from repro.errors import ReproError, SloError
from repro.obs.expo import render_prometheus
from repro.obs.recorder import (
    TELEMETRY_FILE,
    TELEMETRY_FORMAT,
    read_telemetry,
)
from repro.obs.slo import (
    evaluate_slo,
    load_slo_spec,
    measurements_from_document,
    render_report,
)
from repro.obs.top import render_dashboard
from repro.obs.trace import perf_now, wall_now

__all__ = ["main", "EXIT_OK", "EXIT_FAIL", "EXIT_ERROR"]

#: Every check passed (or the dashboard rendered).
EXIT_OK = 0
#: At least one SLO check failed.
EXIT_FAIL = 1
#: Bad spec, unreadable document, unreachable server.
EXIT_ERROR = 2

#: ANSI clear-screen + home, used by ``top --follow``.
_CLEAR = "\x1b[2J\x1b[H"


def _load_document(path: Path) -> dict:
    """Read one JSON document, or the newest frame of a JSONL sidecar."""
    if path.suffix == ".jsonl":
        frames = read_telemetry(path)
        if not frames:
            raise SloError(f"no telemetry frames in {path}")
        return frames[-1]
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SloError(f"cannot read document {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SloError(f"document {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise SloError(f"document {path} must hold a JSON object")
    return raw


def _probe_frame(args: argparse.Namespace) -> dict:
    """One recorder-shaped frame from a live server's metrics probe."""
    from repro.serve.client import ServeClient

    if args.socket:
        client = ServeClient(path=args.socket, timeout=args.timeout)
    else:
        host, _, port = args.connect.partition(":")
        client = ServeClient(
            host=host or "127.0.0.1",
            port=int(port or 0),
            timeout=args.timeout,
        )
    try:
        payload = client.metrics()
    finally:
        client.close()
    snapshot = payload.get("snapshot") or {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    return {
        "format": TELEMETRY_FORMAT,
        "t": perf_now(),
        "wall": wall_now(),
        "counters": snapshot.get("counters", {}),
        "gauges": snapshot.get("gauges", {}),
        "histograms": snapshot.get("histograms", {}),
    }


def _telemetry_path(args: argparse.Namespace) -> Path:
    if args.file:
        return Path(args.file)
    return Path(args.dir) / TELEMETRY_FILE


def _cmd_top(args: argparse.Namespace) -> int:
    live = bool(args.socket or args.connect)
    frames: Deque[dict] = deque(maxlen=args.window)
    if live:
        frames.append(_probe_frame(args))

    def refresh() -> List[dict]:
        if live:
            frames.append(_probe_frame(args))
            return list(frames)
        return read_telemetry(_telemetry_path(args))[-args.window :]

    if not args.follow:
        if live:
            # Two samples give the dashboard one rate window.
            time.sleep(args.interval)
        print(render_dashboard(refresh()))
        return EXIT_OK
    try:
        while True:
            screen = render_dashboard(refresh())
            sys.stdout.write(_CLEAR + screen + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return EXIT_OK


def _cmd_expo(args: argparse.Namespace) -> int:
    document = _load_document(Path(args.document))
    measurements = measurements_from_document(document)
    sys.stdout.write(
        render_prometheus(measurements, namespace=args.namespace)
    )
    return EXIT_OK


def _cmd_slo_check(args: argparse.Namespace) -> int:
    spec = load_slo_spec(args.spec)
    document = _load_document(Path(args.document))
    report = evaluate_slo(spec, document)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return EXIT_OK if report.passed else EXIT_FAIL


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-obs`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Fleet telemetry: dashboard, exposition, SLO gates.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    top = sub.add_parser(
        "top", help="terminal dashboard over telemetry frames"
    )
    source = top.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dir", help="campaign/shard directory holding telemetry.jsonl"
    )
    source.add_argument("--file", help="telemetry sidecar path")
    source.add_argument("--socket", help="decision-server unix socket")
    source.add_argument(
        "--connect", help="decision-server host:port to poll"
    )
    top.add_argument(
        "--follow",
        action="store_true",
        help="refresh in place until interrupted",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh/poll period, seconds (default 1.0)",
    )
    top.add_argument(
        "--window",
        type=int,
        default=120,
        help="frames kept for the rate sparklines (default 120)",
    )
    top.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="server probe timeout, seconds",
    )
    top.set_defaults(func=_cmd_top)

    expo = sub.add_parser(
        "expo", help="render a document as Prometheus text exposition"
    )
    expo.add_argument(
        "document",
        help="telemetry .jsonl (newest frame), snapshot/stats/bench .json",
    )
    expo.add_argument(
        "--namespace",
        default="repro",
        help="metric name prefix (default: repro)",
    )
    expo.set_defaults(func=_cmd_expo)

    slo = sub.add_parser("slo", help="SLO spec operations")
    slo_sub = slo.add_subparsers(dest="slo_command", required=True)
    check = slo_sub.add_parser(
        "check", help="evaluate a spec against a document"
    )
    check.add_argument(
        "document",
        help="metrics snapshot / BENCH_*.json / stats payload / .jsonl",
    )
    check.add_argument(
        "--spec", required=True, help="SLO spec JSON file"
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report on stdout",
    )
    check.set_defaults(func=_cmd_slo_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-obs: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
