"""Declarative SLO specs evaluated over metric documents.

An SLO spec is a small JSON document pinning the operational
invariants the docs promise — p99 decision latency, ladder-mix
ceilings, ``serve.verify_replaced == 0``, zero collisions — so CI and
operators can *enforce* them instead of eyeballing dashboards::

    {
      "name": "serve-bench",
      "rules": [
        {"type": "gauge_max", "metric": "bench.p99_ms{test=...}",
         "max": 50.0, "description": "p99 decision latency"},
        {"type": "counter_max", "metric": "bench.verify_replaced{...}",
         "max": 0, "description": "shield verify never replaces"}
      ]
    }

:func:`evaluate_slo` runs a spec against any supported *document*:

* a :meth:`MetricsRegistry.snapshot` dict or flight-recorder frame
  (``counters``/``gauges``/``histograms`` sections);
* a ``BENCH_<area>.json`` benchmark document (entries become
  ``bench.duration_seconds{test=...}`` gauges, recorded ``extra``
  fields become ``bench.<field>{test=...}`` gauges, and
  ``bench.recorded`` / ``bench.failed`` counters summarise outcomes);
* a decision-server ``stats`` probe reply (its scalar fields map onto
  ``serve.*`` counters and ``serve.p50_ms``/``serve.p99_ms`` gauges).

Rule semantics: counters that were never written read as 0 (counter
semantics); absent gauges/histograms fail the rule unless it sets
``"absent_ok": true``.  Violations are report entries, never
exceptions — :class:`~repro.errors.SloError` is reserved for malformed
specs and unrecognisable documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SloError
from repro.obs.metrics import histogram_quantile, metric_key, parse_series_key

__all__ = [
    "RULE_TYPES",
    "SloRule",
    "SloSpec",
    "SloCheck",
    "SloReport",
    "load_slo_spec",
    "spec_from_dict",
    "measurements_from_document",
    "evaluate_slo",
    "render_report",
]

#: The rule vocabulary; anything else in a spec is an :class:`SloError`.
RULE_TYPES = (
    "counter_max",
    "counter_min",
    "gauge_max",
    "gauge_min",
    "quantile_max",
    "ratio_max",
)


def _canonical_metric(metric: str) -> str:
    """Normalise label order so spec authors need not sort labels."""
    name, labels = parse_series_key(metric)
    return metric_key(name, {k: v for k, v in labels})


@dataclass(frozen=True)
class SloRule:
    """One declarative bound over a metric document."""

    rule_type: str
    description: str
    metric: str = ""
    bound: float = 0.0
    q: float = 0.99
    numerator: str = ""
    denominator: str = ""
    absent_ok: bool = False

    def __post_init__(self) -> None:
        """Validate the rule against the known vocabulary."""
        if self.rule_type not in RULE_TYPES:
            raise SloError(
                f"unknown SLO rule type {self.rule_type!r}; "
                f"expected one of {', '.join(RULE_TYPES)}"
            )
        if self.rule_type == "ratio_max":
            if not self.numerator or not self.denominator:
                raise SloError(
                    "ratio_max rules need 'numerator' and 'denominator'"
                )
        elif not self.metric:
            raise SloError(f"{self.rule_type} rules need a 'metric'")
        if self.rule_type == "quantile_max" and not 0.0 <= self.q <= 1.0:
            raise SloError(f"quantile q must be in [0, 1], got {self.q!r}")


@dataclass(frozen=True)
class SloSpec:
    """A named collection of SLO rules."""

    name: str
    rules: Tuple[SloRule, ...]
    description: str = ""


@dataclass(frozen=True)
class SloCheck:
    """The outcome of one rule against one document."""

    rule: SloRule
    ok: bool
    value: Optional[float]
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form for ``repro-obs slo check --json``."""
        return {
            "type": self.rule.rule_type,
            "description": self.rule.description,
            "metric": self.rule.metric
            or f"{self.rule.numerator}/{self.rule.denominator}",
            "bound": self.rule.bound,
            "ok": self.ok,
            "value": self.value,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SloReport:
    """Every check of one spec over one document."""

    spec: str
    checks: Tuple[SloCheck, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        """True when every check passed."""
        return all(check.ok for check in self.checks)

    def to_dict(self) -> dict:
        """JSON-ready form for ``repro-obs slo check --json``."""
        return {
            "spec": self.spec,
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }


def _rule_from_dict(raw: dict) -> SloRule:
    if not isinstance(raw, dict):
        raise SloError(f"SLO rule must be an object, got {type(raw).__name__}")
    known = {
        "type",
        "metric",
        "max",
        "min",
        "q",
        "numerator",
        "denominator",
        "absent_ok",
        "description",
    }
    unknown = set(raw) - known
    if unknown:
        raise SloError(f"unknown SLO rule fields: {sorted(unknown)}")
    rule_type = raw.get("type", "")
    if rule_type.endswith("_min"):
        if "min" not in raw:
            raise SloError(f"{rule_type} rules need a 'min' bound")
        bound = float(raw["min"])
    else:
        if "max" not in raw:
            raise SloError(f"{rule_type or '<missing type>'} rules need a 'max' bound")
        bound = float(raw["max"])
    return SloRule(
        rule_type=rule_type,
        description=str(raw.get("description", "")) or rule_type,
        metric=_canonical_metric(str(raw.get("metric", ""))),
        bound=bound,
        q=float(raw.get("q", 0.99)),
        numerator=_canonical_metric(str(raw.get("numerator", ""))),
        denominator=_canonical_metric(str(raw.get("denominator", ""))),
        absent_ok=bool(raw.get("absent_ok", False)),
    )


def spec_from_dict(raw: dict) -> SloSpec:
    """Build and validate a spec from its JSON form."""
    if not isinstance(raw, dict):
        raise SloError("SLO spec must be a JSON object")
    rules = raw.get("rules")
    if not isinstance(rules, list) or not rules:
        raise SloError("SLO spec needs a non-empty 'rules' list")
    return SloSpec(
        name=str(raw.get("name", "unnamed")),
        description=str(raw.get("description", "")),
        rules=tuple(_rule_from_dict(rule) for rule in rules),
    )


def load_slo_spec(path: Union[str, Path]) -> SloSpec:
    """Load one spec file, raising :class:`SloError` on bad content."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SloError(f"cannot read SLO spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SloError(f"SLO spec {path} is not valid JSON: {exc}") from exc
    return spec_from_dict(raw)


# ---------------------------------------------------------------------------
# Document adapters
# ---------------------------------------------------------------------------
def _bench_measurements(document: dict) -> dict:
    counters: Dict[str, float] = {"bench.recorded": 0, "bench.failed": 0}
    gauges: Dict[str, float] = {}
    for entry in document.get("benchmarks", []):
        nodeid = str(entry.get("nodeid", ""))
        test = nodeid.rsplit("::", 1)[-1] or "unknown"
        counters["bench.recorded"] += 1
        if entry.get("outcome") != "passed":
            counters["bench.failed"] += 1
        duration = entry.get("duration_seconds")
        if duration is not None:
            gauges[metric_key("bench.duration_seconds", {"test": test})] = (
                float(duration)
            )
        extra = entry.get("extra")
        if isinstance(extra, dict):
            for name, value in extra.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    gauges[metric_key(f"bench.{name}", {"test": test})] = (
                        float(value)
                    )
    return {"counters": counters, "gauges": gauges, "histograms": {}}


_STATS_COUNTERS = (
    "offered",
    "served",
    "degraded",
    "shed",
    "deadline_misses",
    "retries",
    "planner_restarts",
    "verify_replaced",
    "malformed",
    "protocol_errors",
)

_STATS_GAUGES = ("shed_rate", "p50_ms", "p99_ms")


def _stats_measurements(document: dict) -> dict:
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    for name in _STATS_COUNTERS:
        value = document.get(name)
        if isinstance(value, (int, float)):
            counters[f"serve.{name}"] = float(value)
    ladder = document.get("ladder")
    if isinstance(ladder, dict):
        for level, value in ladder.items():
            counters[
                metric_key("serve.decisions", {"ladder": level})
            ] = float(value)
    for name in _STATS_GAUGES:
        value = document.get(name)
        if isinstance(value, (int, float)):
            gauges[f"serve.{name}"] = float(value)
    return {"counters": counters, "gauges": gauges, "histograms": {}}


def measurements_from_document(document: dict) -> dict:
    """Normalise any supported document into a snapshot-shaped dict."""
    if not isinstance(document, dict):
        raise SloError("SLO document must be a JSON object")
    if "counters" in document or "histograms" in document:
        return {
            "counters": dict(document.get("counters", {})),
            "gauges": dict(document.get("gauges", {})),
            "histograms": dict(document.get("histograms", {})),
        }
    if "benchmarks" in document:
        return _bench_measurements(document)
    if document.get("event") == "stats":
        return _stats_measurements(document)
    raise SloError(
        "unrecognised SLO document: expected a metrics snapshot, a "
        "BENCH_<area>.json document, or a serve stats payload"
    )


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------
def _check_bound(
    rule: SloRule, value: Optional[float], upper: bool
) -> SloCheck:
    if value is None:
        if rule.absent_ok:
            return SloCheck(rule, True, None, "absent (allowed)")
        return SloCheck(rule, False, None, "metric absent")
    if upper:
        ok = value <= rule.bound
        relation = "<="
    else:
        ok = value >= rule.bound
        relation = ">="
    return SloCheck(
        rule, ok, value, f"{value!r} {relation} {rule.bound!r}"
        if ok
        else f"{value!r} violates {relation} {rule.bound!r}"
    )


def _evaluate_rule(rule: SloRule, measurements: dict) -> SloCheck:
    counters = measurements["counters"]
    gauges = measurements["gauges"]
    histograms = measurements["histograms"]
    if rule.rule_type in ("counter_max", "counter_min"):
        value = float(counters.get(rule.metric, 0.0))
        return _check_bound(rule, value, rule.rule_type == "counter_max")
    if rule.rule_type in ("gauge_max", "gauge_min"):
        raw = gauges.get(rule.metric)
        value = None if raw is None else float(raw)
        return _check_bound(rule, value, rule.rule_type == "gauge_max")
    if rule.rule_type == "quantile_max":
        hist = histograms.get(rule.metric)
        quantile = (
            None if hist is None else histogram_quantile(hist, rule.q)
        )
        return _check_bound(rule, quantile, True)
    # ratio_max — the only remaining type after rule validation.
    numerator = float(counters.get(rule.numerator, 0.0))
    denominator = float(counters.get(rule.denominator, 0.0))
    if denominator <= 0.0:
        ok = numerator <= 0.0
        return SloCheck(
            rule,
            ok,
            0.0 if ok else None,
            "denominator is 0" + ("" if ok else " with nonzero numerator"),
        )
    return _check_bound(rule, numerator / denominator, True)


def evaluate_slo(spec: SloSpec, document: dict) -> SloReport:
    """Run every rule of ``spec`` against one document."""
    measurements = measurements_from_document(document)
    return SloReport(
        spec=spec.name,
        checks=tuple(
            _evaluate_rule(rule, measurements) for rule in spec.rules
        ),
    )


def render_report(report: SloReport) -> str:
    """Human-readable multi-line report for the CLI."""
    lines = [f"SLO spec: {report.spec}"]
    for check in report.checks:
        verdict = "PASS" if check.ok else "FAIL"
        metric = check.rule.metric or (
            f"{check.rule.numerator}/{check.rule.denominator}"
        )
        lines.append(
            f"  [{verdict}] {check.rule.description} "
            f"({check.rule.rule_type} {metric}): {check.detail}"
        )
    lines.append(
        f"result: {'PASS' if report.passed else 'FAIL'} "
        f"({sum(c.ok for c in report.checks)}/{len(report.checks)} checks)"
    )
    return "\n".join(lines)
