"""``repro-trace``: record, inspect, and convert observability traces.

Subcommands
-----------

``record``
    Run one fully traced closed-loop episode (compound planner +
    information filter + faulty channels) and write both the JSONL
    event stream and the Chrome trace-event JSON next to each other.
``summarize``
    Per-name event counts, span timing statistics, and metric totals
    from a JSONL stream (``--json`` for a machine-readable document).
``convert``
    JSONL stream -> Chrome trace-event JSON (Perfetto-loadable).
``margins``
    Shield engage/release timeline plus the safety-margin series
    rendered as a terminal chart.

Exit codes: 0 success; 2 on a bad stream or configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.comm.disturbance import no_disturbance
from repro.comm.faults import Duplication, IndependentLoss, UniformJitter, compose
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.errors import ReproError
from repro.obs.export import (
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.observer import Observer
from repro.planners.constant import FullThrottlePlanner
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.utils.rng import RngStream

__all__ = ["main", "build_parser", "record_trace"]

EXIT_OK = 0
EXIT_ERROR = 2

#: Channel fault presets for ``record`` — the "storm" composition
#: exercises every per-stage counter (drop, jitter/reorder, duplicate).
FAULT_PRESETS = ("none", "storm")

SCENARIOS = ("left_turn", "car_following")


def _scenario(name: str):
    if name == "left_turn":
        from repro.scenarios.left_turn.scenario import LeftTurnScenario

        return LeftTurnScenario()
    if name == "car_following":
        from repro.scenarios.car_following import CarFollowingScenario

        return CarFollowingScenario()
    raise ReproError(f"unknown scenario {name!r}; pick from {SCENARIOS}")


def _comm(faults: str) -> CommSetup:
    if faults not in FAULT_PRESETS:
        raise ReproError(
            f"unknown fault preset {faults!r}; pick from {FAULT_PRESETS}"
        )
    fault_model = (
        compose(
            IndependentLoss(0.2),
            UniformJitter(0.0, 0.25),
            Duplication(0.2, lag=0.05),
        )
        if faults == "storm"
        else None
    )
    return CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=no_disturbance(),
        sensor_bounds=NoiseBounds.uniform_all(0.5),
        faults=fault_model,
    )


def record_trace(
    out_dir,
    scenario: str = "left_turn",
    faults: str = "storm",
    seed: int = 1,
    max_time: float = 8.0,
) -> dict:
    """Run one traced episode; write ``trace.jsonl`` + ``trace.json``.

    The episode wires the full instrumented stack: compound planner
    (shield events), information filters (replay/watchdog events),
    channels (per-stage fault counters), and the engine's per-step
    spans.  Returns a small result dict with the output paths, the
    episode outcome, and any Chrome-trace validation problems (empty
    for a loadable document).
    """
    out_dir = Path(out_dir)
    scn = _scenario(scenario)
    comm = _comm(faults)
    engine = SimulationEngine(
        scn, comm, SimulationConfig(max_time=max_time)
    )
    observer = Observer()
    planner = CompoundPlanner(
        nn_planner=FullThrottlePlanner(scn.ego_limits),
        emergency_planner=scn.emergency_planner(),
        monitor=RuntimeMonitor(scn.safety_model()),
        limits=scn.ego_limits,
        observer=observer,
    )
    factory = make_estimator_factory(
        EstimatorKind.FILTERED, engine, observer=observer
    )
    result = engine.run(planner, factory, RngStream(seed), observer=observer)

    jsonl_path = write_jsonl(
        out_dir / "trace.jsonl", observer.tracer, observer.metrics
    )
    chrome_path = write_chrome_trace(
        out_dir / "trace.json",
        observer.tracer.events,
        process_name=f"repro:{scenario}",
    )
    problems = validate_chrome_trace(
        json.loads(chrome_path.read_text(encoding="utf-8"))
    )
    return {
        "jsonl": jsonl_path,
        "chrome": chrome_path,
        "outcome": result.outcome.value,
        "n_events": len(observer.tracer.events),
        "problems": problems,
        "observer": observer,
        "result": result,
    }


# ---------------------------------------------------------------------------
# summarize
# ---------------------------------------------------------------------------
def _span_stats(events: List[dict]) -> List[tuple]:
    """``(name, count, total, mean, max)`` rows over span events."""
    by_name: dict = {}
    for event in events:
        if event.get("kind") != "span":
            continue
        durations = by_name.setdefault(event["name"], [])
        durations.append(float(event.get("dur", 0.0)))
    rows = []
    for name in sorted(by_name):
        durations = by_name[name]
        total = sum(durations)
        rows.append(
            (name, len(durations), total, total / len(durations), max(durations))
        )
    return rows


def _event_counts(events: List[dict]) -> List[tuple]:
    counts: dict = {}
    for event in events:
        key = (event.get("kind", "?"), event.get("name", "?"))
        counts[key] = counts.get(key, 0) + 1
    return sorted(counts.items())


def _summary_document(
    stream: str, header: dict, events: List[dict], snapshot: dict
) -> dict:
    """The ``summarize --json`` payload: counts, spans, metric totals."""
    return {
        "stream": str(stream),
        "schema_version": header.get("schema_version"),
        "n_events": len(events),
        "event_counts": [
            {"kind": kind, "name": name, "count": count}
            for (kind, name), count in _event_counts(events)
        ],
        "spans": [
            {
                "name": name,
                "count": count,
                "total_seconds": total,
                "mean_seconds": mean,
                "max_seconds": peak,
            }
            for name, count, total, mean, peak in _span_stats(events)
        ],
        "counters": dict(snapshot.get("counters", {})) if snapshot else {},
        "gauges": dict(snapshot.get("gauges", {})) if snapshot else {},
        "histograms": dict(snapshot.get("histograms", {})) if snapshot else {},
    }


def _cmd_summarize(args: argparse.Namespace) -> int:
    header, events, snapshot = read_jsonl(args.stream)
    if args.json:
        document = _summary_document(args.stream, header, events, snapshot)
        print(json.dumps(document, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"stream: {args.stream} (schema {header.get('schema_version')})")
    print(f"events: {len(events)}")
    print()
    print("event counts")
    for (kind, name), count in _event_counts(events):
        print(f"  {kind:8s} {name:32s} {count:8d}")
    rows = _span_stats(events)
    if rows:
        print()
        print("span timing (seconds)")
        print(f"  {'name':32s} {'count':>8s} {'total':>10s} {'mean':>10s} {'max':>10s}")
        for name, count, total, mean, peak in rows:
            print(
                f"  {name:32s} {count:8d} {total:10.4f} {mean:10.6f} {peak:10.6f}"
            )
    if snapshot:
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        if counters:
            print()
            print("counters")
            for key in sorted(counters):
                print(f"  {key:48s} {counters[key]:12g}")
        if gauges:
            print()
            print("gauges")
            for key in sorted(gauges):
                print(f"  {key:48s} {gauges[key]:12g}")
        if histograms:
            print()
            print("histograms")
            for key in sorted(histograms):
                h = histograms[key]
                print(
                    f"  {key:48s} n={h.get('count', 0):g} "
                    f"sum={h.get('sum', 0.0):g} "
                    f"min={h.get('min', 0.0):g} max={h.get('max', 0.0):g}"
                )
    return EXIT_OK


# ---------------------------------------------------------------------------
# convert
# ---------------------------------------------------------------------------
def _cmd_convert(args: argparse.Namespace) -> int:
    _, events, _ = read_jsonl(args.stream)
    path = write_chrome_trace(args.out, events)
    problems = validate_chrome_trace(
        json.loads(path.read_text(encoding="utf-8"))
    )
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    print(f"wrote {path} ({len(events)} events)")
    return EXIT_OK if not problems else EXIT_ERROR


# ---------------------------------------------------------------------------
# margins
# ---------------------------------------------------------------------------
def _cmd_margins(args: argparse.Namespace) -> int:
    from repro.analysis.text_plot import line_chart

    _, events, _ = read_jsonl(args.stream)
    switches = [
        e
        for e in events
        if e.get("kind") == "instant"
        and e.get("name") in ("shield.engage", "shield.release")
    ]
    print(f"shield switches: {len(switches)}")
    for event in switches:
        attrs = event.get("attrs", {})
        t = attrs.get("t", event.get("ts", 0.0))
        label = event["name"].split(".", 1)[1]
        cause = attrs.get("cause")
        suffix = f"  cause={cause}" if cause else ""
        print(f"  t={float(t):7.2f}s  {label:8s}{suffix}")

    samples = [
        e
        for e in events
        if e.get("kind") == "sample" and e.get("name") == "shield.margin"
    ]
    if not samples:
        print("no shield.margin samples in this stream")
        return EXIT_OK
    xs = [float(e.get("attrs", {}).get("t", e.get("ts", 0.0))) for e in samples]
    ys = [float(e["value"]) for e in samples]
    print()
    print(
        line_chart(
            xs,
            {"margin": ys},
            width=args.width,
            height=args.height,
            title="safety margin over simulated time",
            y_label="slack [m]",
        )
    )
    return EXIT_OK


# ---------------------------------------------------------------------------
# record
# ---------------------------------------------------------------------------
def _cmd_record(args: argparse.Namespace) -> int:
    report = record_trace(
        args.out_dir,
        scenario=args.scenario,
        faults=args.faults,
        seed=args.seed,
        max_time=args.max_time,
    )
    print(
        f"recorded {report['n_events']} events "
        f"(outcome: {report['outcome']})"
    )
    print(f"  jsonl:  {report['jsonl']}")
    print(f"  chrome: {report['chrome']}")
    for problem in report["problems"]:
        print(f"warning: {problem}", file=sys.stderr)
    return EXIT_OK if not report["problems"] else EXIT_ERROR


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-trace`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Record, inspect, and convert observability traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_record = sub.add_parser(
        "record", help="run one traced episode and write the streams"
    )
    p_record.add_argument("out_dir", help="directory for trace.jsonl/trace.json")
    p_record.add_argument(
        "--scenario", choices=SCENARIOS, default="left_turn"
    )
    p_record.add_argument(
        "--faults", choices=FAULT_PRESETS, default="storm"
    )
    p_record.add_argument("--seed", type=int, default=1)
    p_record.add_argument(
        "--max-time", type=float, default=8.0, dest="max_time"
    )
    p_record.set_defaults(func=_cmd_record)

    p_sum = sub.add_parser("summarize", help="event counts and span timing")
    p_sum.add_argument("stream", help="trace.jsonl path")
    p_sum.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_sum.set_defaults(func=_cmd_summarize)

    p_conv = sub.add_parser(
        "convert", help="JSONL stream -> Chrome trace-event JSON"
    )
    p_conv.add_argument("stream", help="trace.jsonl path")
    p_conv.add_argument("out", help="output .json path")
    p_conv.set_defaults(func=_cmd_convert)

    p_margins = sub.add_parser(
        "margins", help="shield-switch timeline + safety-margin chart"
    )
    p_margins.add_argument("stream", help="trace.jsonl path")
    p_margins.add_argument("--width", type=int, default=60)
    p_margins.add_argument("--height", type=int, default=14)
    p_margins.set_defaults(func=_cmd_margins)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
