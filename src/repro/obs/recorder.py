"""Ring-buffer flight recorder: periodic metric snapshots and rates.

A :class:`FlightRecorder` watches one
:class:`~repro.obs.metrics.MetricsRegistry` and takes timestamped
snapshot *frames* on demand (:meth:`FlightRecorder.record`) or on a
throttled cadence (:meth:`FlightRecorder.tick`).  Frames live in a
bounded ring buffer — the last ``capacity`` frames are always
available for the ``repro-obs top`` dashboard — and can additionally
be appended to a JSONL *sidecar* file, the telemetry stream campaign
and shard runs leave next to their journal.

Like the journal's ``elapsed`` fields, telemetry frames are per-run
operational artifacts: they carry wall-clock values and are **never**
part of the cross-run bit-identity contract (``aggregate.json`` and
chunk snapshots stay byte-deterministic with or without a sidecar).
The recorder only *reads* registry snapshots — it lives on the read
side of the write-only observation contract (safelint SFL011).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.trace import perf_now, wall_now

__all__ = [
    "TELEMETRY_FILE",
    "TELEMETRY_FORMAT",
    "FlightRecorder",
    "frame_rates",
    "read_telemetry",
]

#: Conventional sidecar filename inside a campaign/shard directory.
TELEMETRY_FILE = "telemetry.jsonl"

#: Frame format tag; bump on incompatible frame-shape changes.
TELEMETRY_FORMAT = "repro-telemetry/1"


def frame_rates(older: dict, newer: dict) -> Dict[str, float]:
    """Per-second counter rates between two frames.

    Returns ``{series_key: rate}`` for every counter present in the
    newer frame.  A counter that went backwards (a restarted source)
    contributes its absolute newer value over the window, mirroring
    Prometheus ``rate()`` reset handling.  An empty dict when the
    frames are not at least a microsecond apart.
    """
    dt = float(newer["t"]) - float(older["t"])
    if dt < 1e-6:
        return {}
    old_counters = older.get("counters", {})
    rates: Dict[str, float] = {}
    for key, value in newer.get("counters", {}).items():
        delta = float(value) - float(old_counters.get(key, 0.0))
        if delta < 0:
            delta = float(value)
        rates[key] = delta / dt
    return rates


class FlightRecorder:
    """Bounded snapshot history over one metrics registry.

    Parameters
    ----------
    registry:
        The registry to snapshot (read-only access).
    capacity:
        Ring-buffer depth; the default keeps ~4 minutes of history at
        a one-second cadence.
    sidecar:
        Optional JSONL path; every recorded frame is appended as one
        line (the file is created on first write).
    min_interval:
        Throttle for :meth:`tick`: seconds that must elapse since the
        last frame before a new one is recorded.
        Units: min_interval [s]
    """

    def __init__(
        self,
        registry,
        capacity: int = 240,
        sidecar: Optional[Union[str, Path]] = None,
        min_interval: float = 0.0,
    ) -> None:
        if capacity < 2:
            raise ConfigurationError("FlightRecorder needs capacity >= 2")
        self._registry = registry
        self._frames: Deque[dict] = deque(maxlen=int(capacity))
        self._sidecar = Path(sidecar) if sidecar is not None else None
        self._min_interval = float(min_interval)
        self._last_t: Optional[float] = None

    @property
    def registry(self):
        """The registry this recorder snapshots."""
        return self._registry

    @property
    def sidecar(self) -> Optional[Path]:
        """The JSONL sidecar path, when frames are persisted."""
        return self._sidecar

    def record(self) -> dict:
        """Take one frame now, unconditionally, and return it."""
        now = perf_now()
        snapshot = self._registry.snapshot()
        frame = {
            "format": TELEMETRY_FORMAT,
            "t": now,
            "wall": wall_now(),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
        }
        self._frames.append(frame)
        self._last_t = now
        if self._sidecar is not None:
            line = json.dumps(frame, sort_keys=True) + "\n"
            with open(self._sidecar, "a", encoding="utf-8") as handle:
                handle.write(line)
        return frame

    def tick(self, force: bool = False) -> Optional[dict]:
        """Record a frame if ``min_interval`` has elapsed (or forced)."""
        if (
            not force
            and self._last_t is not None
            and perf_now() - self._last_t < self._min_interval
        ):
            return None
        return self.record()

    def frames(self) -> List[dict]:
        """The buffered frames, oldest first."""
        return list(self._frames)

    def latest(self) -> Optional[dict]:
        """The newest frame, or ``None`` before the first record."""
        return self._frames[-1] if self._frames else None

    def window_seconds(self) -> float:
        """Elapsed time covered by the buffered frames.

        Units: return [s]
        """
        if len(self._frames) < 2:
            return 0.0
        return float(self._frames[-1]["t"]) - float(self._frames[0]["t"])

    def window_rates(self) -> Dict[str, float]:
        """Counter rates across the whole buffered window.

        ``{series_key: per-second rate}`` between the oldest and newest
        buffered frames (empty with fewer than two frames).
        """
        if len(self._frames) < 2:
            return {}
        return frame_rates(self._frames[0], self._frames[-1])


def read_telemetry(path: Union[str, Path]) -> List[dict]:
    """Load the frames of one telemetry sidecar, oldest first.

    Torn or malformed lines (a recorder killed mid-write) and frames
    with an unknown format tag are skipped, mirroring the journal's
    crash-tolerant read path — a partially written sidecar still
    renders.
    """
    path = Path(path)
    frames: List[dict] = []
    if not path.exists():
        return frames
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                frame = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(frame, dict)
                and frame.get("format") == TELEMETRY_FORMAT
                and "t" in frame
            ):
                frames.append(frame)
    return frames
