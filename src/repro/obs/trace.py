"""The tracer and the repository's only sanctioned wall-clock reader.

Every other module under ``repro`` is banned from reading the host
clock (safelint rule SFL004: simulated time is integer step arithmetic
via :class:`repro.sim.clock.MultiRateClock`).  Observability, however,
*is about* wall time — span durations, fsync latency, chunk elapsed
time — so this module holds a scoped, documented exemption from that
rule (see ``EXEMPT_MODULES`` in
:mod:`repro.lint.rules.wall_clock`): :func:`perf_now` and
:func:`wall_now` are the façade through which the rest of the codebase
obtains wall-clock readings, and rule SFL011 (observation-effect
guard) in turn forbids those readings from flowing into planner,
dynamics, or filter arguments.

:class:`Tracer` records three event kinds into an in-memory list:

``span``
    A named duration with begin/end timestamps (``ts`` + ``dur``
    seconds relative to the tracer's epoch) — per-step and per-stage
    engine timing, chunk wall time.
``instant``
    A point event — a shield switch, a filter replay, a watchdog trip.
``sample``
    A named numeric time series point (``value``) — the safety-margin
    series, fused interval widths.

Attributes attached to an event must be JSON-serialisable scalars; the
exporters (:mod:`repro.obs.export`) turn the list into a JSONL stream
or a Chrome trace-event document loadable in Perfetto.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["Tracer", "perf_now", "wall_now"]


def perf_now() -> float:
    """Monotonic high-resolution timestamp for durations.

    Units: -> [s]
    """
    return time.perf_counter()


def wall_now() -> float:
    """Absolute wall-clock timestamp (epoch seconds) for report stamps.

    Units: -> [s]
    """
    return time.time()


class Tracer:
    """Collects spans, instants, and samples with ``perf_counter`` timing.

    Parameters
    ----------
    clock:
        Injectable timestamp source (tests pass a fake clock so span
        durations are asserted exactly); defaults to :func:`perf_now`.

    Notes
    -----
    Handles returned by :meth:`begin` are opaque integers; spans may
    close out of order (the engine's step span wraps the stage spans,
    but an early ``break`` can close them in any sequence).  The tracer
    is deliberately write-only from the instrumented code's point of
    view: nothing in :mod:`repro.sim`, :mod:`repro.core` or
    :mod:`repro.filtering` may read timing values back into control
    decisions (rule SFL011).
    """

    def __init__(self, clock: Callable[[], float] = perf_now) -> None:
        self._clock = clock
        self._epoch = clock()
        self._events: List[dict] = []
        self._open: Dict[int, Tuple[str, float, dict]] = {}
        self._next_handle = 0

    @property
    def events(self) -> List[dict]:
        """Completed events, in completion order (live list)."""
        return self._events

    @property
    def n_open(self) -> int:
        """Spans begun but not yet ended."""
        return len(self._open)

    @property
    def epoch(self) -> float:
        """Clock reading the relative timestamps are measured from.

        Units: -> [s]
        """
        return self._epoch

    def clear(self) -> None:
        """Drop all completed events (open spans are kept)."""
        self._events.clear()

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns the handle to pass to :meth:`end`."""
        handle = self._next_handle
        self._next_handle += 1
        self._open[handle] = (name, self._clock(), attrs)
        return handle

    def end(self, handle: int, **attrs) -> None:
        """Close the span ``handle``; extra attrs merge into the event.

        Ending an unknown (or already-ended) handle is a silent no-op:
        instrumentation must never be able to crash the system it
        observes.
        """
        entry = self._open.pop(handle, None)
        if entry is None:
            return
        name, started, begin_attrs = entry
        now = self._clock()
        merged = dict(begin_attrs)
        merged.update(attrs)
        self._events.append(
            {
                "kind": "span",
                "name": name,
                "ts": started - self._epoch,
                "dur": max(now - started, 0.0),
                "attrs": merged,
            }
        )

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[int]:
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        handle = self.begin(name, **attrs)
        try:
            yield handle
        finally:
            self.end(handle)

    # ------------------------------------------------------------------
    # Point events
    # ------------------------------------------------------------------
    def instant(self, name: str, **attrs) -> None:
        """Record a point event."""
        self._events.append(
            {
                "kind": "instant",
                "name": name,
                "ts": self._clock() - self._epoch,
                "attrs": attrs,
            }
        )

    def sample(self, name: str, value: float, **attrs) -> None:
        """Record one point of a named numeric time series."""
        self._events.append(
            {
                "kind": "sample",
                "name": name,
                "ts": self._clock() - self._epoch,
                "value": float(value),
                "attrs": attrs,
            }
        )

    # ------------------------------------------------------------------
    # Introspection for the exporters
    # ------------------------------------------------------------------
    def events_named(self, name: str) -> List[dict]:
        """Completed events with the given name, in order."""
        return [event for event in self._events if event["name"] == name]

    def open_span_names(self) -> List[str]:
        """Names of spans currently open (diagnostic aid)."""
        return [name for name, _, _ in self._open.values()]
