"""Trace exporters: JSONL event stream and Chrome trace-event JSON.

Two on-disk shapes:

* **JSONL stream** (:func:`write_jsonl` / :func:`read_jsonl`) — one
  JSON object per line: a schema-versioned header, every tracer event
  in completion order, and a final ``metrics`` record holding the
  registry snapshot.  This is the lossless archival format the
  ``repro-trace`` CLI consumes.
* **Chrome trace-event JSON** (:func:`to_chrome_trace`) — the
  ``traceEvents`` document Perfetto and ``chrome://tracing`` load:
  spans become complete (``"ph": "X"``) events, instants become
  ``"ph": "i"``, and samples become counter (``"ph": "C"``) series.
  Timestamps are microseconds relative to the tracer epoch.

:func:`validate_chrome_trace` checks a document against the subset of
the trace-event schema the importers actually require; the CI
trace-smoke job fails on any problem it reports.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SerializationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.sim.serialization import (
    SCHEMA_VERSION,
    canonical_dumps,
    check_schema_version,
)

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: ``stream`` field of the JSONL header; readers reject other streams.
STREAM_NAME = "reprotrace"

_EVENT_KINDS = frozenset({"span", "instant", "sample"})


def write_jsonl(
    path: Union[str, Path],
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
) -> Path:
    """Write header, events, and a metrics snapshot as JSON lines."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        canonical_dumps(
            {
                "kind": "header",
                "schema_version": SCHEMA_VERSION,
                "stream": STREAM_NAME,
                "clock": "perf_counter",
            }
        )
    ]
    for event in tracer.events:
        lines.append(canonical_dumps(event))
    if metrics is not None:
        lines.append(
            canonical_dumps({"kind": "metrics", "snapshot": metrics.snapshot()})
        )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_jsonl(
    path: Union[str, Path],
) -> Tuple[dict, List[dict], Optional[dict]]:
    """Read a JSONL stream back: ``(header, events, metrics_snapshot)``.

    Raises :class:`~repro.errors.SerializationError` on a missing or
    foreign header, an incompatible schema major, or a malformed line.
    """
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no trace stream at {path}")
    header: Optional[dict] = None
    events: List[dict] = []
    snapshot: Optional[dict] = None
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{path}:{lineno}: not valid JSON ({exc})"
            ) from exc
        if not isinstance(record, dict):
            raise SerializationError(f"{path}:{lineno}: not a JSON object")
        kind = record.get("kind")
        if header is None:
            if kind != "header":
                raise SerializationError(
                    f"{path}: first record must be the header, got {kind!r}"
                )
            if record.get("stream") != STREAM_NAME:
                raise SerializationError(
                    f"{path}: stream {record.get('stream')!r} is not a "
                    f"{STREAM_NAME!r} stream"
                )
            check_schema_version(record, "trace header")
            header = record
        elif kind == "metrics":
            snapshot = record.get("snapshot")
        elif kind in _EVENT_KINDS:
            events.append(record)
        else:
            raise SerializationError(
                f"{path}:{lineno}: unknown record kind {kind!r}"
            )
    if header is None:
        raise SerializationError(f"{path}: empty trace stream")
    return header, events, snapshot


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------
def _finite_args(attrs: dict) -> dict:
    """Attrs with non-finite floats stringified (strict-JSON safe)."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, float) and not math.isfinite(value):
            out[key] = repr(value)
        else:
            out[key] = value
    return out


def to_chrome_trace(
    events: Sequence[dict], process_name: str = "repro"
) -> dict:
    """Events (tracer or JSONL) as a Chrome trace-event document.

    Span events map to complete events (``"ph": "X"``, duration in
    microseconds), instants to ``"ph": "i"`` with thread scope, and
    samples to counter events (``"ph": "C"``) so Perfetto renders them
    as a track per series name.  Non-finite sample values are skipped —
    strict JSON cannot carry them and counter tracks would break.
    """
    trace_events: List[dict] = [
        {
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for event in events:
        kind = event.get("kind")
        name = str(event.get("name", ""))
        ts_us = float(event.get("ts", 0.0)) * 1e6
        attrs = _finite_args(dict(event.get("attrs", {})))
        if kind == "span":
            trace_events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": 0,
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ts": ts_us,
                    "dur": float(event.get("dur", 0.0)) * 1e6,
                    "args": attrs,
                }
            )
        elif kind == "instant":
            trace_events.append(
                {
                    "ph": "i",
                    "pid": 0,
                    "tid": 0,
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ts": ts_us,
                    "s": "t",
                    "args": attrs,
                }
            )
        elif kind == "sample":
            value = float(event.get("value", 0.0))
            if not math.isfinite(value):
                continue
            trace_events.append(
                {
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "name": name,
                    "ts": ts_us,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path],
    events: Sequence[dict],
    process_name: str = "repro",
) -> Path:
    """Write :func:`to_chrome_trace` output as strict JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = to_chrome_trace(events, process_name=process_name)
    path.write_text(
        json.dumps(document, allow_nan=False, indent=1), encoding="utf-8"
    )
    return path


_REQUIRED_BY_PHASE: Dict[str, Tuple[str, ...]] = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid"),
}


def validate_chrome_trace(document: object) -> List[str]:
    """Problems that would make Perfetto/chrome://tracing reject this.

    Returns an empty list for a loadable document.  Checked: the
    ``traceEvents`` array exists, every event carries a known phase
    with that phase's required fields, numeric fields are finite
    numbers, and complete events have non-negative durations.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["trace document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"traceEvents[{i}] is not an object")
            continue
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase) if isinstance(phase, str) else None
        if required is None:
            problems.append(f"traceEvents[{i}] has unknown phase {phase!r}")
            continue
        for field in required:
            if field not in event:
                problems.append(
                    f"traceEvents[{i}] ({phase}) is missing {field!r}"
                )
        for field in ("ts", "dur"):
            if field in event:
                value = event[field]
                if not isinstance(value, (int, float)) or not math.isfinite(
                    float(value)
                ):
                    problems.append(
                        f"traceEvents[{i}].{field} is not a finite number"
                    )
        if phase == "X":
            dur = event.get("dur")
            if isinstance(dur, (int, float)) and float(dur) < 0.0:
                problems.append(f"traceEvents[{i}].dur is negative")
    return problems
