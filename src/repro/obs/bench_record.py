"""Machine-readable benchmark trajectories (``BENCH_<area>.json``).

The benchmark suite reproduces the paper's tables but, until this
module, persisted nothing a later PR could regress against.  The hook
in ``benchmarks/conftest.py`` collects one entry per benchmark test
(node id, outcome, wall duration) and, when ``REPRO_BENCH_RECORD=1``,
writes one schema-versioned document per benchmark *area* — the file
stem with its ``test_bench_`` prefix stripped, so
``benchmarks/test_bench_micro.py`` records into ``BENCH_micro.json``.

Documents carry the same ``schema_version`` discipline as the result
serialisation layer: minor additions are ignored by older readers,
major mismatches are rejected by :func:`load_bench_document`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import SerializationError
from repro.sim.serialization import SCHEMA_VERSION, check_schema_version

__all__ = [
    "area_of_nodeid",
    "make_bench_document",
    "write_bench_documents",
    "load_bench_document",
]

_PREFIX = "test_bench_"


def area_of_nodeid(nodeid: str) -> str:
    """Benchmark area of a pytest node id.

    ``benchmarks/test_bench_micro.py::test_x`` -> ``micro``; files
    without the ``test_bench_`` prefix fall back to their full stem.
    """
    file_part = nodeid.split("::", 1)[0]
    stem = Path(file_part).stem
    if stem.startswith(_PREFIX):
        return stem[len(_PREFIX):] or stem
    return stem


def make_bench_document(
    area: str,
    entries: Sequence[dict],
    context: Optional[dict] = None,
) -> dict:
    """One area's recording as a schema-versioned document.

    Entries are sorted by node id so reruns differ only in the measured
    numbers, never in structure.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "area": area,
        "context": dict(context or {}),
        "benchmarks": sorted(
            (dict(entry) for entry in entries),
            key=lambda entry: str(entry.get("nodeid", "")),
        ),
    }


def write_bench_documents(
    entries: Sequence[dict],
    directory: Union[str, Path],
    context: Optional[dict] = None,
) -> List[Path]:
    """Group entries by area and write one ``BENCH_<area>.json`` each.

    Every entry must carry a ``nodeid``; returns the written paths in
    area order.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_area: Dict[str, List[dict]] = {}
    for entry in entries:
        nodeid = entry.get("nodeid")
        if not isinstance(nodeid, str) or not nodeid:
            raise SerializationError(
                f"bench entry without a nodeid: {entry!r}"
            )
        by_area.setdefault(area_of_nodeid(nodeid), []).append(entry)
    paths: List[Path] = []
    for area in sorted(by_area):
        document = make_bench_document(area, by_area[area], context=context)
        path = directory / f"BENCH_{area}.json"
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True, allow_nan=False)
            + "\n",
            encoding="utf-8",
        )
        paths.append(path)
    return paths


def load_bench_document(path: Union[str, Path]) -> dict:
    """Read one ``BENCH_<area>.json`` back, enforcing the schema major."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no benchmark record at {path}")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError(f"{path} is not a JSON object")
    check_schema_version(document, "benchmark record")
    if not isinstance(document.get("benchmarks"), list):
        raise SerializationError(f"{path} has no 'benchmarks' array")
    return document
