"""``python -m repro.obs`` — the ``repro-trace`` command line."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
