"""Prometheus text exposition (v0.0.4) over metrics snapshots.

Renders a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` — or any
structurally identical dict, such as a flight-recorder frame or the
fleet registry a :class:`~repro.campaign.shard.coordinator.ShardCoordinator`
merges — into the plain-text format every Prometheus-compatible scraper
understands::

    # TYPE repro_serve_offered counter
    repro_serve_offered 42
    # TYPE repro_serve_decision_seconds histogram
    repro_serve_decision_seconds_bucket{le="0.0005"} 3
    ...
    repro_serve_decision_seconds_bucket{le="+Inf"} 7
    repro_serve_decision_seconds_sum 0.0042
    repro_serve_decision_seconds_count 7

Design points:

* **Deterministic bytes.** Families render sorted by name, series
  sorted by label items (the snapshot layer already guarantees this
  ordering; the renderer re-sorts defensively), and values format
  through one canonical routine — the same registry content always
  yields the same exposition bytes, which is what the byte-stability
  regression test pins.
* **Read side only.** This module consumes snapshots; it never touches
  a live registry's write API, keeping the write-only observation
  contract (safelint SFL011) intact.
* Dotted metric names (``serve.offered``) sanitise to the Prometheus
  grammar (``serve_offered``) under a configurable namespace prefix.
  Counter names are exposed as-is (no ``_total`` suffix) so they map
  1:1 back to the registry series documented in OBSERVABILITY.md.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import parse_series_key

__all__ = [
    "CONTENT_TYPE",
    "render_prometheus",
    "render_registry",
]

#: The HTTP content type of exposition format v0.0.4 — carried in the
#: decision server's ``metrics`` probe reply so HTTP front-ends can
#: forward it verbatim.
CONTENT_TYPE = "text/plain; version=0.0.4"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_name(name: str, namespace: str) -> str:
    """Map a dotted registry name onto the Prometheus metric grammar."""
    flat = _INVALID_NAME_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if not flat or flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _sanitize_label(label: str) -> str:
    flat = _INVALID_LABEL_CHARS.sub("_", label)
    if not flat or flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Canonical number formatting: integral floats print as integers."""
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _render_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{_sanitize_label(k)}="{_escape_label_value(str(v))}"'
        for k, v in labels
    )
    return f"{{{parts}}}"


def _merge_le(
    labels: Tuple[Tuple[str, str], ...], bound: str
) -> Tuple[Tuple[str, str], ...]:
    """Insert the ``le`` bucket label into a sorted label tuple."""
    merged = [pair for pair in labels if pair[0] != "le"]
    merged.append(("le", bound))
    return tuple(sorted(merged))


def _families(
    table: Dict[str, object]
) -> List[Tuple[str, List[Tuple[Tuple[Tuple[str, str], ...], object]]]]:
    """Group a series table by metric name, both levels sorted."""
    grouped: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], object]]] = {}
    for key, value in table.items():
        name, labels = parse_series_key(key)
        grouped.setdefault(name, []).append((labels, value))
    return [
        (name, sorted(grouped[name], key=lambda item: item[0]))
        for name in sorted(grouped)
    ]


def render_prometheus(
    snapshot: dict,
    namespace: str = "repro",
    help_text: Optional[Dict[str, str]] = None,
) -> str:
    """Render one metrics snapshot as exposition-format text.

    Parameters
    ----------
    snapshot:
        A ``{"counters": ..., "gauges": ..., "histograms": ...}`` dict
        as produced by :meth:`MetricsRegistry.snapshot` (missing
        sections are treated as empty).
    namespace:
        Prefix for every exposed metric name (``""`` disables).
    help_text:
        Optional ``{registry_name: help string}`` map; matched names
        additionally emit a ``# HELP`` line.
    """
    help_text = help_text or {}
    lines: List[str] = []

    def emit_header(name: str, exposed: str, kind: str) -> None:
        doc = help_text.get(name)
        if doc:
            lines.append(f"# HELP {exposed} {doc}")
        lines.append(f"# TYPE {exposed} {kind}")

    for name, series in _families(dict(snapshot.get("counters", {}))):
        exposed = _sanitize_name(name, namespace)
        emit_header(name, exposed, "counter")
        for labels, value in series:
            lines.append(
                f"{exposed}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )

    for name, series in _families(dict(snapshot.get("gauges", {}))):
        exposed = _sanitize_name(name, namespace)
        emit_header(name, exposed, "gauge")
        for labels, value in series:
            lines.append(
                f"{exposed}{_render_labels(labels)} "
                f"{_format_value(value)}"
            )

    for name, series in _families(dict(snapshot.get("histograms", {}))):
        exposed = _sanitize_name(name, namespace)
        emit_header(name, exposed, "histogram")
        for labels, hist in series:
            cumulative = 0
            for bound, bucket_count in zip(
                hist["buckets"], hist["counts"]
            ):
                cumulative += int(bucket_count)
                le = _merge_le(labels, _format_value(bound))
                lines.append(
                    f"{exposed}_bucket{_render_labels(le)} {cumulative}"
                )
            le = _merge_le(labels, "+Inf")
            lines.append(
                f"{exposed}_bucket{_render_labels(le)} "
                f"{int(hist['count'])}"
            )
            rendered = _render_labels(labels)
            lines.append(
                f"{exposed}_sum{rendered} {_format_value(hist['sum'])}"
            )
            lines.append(f"{exposed}_count{rendered} {int(hist['count'])}")

    return "\n".join(lines) + ("\n" if lines else "")


def render_registry(registry, namespace: str = "repro") -> str:
    """Convenience: snapshot a registry and render it."""
    return render_prometheus(registry.snapshot(), namespace=namespace)
