"""Zero-interference observability: tracing, metrics, profiling.

The ``repro.obs`` package is the dependency-injected observability
subsystem instrumenting the shield, filter, channel, and campaign
layers:

* :mod:`repro.obs.trace` — :class:`Tracer` (scoped spans, instants,
  samples) and the repository's only sanctioned wall-clock readers
  (:func:`perf_now` / :func:`wall_now`);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms);
* :mod:`repro.obs.observer` — the :class:`Observer` façade and the
  near-free :class:`NullObserver` default;
* :mod:`repro.obs.export` — JSONL event stream and Chrome trace-event
  JSON (Perfetto-loadable);
* :mod:`repro.obs.bench_record` — ``BENCH_<area>.json`` benchmark
  trajectories;
* :mod:`repro.obs.expo` — Prometheus text exposition (v0.0.4) over
  snapshots;
* :mod:`repro.obs.recorder` — the ring-buffer flight recorder and the
  ``telemetry.jsonl`` sidecar;
* :mod:`repro.obs.fleet` — exact-sum merging of per-worker metric
  deltas into a fleet registry;
* :mod:`repro.obs.slo` — declarative SLO specs and their evaluator;
* :mod:`repro.obs.cli` — the ``repro-trace`` command line;
* :mod:`repro.obs.obs_cli` — the ``repro-obs`` command line (top /
  expo / slo check).

The contract, enforced by tests and safelint rule SFL011: observation
is write-only from the system's point of view — a traced run produces a
bit-identical :class:`~repro.sim.results.SimulationResult` to an
untraced one.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.expo import CONTENT_TYPE, render_prometheus, render_registry
from repro.obs.fleet import (
    FLEET_PREFIX,
    merge_delta,
    snapshot_delta,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    histogram_quantile,
    metric_key,
    parse_series_key,
    series_sort_key,
)
from repro.obs.recorder import (
    TELEMETRY_FILE,
    FlightRecorder,
    frame_rates,
    read_telemetry,
)
from repro.obs.slo import (
    SloReport,
    SloSpec,
    evaluate_slo,
    load_slo_spec,
)
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    resolve_observer,
)
from repro.obs.trace import Tracer, perf_now, wall_now

#: Exporter names resolved lazily (PEP 562): ``repro.obs.export`` pulls
#: in the serialization layer, which transitively imports the engine —
#: and the engine (like the channel and the filter) imports
#: ``repro.obs.observer``.  Deferring the exporters keeps this package
#: importable from inside those modules without a cycle.
_EXPORT_NAMES = frozenset(
    {
        "write_jsonl",
        "read_jsonl",
        "to_chrome_trace",
        "write_chrome_trace",
        "validate_chrome_trace",
    }
)


def __getattr__(name: str):
    if name in _EXPORT_NAMES:
        from repro.obs import export

        return getattr(export, name)
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


__all__ = [
    "Tracer",
    "perf_now",
    "wall_now",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "metric_key",
    "parse_series_key",
    "series_sort_key",
    "histogram_quantile",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "resolve_observer",
    "CONTENT_TYPE",
    "render_prometheus",
    "render_registry",
    "FLEET_PREFIX",
    "snapshot_delta",
    "merge_delta",
    "TELEMETRY_FILE",
    "FlightRecorder",
    "frame_rates",
    "read_telemetry",
    "SloSpec",
    "SloReport",
    "load_slo_spec",
    "evaluate_slo",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]
