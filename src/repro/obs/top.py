"""The ``repro-obs top`` terminal dashboard renderer.

Turns a sequence of flight-recorder frames (see
:mod:`repro.obs.recorder`) into one screenful of fleet telemetry using
the repo's own terminal charts (:mod:`repro.analysis.text_plot`) — no
plotting dependency, works over ssh:

* throughput sparklines (decisions/sec, sims/sec, channel drops/sec)
  from per-frame counter deltas;
* p50/p99 decision latency from the newest latency histogram;
* the degradation-ladder mix and shield engagements;
* per-worker liveness from the ``fleet.worker_up`` gauges.

Pure rendering: frames in, text out.  The CLI owns reading sidecars or
polling a live server.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.text_plot import sparkline
from repro.obs.metrics import histogram_quantile, parse_series_key
from repro.obs.recorder import frame_rates

__all__ = ["render_dashboard"]

#: (label, counter names tried in order) rows of the throughput panel.
_RATE_ROWS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("decisions/s", ("serve.offered", "fleet.serve.offered")),
    (
        "sims/s",
        ("fleet.engine.runs", "engine.runs", "campaign.sims_completed"),
    ),
    (
        "chunks/s",
        ("fleet.worker.chunks_completed", "campaign.chunks_completed"),
    ),
    ("drops/s", ("channel.dropped", "fleet.channel.dropped")),
)

#: Histogram names probed for the latency panel, first match wins.
_LATENCY_HISTOGRAMS = (
    "serve.decision_seconds",
    "fleet.serve.decision_seconds",
)


def _counter_total(frame: dict, name: str) -> Optional[float]:
    """Sum every series of counter ``name`` across its label sets."""
    total = 0.0
    found = False
    for key, value in frame.get("counters", {}).items():
        base, labels = parse_series_key(key)
        if base == name and not any(k == "worker" for k, _ in labels):
            total += float(value)
            found = True
    return total if found else None


def _rate_series(frames: Sequence[dict], name: str) -> List[float]:
    """Per-frame rates of one counter (summed over labels)."""
    rates: List[float] = []
    for older, newer in zip(frames, frames[1:]):
        pair_rates = frame_rates(older, newer)
        total = 0.0
        for key, rate in pair_rates.items():
            base, labels = parse_series_key(key)
            if base == name and not any(k == "worker" for k, _ in labels):
                total += rate
        rates.append(total)
    return rates


def _pick_counter(frame: dict, names: Sequence[str]) -> Optional[str]:
    for name in names:
        if _counter_total(frame, name) is not None:
            return name
    return None


def _ladder_mix(frame: dict) -> Dict[str, float]:
    mix: Dict[str, float] = {}
    for key, value in frame.get("counters", {}).items():
        base, labels = parse_series_key(key)
        if base not in ("serve.decisions", "fleet.serve.decisions"):
            continue
        label_map = dict(labels)
        if "worker" in label_map:
            continue
        level = label_map.get("ladder")
        if level is not None:
            mix[level] = mix.get(level, 0.0) + float(value)
    return mix


def _worker_liveness(frame: dict) -> List[Tuple[str, bool]]:
    workers: List[Tuple[str, bool]] = []
    for key, value in frame.get("gauges", {}).items():
        base, labels = parse_series_key(key)
        if base != "fleet.worker_up":
            continue
        label_map = dict(labels)
        worker = label_map.get("worker")
        if worker is not None:
            workers.append((worker, float(value) > 0.5))
    return sorted(workers)


def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}{unit}"
    return f"{value:.2f}{unit}"


def render_dashboard(
    frames: Sequence[dict], title: str = "repro fleet telemetry"
) -> str:
    """Render one dashboard screen from recorder frames (oldest first)."""
    lines: List[str] = [title, "=" * len(title)]
    if not frames:
        lines.append("(no telemetry frames yet)")
        return "\n".join(lines)
    newest = frames[-1]
    window = (
        float(frames[-1]["t"]) - float(frames[0]["t"])
        if len(frames) > 1
        else 0.0
    )
    lines.append(
        f"frames: {len(frames)}   window: {window:.1f}s   "
        f"wall: {newest.get('wall', 0.0):.0f}"
    )

    lines.append("")
    lines.append("throughput")
    for label, candidates in _RATE_ROWS:
        name = _pick_counter(newest, candidates)
        if name is None:
            continue
        rates = _rate_series(frames, name)
        current = rates[-1] if rates else 0.0
        total = _counter_total(newest, name) or 0.0
        lines.append(
            f"  {label:<12} {_fmt(current, '/s'):>12}  "
            f"total {_fmt(total):>12}  {sparkline(rates[-40:])}"
        )

    histograms = newest.get("histograms", {})
    for name in _LATENCY_HISTOGRAMS:
        hist = histograms.get(name)
        if hist is None:
            continue
        p50 = histogram_quantile(hist, 0.5)
        p99 = histogram_quantile(hist, 0.99)
        lines.append("")
        lines.append(f"latency ({name})")
        lines.append(
            f"  p50 {_fmt(None if p50 is None else p50 * 1000.0, 'ms'):>10}"
            f"   p99 {_fmt(None if p99 is None else p99 * 1000.0, 'ms'):>10}"
            f"   n={int(hist.get('count', 0))}"
        )
        break

    mix = _ladder_mix(newest)
    if mix:
        total = sum(mix.values())
        lines.append("")
        lines.append("ladder mix")
        for level in sorted(mix):
            share = mix[level] / total if total else 0.0
            bar = "#" * int(round(share * 30))
            lines.append(
                f"  L{level:<3} {mix[level]:>10.0f}  {share:6.1%}  {bar}"
            )

    shield = _counter_total(newest, "shield.engagements")
    if shield is None:
        shield = _counter_total(newest, "fleet.shield.engagements")
    if shield is not None:
        lines.append("")
        lines.append(f"shield engagements: {shield:.0f}")

    workers = _worker_liveness(newest)
    if workers:
        lines.append("")
        lines.append("workers")
        for worker, up in workers:
            done = _counter_worker_done(newest, worker)
            state = "up  " if up else "DOWN"
            done_text = "" if done is None else f"  done={done:.0f}"
            lines.append(f"  {worker:<12} {state}{done_text}")

    return "\n".join(lines)


def _counter_worker_done(frame: dict, worker: str) -> Optional[float]:
    """Chunks completed by one worker, from its labelled fleet series."""
    for key, value in frame.get("counters", {}).items():
        base, labels = parse_series_key(key)
        if base != "fleet.worker.chunks_completed":
            continue
        if dict(labels).get("worker") == worker:
            return float(value)
    return None
