"""Periodic onboard sensor of remote vehicles.

Per the paper's system model, every ``dt_s`` seconds the ego vehicle
obtains a *delay-free but inaccurate* measurement ``(p_s, v_s, a_s)`` of
each other vehicle, each component uniformly perturbed within its noise
bound.  A :class:`Sensor` observes one remote vehicle; the simulation
engine holds one per (ego, other) pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dynamics.state import VehicleState
from repro.sensing.noise import NoiseBounds, UniformNoise
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive

__all__ = ["SensorReading", "Sensor"]


@dataclass(frozen=True, slots=True)
class SensorReading:
    """One noisy measurement of a remote vehicle.

    Attributes
    ----------
    target:
        Index of the measured vehicle.
    time:
        Measurement timestamp (measurements are delay-free, so this is
        also the time the reading becomes available).
    position, velocity, acceleration:
        Measured values, each within its uniform noise bound of the truth.
    """

    target: int
    time: float
    position: float
    velocity: float
    acceleration: float

    def as_state(self) -> VehicleState:
        """The reading repackaged as a (noisy) :class:`VehicleState`."""
        return VehicleState(
            position=self.position,
            velocity=self.velocity,
            acceleration=self.acceleration,
        )

    def __str__(self) -> str:
        return (
            f"sense[C{self.target} @ t={self.time:.3f}s: "
            f"p={self.position:.3f} v={self.velocity:.3f} "
            f"a={self.acceleration:.3f}]"
        )


class Sensor:
    """Periodic noisy observer of one remote vehicle.

    Parameters
    ----------
    target:
        Index of the observed vehicle.
    period:
        Sensing period ``dt_s``; samples occur at ``t = 0, dt_s, ...``.
    bounds:
        Uniform noise bounds for the three measured channels.
    rng:
        Stream the measurement errors are drawn from.
    """

    def __init__(
        self,
        target: int,
        period: float,
        bounds: NoiseBounds,
        rng: RngStream,
    ) -> None:
        self._target = int(target)
        self._period = check_positive(period, "period")
        self._noise = UniformNoise(bounds, rng)
        self._history: List[SensorReading] = []

    @property
    def target(self) -> int:
        """Index of the observed vehicle."""
        return self._target

    @property
    def period(self) -> float:
        """Sensing period ``dt_s``."""
        return self._period

    @property
    def bounds(self) -> NoiseBounds:
        """The sensor's noise bounds."""
        return self._noise.bounds

    @property
    def history(self) -> List[SensorReading]:
        """All readings taken so far (oldest first)."""
        return list(self._history)

    def is_sample_time(self, time: float, tol: float = 1e-9) -> bool:
        """Whether ``time`` falls on the sensing schedule.

        Units: time [s]
        """
        ratio = time / self._period
        return abs(ratio - round(ratio)) <= tol * max(1.0, abs(ratio))

    def measure(self, time: float, true_state: VehicleState) -> SensorReading:
        """Take a measurement of ``true_state`` at ``time``.

        Units: time [s]

        The caller (the simulation engine) is responsible for calling this
        only at schedule instants; the sensor itself just perturbs and
        records.
        """
        reading = SensorReading(
            target=self._target,
            time=float(time),
            position=self._noise.perturb_position(true_state.position),
            velocity=self._noise.perturb_velocity(true_state.velocity),
            acceleration=self._noise.perturb_acceleration(true_state.acceleration),
        )
        self._history.append(reading)
        return reading

    def latest(self) -> Optional[SensorReading]:
        """The most recent reading, or ``None`` before the first sample."""
        if not self._history:
            return None
        return self._history[-1]
