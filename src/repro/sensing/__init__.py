"""Onboard sensing substrate: uniform noise models and periodic sensors."""

from repro.sensing.noise import NoiseBounds, UniformNoise
from repro.sensing.sensor import Sensor, SensorReading

__all__ = ["NoiseBounds", "UniformNoise", "Sensor", "SensorReading"]
