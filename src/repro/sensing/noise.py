"""Sensor noise models.

The paper assumes each sensed quantity is uniformly distributed within
``±delta`` of the true value (Section II-A, "Sensor"): position within
``delta_p``, velocity within ``delta_v``, acceleration within ``delta_a``.
The Kalman filter's measurement covariance ``R`` uses the variance of that
uniform distribution, ``delta^2 / 3`` — exactly the matrices printed in
Section III-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.intervals import Interval
from repro.utils.rng import RngStream
from repro.utils.validation import check_nonnegative

__all__ = ["NoiseBounds", "UniformNoise"]


@dataclass(frozen=True, slots=True)
class NoiseBounds:
    """Half-width noise bounds ``(delta_p, delta_v, delta_a)``.

    The paper's sensor-uncertainty sweep sets all three equal
    (``delta in {1 + 0.2 j}``); :meth:`uniform_all` builds that case.
    """

    delta_p: float
    delta_v: float
    delta_a: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "delta_p", check_nonnegative(self.delta_p, "delta_p"))
        object.__setattr__(self, "delta_v", check_nonnegative(self.delta_v, "delta_v"))
        object.__setattr__(self, "delta_a", check_nonnegative(self.delta_a, "delta_a"))

    @classmethod
    def uniform_all(cls, delta: float) -> "NoiseBounds":
        """Equal bounds on all three channels, as in the paper's sweep."""
        return cls(delta_p=delta, delta_v=delta, delta_a=delta)

    @classmethod
    def noiseless(cls) -> "NoiseBounds":
        """Perfect sensing (zero bounds) — used in unit tests."""
        return cls(delta_p=0.0, delta_v=0.0, delta_a=0.0)

    @property
    def position_variance(self) -> float:
        """Variance of the uniform position error: ``delta_p^2 / 3``."""
        return self.delta_p * self.delta_p / 3.0

    @property
    def velocity_variance(self) -> float:
        """Variance of the uniform velocity error: ``delta_v^2 / 3``."""
        return self.delta_v * self.delta_v / 3.0

    @property
    def acceleration_variance(self) -> float:
        """Variance of the uniform acceleration error: ``delta_a^2 / 3``."""
        return self.delta_a * self.delta_a / 3.0

    def position_band(self, measured: float) -> Interval:
        """Interval guaranteed to contain the true position."""
        return Interval.around(measured, self.delta_p)

    def velocity_band(self, measured: float) -> Interval:
        """Interval guaranteed to contain the true velocity."""
        return Interval.around(measured, self.delta_v)

    def acceleration_band(self, measured: float) -> Interval:
        """Interval guaranteed to contain the true acceleration."""
        return Interval.around(measured, self.delta_a)


class UniformNoise:
    """Draws uniform measurement errors within :class:`NoiseBounds`."""

    def __init__(self, bounds: NoiseBounds, rng: RngStream) -> None:
        self._bounds = bounds
        self._rng = rng

    @property
    def bounds(self) -> NoiseBounds:
        """The bounds errors are drawn within."""
        return self._bounds

    def perturb_position(self, true_value: float) -> float:
        """True position plus a uniform error in ``±delta_p``."""
        if self._bounds.delta_p == 0.0:
            return true_value
        return true_value + float(
            self._rng.uniform(-self._bounds.delta_p, self._bounds.delta_p)
        )

    def perturb_velocity(self, true_value: float) -> float:
        """True velocity plus a uniform error in ``±delta_v``."""
        if self._bounds.delta_v == 0.0:
            return true_value
        return true_value + float(
            self._rng.uniform(-self._bounds.delta_v, self._bounds.delta_v)
        )

    def perturb_acceleration(self, true_value: float) -> float:
        """True acceleration plus a uniform error in ``±delta_a``."""
        if self._bounds.delta_a == 0.0:
            return true_value
        return true_value + float(
            self._rng.uniform(-self._bounds.delta_a, self._bounds.delta_a)
        )
