"""Safety-guaranteed framework for NN-based planners in connected vehicles.

A faithful Python reproduction of *"A Safety-Guaranteed Framework for
Neural-Network-Based Planners in Connected Vehicles under Communication
Disturbance"* (DATE 2023): given any NN-based planner, build a *compound
planner* — runtime monitor + emergency planner — that guarantees safety
under message delays/drops and sensor noise, with an information filter
and aggressive unsafe-set estimation recovering (and usually improving)
the embedded planner's efficiency.

Quickstart::

    from repro import (
        LeftTurnScenario, CommSetup, SimulationEngine, BatchRunner,
        CompoundPlanner, RuntimeMonitor, EstimatorKind,
        train_left_turn_planner,
    )

    scenario = LeftTurnScenario()
    spec = train_left_turn_planner(
        "aggressive", scenario.geometry, scenario.ego_limits,
        scenario.oncoming_limits, seed=7,
    )
    planner = CompoundPlanner(
        nn_planner=spec.build_planner(
            spec.expert.window_estimator, scenario.ego_limits
        ),
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )
    engine = SimulationEngine(scenario, CommSetup.perfect())
    result = BatchRunner(engine, EstimatorKind.FILTERED).run_one(planner, seed=1)
    print(result.outcome, result.eta)

See DESIGN.md for the module map and EXPERIMENTS.md for the paper
reproduction results.
"""

from repro.comm import (
    Channel,
    ComposedFaults,
    DisturbanceModel,
    Duplication,
    FaultModel,
    FixedDelay,
    GaussianJitter,
    GilbertElliottLoss,
    IndependentLoss,
    Message,
    NoFault,
    UniformJitter,
    compose,
    messages_delayed,
    messages_lost,
    no_disturbance,
)
from repro.core import (
    AggressiveConfig,
    CertificationReport,
    CompoundPlanner,
    MonitorDecision,
    RuntimeMonitor,
    SafetyModel,
    certify,
)
from repro.dynamics import (
    SystemState,
    Trajectory,
    VehicleLimits,
    VehicleModel,
    VehicleState,
)
from repro.filtering import (
    FusedEstimate,
    InformationFilter,
    KalmanFilter,
    RawEstimator,
    ReachabilityAnalyzer,
    ReplayKalmanFilter,
)
from repro.planners import (
    ExpertConfig,
    LeftTurnExpertPlanner,
    NNPlanner,
    Planner,
    PlanningContext,
    train_left_turn_planner,
)
from repro.scenarios import LeftTurnScenario, Scenario
from repro.sensing import NoiseBounds, Sensor

# After planners/scenarios: repro.faults reaches back into repro.planners.
from repro.faults import (
    FaultPlan,
    FaultyPlanner,
    PlannerFault,
    PlannerFaultKind,
    SensorFault,
    SensorFaultKind,
    StepWindow,
    WorkerChaosOnce,
)
from repro.sim import (
    AggregateStats,
    BatchResult,
    BatchRunner,
    CommSetup,
    EstimatorKind,
    FailureRecord,
    Outcome,
    ParallelBatchRunner,
    SimulationConfig,
    SimulationEngine,
    SimulationResult,
    winning_percentage,
)
from repro.utils import Interval, RngStream

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # comm
    "Message",
    "Channel",
    "DisturbanceModel",
    "no_disturbance",
    "messages_delayed",
    "messages_lost",
    "FaultModel",
    "NoFault",
    "IndependentLoss",
    "GilbertElliottLoss",
    "FixedDelay",
    "UniformJitter",
    "GaussianJitter",
    "Duplication",
    "ComposedFaults",
    "compose",
    # faults
    "StepWindow",
    "SensorFaultKind",
    "SensorFault",
    "PlannerFaultKind",
    "PlannerFault",
    "FaultPlan",
    "FaultyPlanner",
    "WorkerChaosOnce",
    # core
    "SafetyModel",
    "RuntimeMonitor",
    "MonitorDecision",
    "AggressiveConfig",
    "CompoundPlanner",
    "certify",
    "CertificationReport",
    # dynamics
    "VehicleState",
    "SystemState",
    "VehicleLimits",
    "VehicleModel",
    "Trajectory",
    # filtering
    "KalmanFilter",
    "ReplayKalmanFilter",
    "ReachabilityAnalyzer",
    "InformationFilter",
    "RawEstimator",
    "FusedEstimate",
    # planners
    "Planner",
    "PlanningContext",
    "ExpertConfig",
    "LeftTurnExpertPlanner",
    "NNPlanner",
    "train_left_turn_planner",
    # scenarios
    "Scenario",
    "LeftTurnScenario",
    # sensing
    "NoiseBounds",
    "Sensor",
    # sim
    "CommSetup",
    "SimulationConfig",
    "SimulationEngine",
    "BatchRunner",
    "ParallelBatchRunner",
    "BatchResult",
    "FailureRecord",
    "EstimatorKind",
    "Outcome",
    "SimulationResult",
    "AggregateStats",
    "winning_percentage",
    # utils
    "Interval",
    "RngStream",
]
