"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs on
older setuptools; this offline-friendly shim lets
``python setup.py develop`` (or ``pip install -e . --no-use-pep517``)
work from the metadata in pyproject.toml.
"""

from setuptools import setup

setup()
