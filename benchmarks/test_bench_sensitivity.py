"""Benchmark: knob sensitivity of the ultimate compound planner.

Shape assertions:

* safety is flat at 100 % over the whole buffer and n_sigma grids — the
  monitor owns safety, the knobs only trade efficiency;
* every cell's mean eta stays within a narrow band of the default
  configuration's (the framework is not knife-edge tuned).
"""

import pytest

from repro.experiments.sensitivity import (
    BUFFER_GRID,
    N_SIGMA_GRID,
    render_sensitivity,
    sweep_buffers,
    sweep_n_sigma,
)


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity(benchmark, sweep_config, run_once):
    def run():
        return (
            sweep_buffers(sweep_config),
            sweep_n_sigma(sweep_config),
        )

    buffers, sigmas = run_once(benchmark, run)
    print()
    print(render_sensitivity(buffers, sigmas))

    assert set(buffers) == set(BUFFER_GRID)
    assert set(sigmas) == set(N_SIGMA_GRID)
    for stats in list(buffers.values()) + list(sigmas.values()):
        assert stats.safe_rate == 1.0

    default_eta = buffers[(0.5, 1.0)].mean_eta
    for stats in list(buffers.values()) + list(sigmas.values()):
        assert stats.mean_eta == pytest.approx(default_eta, abs=0.02)
