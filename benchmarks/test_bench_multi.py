"""Benchmark: the platoon (multi-oncoming) left-turn extension.

Shape assertions:

* the pure aggressive gap-acceptance expert is meaningfully unsafe
  against a platoon;
* the shielded version is 100 % safe for every platoon size;
* reaching time grows with platoon size (more traffic, fewer gaps) for
  the shielded planner.
"""

import pytest

from repro.comm.disturbance import messages_delayed
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.scenarios.left_turn.multi import MultiOncomingLeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.results import AggregateStats
from repro.sim.runner import BatchRunner, EstimatorKind

PLATOON_SIZES = (1, 2, 3)


@pytest.mark.benchmark(group="multi")
def test_platoon_shielding(benchmark, sweep_config, run_once):
    n_sims = max(30, sweep_config.n_sims // 2)

    def run():
        rows = {}
        for size in PLATOON_SIZES:
            scenario = MultiOncomingLeftTurnScenario(n_oncoming=size)
            engine = SimulationEngine(
                scenario,
                CommSetup(
                    0.1,
                    0.1,
                    messages_delayed(0.25, 0.3),
                    NoiseBounds.uniform_all(1.0),
                ),
                SimulationConfig(max_time=40.0, record_trajectories=False),
            )
            pure = BatchRunner(engine, EstimatorKind.RAW).run_batch(
                scenario.gap_expert(aggressive=True), n_sims, seed=31
            )
            shielded_planner = CompoundPlanner(
                nn_planner=scenario.gap_expert(aggressive=True),
                emergency_planner=scenario.emergency_planner(),
                monitor=RuntimeMonitor(scenario.safety_model()),
                limits=scenario.ego_limits,
            )
            shielded = BatchRunner(
                engine, EstimatorKind.FILTERED
            ).run_batch(shielded_planner, n_sims, seed=31)
            rows[size] = (
                AggregateStats.from_results(pure),
                AggregateStats.from_results(shielded),
            )
        return rows

    rows = run_once(benchmark, run)

    print()
    header = (
        f"{'platoon':>8} {'pure safe':>10} {'pure rt':>8} "
        f"{'shielded safe':>14} {'shielded rt':>12} {'emergency':>10}"
    )
    print(header)
    print("-" * len(header))
    for size, (pure, shielded) in rows.items():
        print(
            f"{size:>8} {pure.safe_rate:>9.1%} "
            f"{pure.mean_reaching_time:>7.2f}s {shielded.safe_rate:>13.1%} "
            f"{shielded.mean_reaching_time:>11.2f}s "
            f"{shielded.mean_emergency_frequency:>9.1%}"
        )

    for size, (pure, shielded) in rows.items():
        assert shielded.safe_rate == 1.0, size
    # The pure expert is unsafe against real traffic.
    assert rows[2][0].safe_rate < 0.95
    # More traffic, slower (shielded) crossings.
    assert (
        rows[PLATOON_SIZES[-1]][1].mean_reaching_time
        >= rows[PLATOON_SIZES[0]][1].mean_reaching_time
    )
