"""Benchmark: regenerate Figure 6 (filter and window effectiveness).

Shape assertions:

* 6a — the information filter reduces both position and velocity RMSE
  substantially over 200 sampled trajectories (the paper reports 69 %
  and 76 % reductions);
* 6b — the aggressive passing window is nested inside the conservative
  one, is much more compact, and both bracket the true passing times
  at the start of the episode.
"""

import pytest

from repro.experiments.figure6 import (
    render_filter_study,
    render_window_study,
    run_filter_study,
    run_window_study,
)


@pytest.mark.benchmark(group="figure6")
def test_fig6a_rmse(benchmark, bench_config, run_once):
    study = run_once(
        benchmark,
        lambda: run_filter_study(bench_config, n_trajectories=200),
    )
    print()
    print(render_filter_study(study))

    # Large reductions in both channels (paper: 69 % / 76 %).
    assert study.position_reduction > 0.40
    assert study.velocity_reduction > 0.40
    assert study.rmse_position_filtered < study.rmse_position_raw
    assert study.rmse_velocity_filtered < study.rmse_velocity_raw


@pytest.mark.benchmark(group="figure6")
def test_fig6b_windows(benchmark, bench_config, run_once):
    study = run_once(benchmark, lambda: run_window_study(bench_config))
    print()
    print(render_window_study(study))

    series = study["series"]
    n = len(study["times"])
    assert n > 5
    cons_width = aggr_width = 0.0
    for i in range(n):
        # Nesting: aggressive inside conservative.
        assert series["cons_lo"][i] <= series["aggr_lo"][i] + 1e-6
        assert series["aggr_hi"][i] <= series["cons_hi"][i] + 1e-6
        cons_width += series["cons_hi"][i] - series["cons_lo"][i]
        aggr_width += series["aggr_hi"][i] - series["aggr_lo"][i]
    # Compactness: the aggressive window is much tighter on average.
    assert aggr_width < 0.5 * cons_width

    # Both bracket the true passing interval at episode start.
    entry, exit_ = study["true_entry"], study["true_exit"]
    assert entry is not None and exit_ is not None
    assert series["cons_lo"][0] <= entry + 1e-6
    assert series["cons_hi"][0] >= exit_ - 1e-6
