"""Benchmark: regenerate Table I (conservative planner family).

Shape assertions (the paper's claims):

* every configuration is 100 % safe;
* the basic compound planner's reaching time matches the pure NN
  planner's (monitor alone costs nothing for a conservative planner);
* the ultimate compound planner is faster than both and achieves the
  best mean eta in every communication setting;
* reaching time degrades monotonically from no-disturbance to
  messages-lost for the pure planner.
"""

import pytest

from repro.experiments.config import SETTING_NAMES
from repro.experiments.table1 import render, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark, bench_config, run_once):
    table = run_once(benchmark, lambda: run_table1(bench_config))
    print()
    print(render(table))

    by = {
        setting: {row.planner_type: row for row in rows}
        for setting, rows in table.items()
    }
    for setting in SETTING_NAMES:
        rows = by[setting]
        # 100 % safe everywhere.
        for row in rows.values():
            assert row.stats.safe_rate == 1.0, (setting, row.planner_type)
        # Basic tracks pure closely (same estimator, same windows).
        assert rows["basic"].stats.mean_reaching_time == pytest.approx(
            rows["pure"].stats.mean_reaching_time, rel=0.05
        )
        # Ultimate is the fastest and has the best eta.
        assert (
            rows["ultimate"].stats.mean_reaching_time
            < rows["pure"].stats.mean_reaching_time
        )
        assert rows["ultimate"].stats.mean_eta == max(
            r.stats.mean_eta for r in rows.values()
        )
        # The ultimate planner actually uses the monitor.
        assert rows["ultimate"].stats.mean_emergency_frequency > 0.0

    # Disturbance slows the pure planner down monotonically across the
    # three settings (no_disturbance -> delayed -> lost).
    pure_times = [
        by[s]["pure"].stats.mean_reaching_time for s in SETTING_NAMES
    ]
    assert pure_times[0] <= pure_times[1] <= pure_times[2]
