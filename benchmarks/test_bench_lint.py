"""Benchmarks of the safelint static-analysis passes themselves.

The lint gates run on every commit (pre-commit) and every CI push, so
their wall time is part of the development loop's budget.  These
benchmarks time the full rule set and the two baseline-free families
(safedim SFL1xx, safeshape SFL2xx) over ``src/`` and, under ``make
bench-record``, persist the durations into ``BENCH_lint.json`` so a
later PR that slows the analyzers down regresses against a recorded
baseline instead of an anecdote.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, load_project_config

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def lint_config() -> LintConfig:
    pyproject = SRC.parent / "pyproject.toml"
    if pyproject.exists():
        return load_project_config(pyproject)
    return LintConfig()


def _select(config: LintConfig, prefix: str) -> LintConfig:
    from dataclasses import replace

    return replace(config, select=frozenset({prefix}), baseline=None)


@pytest.mark.benchmark(group="lint")
def test_lint_full_rule_set_over_src(benchmark, lint_config):
    result = benchmark(lint_paths, [SRC], lint_config)
    assert result.files_checked > 0


@pytest.mark.benchmark(group="lint")
def test_lint_dim_gate_over_src(benchmark, lint_config):
    result = benchmark(lint_paths, [SRC], _select(lint_config, "SFL1"))
    assert result.findings == []


@pytest.mark.benchmark(group="lint")
def test_lint_shape_gate_over_src(benchmark, lint_config):
    """The safeshape pass alone: the cost of the SFL200-series gate.

    Also re-asserts the acceptance invariant the CI gate enforces —
    zero findings and zero suppressions over ``src/`` — so the recorded
    duration always measures a *clean* pass, never one inflated by
    finding construction.
    """
    result = benchmark(lint_paths, [SRC], _select(lint_config, "SFL2"))
    assert result.findings == []
    assert result.suppressed == 0
