"""Benchmarks of the safelint static-analysis passes themselves.

The lint gates run on every commit (pre-commit) and every CI push, so
their wall time is part of the development loop's budget.  These
benchmarks time the full rule set and the three baseline-free families
(safedim SFL1xx, safeshape SFL2xx, safeflow SFL3xx) over ``src/``,
plus the cold-vs-warm cost of the shared parse cache that ``--gates``
leans on, and, under ``make bench-record``, persist the durations into
``BENCH_lint.json`` so a later PR that slows the analyzers down
regresses against a recorded baseline instead of an anecdote.
"""

import time
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, load_project_config
from repro.lint.astcache import cache_info, clear_cache

SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def lint_config() -> LintConfig:
    pyproject = SRC.parent / "pyproject.toml"
    if pyproject.exists():
        return load_project_config(pyproject)
    return LintConfig()


def _select(config: LintConfig, prefix: str) -> LintConfig:
    from dataclasses import replace

    return replace(config, select=frozenset({prefix}), baseline=None)


@pytest.mark.benchmark(group="lint")
def test_lint_full_rule_set_over_src(benchmark, lint_config):
    result = benchmark(lint_paths, [SRC], lint_config)
    assert result.files_checked > 0


@pytest.mark.benchmark(group="lint")
def test_lint_dim_gate_over_src(benchmark, lint_config):
    result = benchmark(lint_paths, [SRC], _select(lint_config, "SFL1"))
    assert result.findings == []


@pytest.mark.benchmark(group="lint")
def test_lint_shape_gate_over_src(benchmark, lint_config):
    """The safeshape pass alone: the cost of the SFL200-series gate.

    Also re-asserts the acceptance invariant the CI gate enforces —
    zero findings and zero suppressions over ``src/`` — so the recorded
    duration always measures a *clean* pass, never one inflated by
    finding construction.
    """
    result = benchmark(lint_paths, [SRC], _select(lint_config, "SFL2"))
    assert result.findings == []
    assert result.suppressed == 0


@pytest.mark.benchmark(group="lint")
def test_lint_flow_gate_over_src(benchmark, lint_config):
    """The safeflow pass alone: the cost of the SFL300-series gate.

    Re-asserts the acceptance invariant: src is flow-clean with exactly
    the one documented SFL302 suppression (the trajectory recorder), so
    the recorded duration always measures a clean pass.
    """
    result = benchmark(lint_paths, [SRC], _select(lint_config, "SFL3"))
    assert result.findings == []
    assert result.suppressed == 1


@pytest.mark.benchmark(group="lint")
def test_lint_shared_ast_cache_warm_vs_cold(benchmark, lint_config):
    """Cold-vs-warm cost of the process-level parse cache.

    The first ``lint_paths`` call in a process reads and parses every
    file; later calls (each gate of ``--gates``, every gate test of a
    pytest run) reuse the cached trees.  The benchmark times a *warm*
    full run; the cold/warm split and the hit count are printed so
    ``make bench-record -s`` captures the speedup alongside the
    recorded duration.
    """
    clear_cache()
    cold_start = time.perf_counter()
    lint_paths([SRC], lint_config)
    cold = time.perf_counter() - cold_start
    assert cache_info()["hits"] == 0

    result = benchmark(lint_paths, [SRC], lint_config)
    assert result.files_checked > 0
    info = cache_info()
    assert info["hits"] > 0, "warm run must hit the parse cache"
    warm_start = time.perf_counter()
    lint_paths([SRC], lint_config)
    warm = time.perf_counter() - warm_start
    print(
        f"\nshared-AST cache: cold {cold:.3f}s, warm {warm:.3f}s "
        f"({cold / warm:.2f}x), hits={info['hits']} "
        f"misses={info['misses']}"
    )
