"""Benchmark: decision-server throughput and degradation-ladder latency.

Runs the shield-as-a-service stack end to end — unix socket, blocking
client, full compound planner — and prints the ``serve.*`` accounting
the server keeps: ladder-level counters, p50/p99 decision latency from
the ``serve.decision_seconds`` histogram, and the shed rate.  Asserts
the hard serving invariants on every run:

* every reply, at every ladder level, is shield-verified safe
  (``verify_replaced`` never fires);
* exact accounting: ``offered == served + degraded + shed``;
* under an injected always-hung planner every decision still answers
  at the deadline with the ladder-2 shield action.

Run via ``pytest benchmarks/test_bench_serve.py -s``; recorded into
``BENCH_serve.json`` by ``make bench-record``.
"""

import asyncio
import os

from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.faults.planner_wrapper import StallingPlanner
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.idm import IDMPlanner
from repro.scenarios.car_following import CarFollowingScenario
from repro.serve.client import ServeClient
from repro.serve.ladder import LadderPolicy
from repro.serve.server import DecisionServer, ServeConfig
from repro.serve.session import DecisionSession

SCENARIO = CarFollowingScenario()
LEADER = 1

#: Decisions streamed per benchmark; scale with REPRO_BENCH_DECISIONS.
N_DECISIONS = int(os.environ.get("REPRO_BENCH_DECISIONS", "400"))


def _factories(wrap=None):
    def ladder_factory():
        compound = CompoundPlanner(
            nn_planner=IDMPlanner(SCENARIO.ego_limits, leader_index=LEADER),
            emergency_planner=SCENARIO.emergency_planner(),
            monitor=RuntimeMonitor(SCENARIO.safety_model()),
            limits=SCENARIO.ego_limits,
        )
        planner = compound if wrap is None else wrap(compound)
        return LadderPolicy(compound, SCENARIO.ego_limits, planner=planner)

    def session_factory():
        return DecisionSession(
            {LEADER: ReachabilityAnalyzer(SCENARIO.leader_limits)},
            max_state_age=1.0,
        )

    return ladder_factory, session_factory


def _stream(path, n, deadline_ms=None):
    """Stream ``n`` decisions; returns (ladder tallies, stats payload)."""
    limits = SCENARIO.ego_limits
    tallies = {1: 0, 2: 0, 3: 0}
    with ServeClient(path=path) as client:
        for i in range(n):
            t = 1.0 + 0.05 * i
            response = client.decide(
                t,
                {"position": 0.0, "velocity": 20.0},
                reports=[
                    {
                        "vehicle": LEADER,
                        "stamp": t - 0.01,
                        "position": 60.0,
                        "velocity": 15.0,
                    }
                ],
                deadline_ms=deadline_ms,
            )
            assert response["safe"] is True, response
            assert response["verify_replaced"] is False, response
            action = response["action"]
            assert limits.a_min - 1e-9 <= action <= limits.a_max + 1e-9
            tallies[response["ladder"]] += 1
        stats = client.stats()
    return tallies, stats


def _serve_and_stream(n, config=None, wrap=None, deadline_ms=None, tmp=None):
    path = str(tmp / "bench-serve.sock")
    ladder_factory, session_factory = _factories(wrap)

    async def scenario():
        server = DecisionServer(ladder_factory, session_factory, config=config)
        await server.start(path=path)
        try:
            return await asyncio.to_thread(_stream, path, n, deadline_ms)
        finally:
            await server.drain()

    return asyncio.run(scenario())


def _print_table(title, n, elapsed, tallies, stats):
    print()
    print(title)
    print(f"  decisions          {n}")
    print(f"  wall time          {elapsed:.2f} s")
    print(f"  throughput         {n / elapsed:.0f} decisions/s")
    print(
        f"  ladder 1/2/3       "
        f"{tallies[1]} / {tallies[2]} / {tallies[3]}"
    )
    print(
        f"  offered=served+degraded+shed   "
        f"{stats['offered']:g} = {stats['served']:g} + "
        f"{stats['degraded']:g} + {stats['shed']:g}"
    )
    print(f"  shed rate          {stats['shed_rate']:.3f}")
    p50 = stats["p50_ms"]
    p99 = stats["p99_ms"]
    print(f"  decision latency   p50 {p50:.2f} ms, p99 {p99:.2f} ms")


def _assert_accounting(n, tallies, stats):
    assert stats["offered"] == n
    assert (
        stats["offered"]
        == stats["served"] + stats["degraded"] + stats["shed"]
    )
    assert stats["ladder"] == {
        "1": tallies[1],
        "2": tallies[2],
        "3": tallies[3],
    }
    assert stats["verify_replaced"] == 0
    assert stats["p50_ms"] is not None and stats["p99_ms"] is not None


def _record_extras(bench_extra, stats):
    """Persist the serve accounting for the SLO gate (bench-record)."""
    bench_extra(
        p50_ms=stats["p50_ms"],
        p99_ms=stats["p99_ms"],
        shed_rate=stats["shed_rate"],
        verify_replaced=stats["verify_replaced"],
        shed=stats["shed"],
        offered=stats["offered"],
    )


def test_bench_serve_throughput(benchmark, run_once, tmp_path, bench_extra):
    """Healthy planner: every decision is a full ladder-1 answer."""
    result = run_once(
        benchmark,
        lambda: _serve_and_stream(N_DECISIONS, tmp=tmp_path),
    )
    tallies, stats = result
    elapsed = benchmark.stats.stats.total
    _print_table(
        "serve throughput (healthy planner)",
        N_DECISIONS,
        elapsed,
        tallies,
        stats,
    )
    _assert_accounting(N_DECISIONS, tallies, stats)
    _record_extras(bench_extra, stats)
    assert tallies[1] == N_DECISIONS  # all full answers
    assert stats["deadline_misses"] == 0


def test_bench_serve_degraded_ladder(benchmark, run_once, tmp_path, bench_extra):
    """Always-hung planner: every decision answers at the deadline."""
    n = max(20, N_DECISIONS // 20)
    deadline_ms = 10.0

    result = run_once(
        benchmark,
        lambda: _serve_and_stream(
            n,
            config=ServeConfig(deadline_s=deadline_ms / 1000.0, workers=4),
            wrap=lambda planner: StallingPlanner(planner, 0.5),
            deadline_ms=deadline_ms,
            tmp=tmp_path,
        ),
    )
    tallies, stats = result
    elapsed = benchmark.stats.stats.total
    _print_table(
        "serve degraded ladder (hung planner, 10 ms deadline)",
        n,
        elapsed,
        tallies,
        stats,
    )
    _assert_accounting(n, tallies, stats)
    _record_extras(bench_extra, stats)
    assert tallies[2] == n  # every answer from the shield rung
    assert stats["deadline_misses"] == n
    assert stats["planner_restarts"] == n
