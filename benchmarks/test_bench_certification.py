"""Benchmark: adversarial safety certification of both shipped scenarios.

Times the :func:`repro.core.verification.certify` sweep — the procedure
a user runs before trusting a new scenario — and asserts both shipped
scenarios come out CERTIFIED under good and degraded communication.
"""

import pytest

from repro.comm.disturbance import messages_delayed, messages_lost
from repro.core.verification import certify
from repro.scenarios.car_following import CarFollowingScenario
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup


def _comms():
    return [
        CommSetup(
            0.1, 0.1, messages_delayed(0.25, 0.5),
            NoiseBounds.uniform_all(1.0),
        ),
        CommSetup(
            0.1, 0.1, messages_lost(), NoiseBounds.uniform_all(3.0)
        ),
    ]


@pytest.mark.benchmark(group="certification")
def test_certify_left_turn(benchmark, run_once):
    report = run_once(
        benchmark,
        lambda: certify(LeftTurnScenario(), _comms(), n_runs=25, seed=11),
    )
    print()
    print(report.render())
    assert report.certified
    assert report.episodes_run == 2 * 2 * 5 * 25


@pytest.mark.benchmark(group="certification")
def test_certify_car_following(benchmark, run_once):
    report = run_once(
        benchmark,
        lambda: certify(
            CarFollowingScenario(),
            _comms(),
            n_runs=25,
            seed=12,
            max_time=20.0,
        ),
    )
    print()
    print(report.render())
    assert report.certified
