"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures, prints
the rendered artifact (so ``pytest benchmarks/ --benchmark-only -s`` or
the captured output file doubles as the reproduction record), and
asserts the *shape* claims the paper makes.

Batch sizes default to a few hundred runs per cell — enough for stable
shapes in minutes; set ``REPRO_BENCH_SIMS`` to scale toward the paper's
80 000.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig

#: Runs per (setting, planner) cell; the sweep benches use a third.
BENCH_SIMS = int(os.environ.get("REPRO_BENCH_SIMS", "120"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The calibrated experiment configuration at benchmark batch size."""
    return ExperimentConfig().with_sims(BENCH_SIMS)


@pytest.fixture(scope="session")
def sweep_config(bench_config) -> ExperimentConfig:
    """Reduced batch for the per-point figure sweeps."""
    return bench_config.with_sims(max(40, BENCH_SIMS // 3))


@pytest.fixture(scope="session")
def run_once():
    """Helper: time a single execution of an expensive experiment."""

    def _run(benchmark, fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
