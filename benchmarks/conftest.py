"""Shared configuration for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures, prints
the rendered artifact (so ``pytest benchmarks/ --benchmark-only -s`` or
the captured output file doubles as the reproduction record), and
asserts the *shape* claims the paper makes.

Batch sizes default to a few hundred runs per cell — enough for stable
shapes in minutes; set ``REPRO_BENCH_SIMS`` to scale toward the paper's
80 000.

With ``REPRO_BENCH_RECORD=1`` (``make bench-record``) every benchmark
test's wall duration is persisted as one ``BENCH_<area>.json`` document
per benchmark file (``REPRO_BENCH_DIR`` overrides the output directory,
default ``benchmarks/``), giving later PRs a machine-readable baseline
to regress against — the trace-smoke overhead gate reads
``BENCH_trace_smoke.json`` this way.

Benchmarks can attach domain numbers beyond wall time via the
``bench_extra`` fixture (``bench_extra(p99_ms=1.7, shed=0.0)``); the
values land in the entry's ``extra`` mapping, where the SLO layer
(``repro-obs slo check``) reads them as ``bench.<field>{test=...}``
gauges.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs.bench_record import write_bench_documents

#: Runs per (setting, planner) cell; the sweep benches use a third.
BENCH_SIMS = int(os.environ.get("REPRO_BENCH_SIMS", "120"))

_RECORDING = os.environ.get("REPRO_BENCH_RECORD") == "1"
_RECORDED_ENTRIES: list = []

#: Per-nodeid extra measurements attached by the ``bench_extra`` fixture.
_BENCH_EXTRAS: dict = {}


def pytest_runtest_logreport(report):
    """Collect one ``(nodeid, outcome, duration)`` entry per test call."""
    if _RECORDING and report.when == "call":
        entry = {
            "nodeid": report.nodeid,
            "outcome": report.outcome,
            "duration_seconds": round(report.duration, 6),
        }
        extra = _BENCH_EXTRAS.get(report.nodeid)
        if extra:
            entry["extra"] = dict(extra)
        _RECORDED_ENTRIES.append(entry)


@pytest.fixture
def bench_extra(request):
    """Attach named measurements to this test's bench-record entry.

    Call it with keyword numbers (latencies, counters, rates); repeated
    calls merge.  A no-op unless ``REPRO_BENCH_RECORD=1``, so tests can
    call it unconditionally.
    """

    def _attach(**values):
        extras = _BENCH_EXTRAS.setdefault(request.node.nodeid, {})
        extras.update(values)

    return _attach


def pytest_sessionfinish(session, exitstatus):
    """Write the per-area ``BENCH_<area>.json`` documents."""
    if _RECORDING and _RECORDED_ENTRIES:
        directory = os.environ.get(
            "REPRO_BENCH_DIR", os.path.dirname(__file__)
        )
        paths = write_bench_documents(
            _RECORDED_ENTRIES,
            directory,
            context={"bench_sims": BENCH_SIMS},
        )
        for path in paths:
            print(f"bench-record: wrote {path}")


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The calibrated experiment configuration at benchmark batch size."""
    return ExperimentConfig().with_sims(BENCH_SIMS)


@pytest.fixture(scope="session")
def sweep_config(bench_config) -> ExperimentConfig:
    """Reduced batch for the per-point figure sweeps."""
    return bench_config.with_sims(max(40, BENCH_SIMS // 3))


@pytest.fixture(scope="session")
def run_once():
    """Helper: time a single execution of an expensive experiment."""

    def _run(benchmark, fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
