"""Benchmark: the shard layer against the sequential campaign runner.

Runs the same manifest through the single-process
:class:`~repro.campaign.CampaignRunner` and through a three-worker
:class:`~repro.campaign.ShardCoordinator`, asserting the merged
aggregate bytes are **bit-identical** — distribution reorganises
execution, never results — and printing the wall time of each leg so
``BENCH_shard.json`` (via ``make bench-record``) tracks shard overhead
across PRs.

The workloads here are small: worker processes cost real spawn time,
so this certifies correctness and records the coordination overhead
envelope rather than chasing parallel speedup on toy chunks.  Scale
with ``REPRO_BENCH_SIMS`` to measure genuine throughput.
"""

import time

import pytest

from repro.campaign import (
    CampaignManifest,
    CampaignRunner,
    ShardCoordinator,
    shard_status,
    verify_campaign,
)

from conftest import BENCH_SIMS

#: Episodes per leg; the cap certifies bit-identity, not statistics.
SHARD_SIMS = max(8, BENCH_SIMS // 10)

AGGREGATE_FILE = "aggregate.json"


def _manifest(seed=37):
    return CampaignManifest(
        name="shard-bench",
        scenario={"kind": "left_turn"},
        comm={
            "sensor_noise": 0.3,
            "faults": [{"kind": "independent_loss", "probability": 0.2}],
        },
        planner={"kind": "constant", "acceleration": 2.0},
        config={"max_time": 10.0},
        n_sims=SHARD_SIMS,
        seed=seed,
        chunk_size=2,
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="shard")
def test_sharded_bit_identical_to_sequential(benchmark, run_once, tmp_path):
    manifest = _manifest()

    def _both():
        _, sequential_s = _timed(
            lambda: CampaignRunner(manifest, tmp_path / "sequential").run()
        )
        report, sharded_s = _timed(
            lambda: ShardCoordinator(
                manifest,
                tmp_path / "sharded",
                n_workers=3,
                heartbeat_interval=0.2,
            ).run()
        )
        return report, sequential_s, sharded_s

    report, sequential_s, sharded_s = run_once(benchmark, _both)
    print()
    print(
        f"{'leg':<14}{'sims':>6}{'chunks':>8}{'seconds':>10}\n"
        f"{'-' * 38}\n"
        f"{'sequential':<14}{SHARD_SIMS:>6}{manifest.n_chunks:>8}"
        f"{sequential_s:>10.2f}\n"
        f"{'sharded x3':<14}{SHARD_SIMS:>6}{manifest.n_chunks:>8}"
        f"{sharded_s:>10.2f}"
    )

    assert report.status == "completed"
    sequential_bytes = (tmp_path / "sequential" / AGGREGATE_FILE).read_bytes()
    sharded_bytes = (tmp_path / "sharded" / AGGREGATE_FILE).read_bytes()
    assert sharded_bytes == sequential_bytes

    for directory in ("sequential", "sharded"):
        outcome = verify_campaign(tmp_path / directory)
        assert outcome["ok"], outcome["problems"]

    summary = shard_status(tmp_path / "sharded")
    assert summary["finished"] is True
    assert summary["completed_chunks"] == manifest.n_chunks
    assert set(summary["workers"]) == {"w0", "w1", "w2"}
