"""Benchmark: regenerate Table II (aggressive planner family).

Shape assertions (the paper's claims):

* the pure aggressive NN planner collides in a large fraction of runs
  (the paper reports 38-44 % collisions) while staying the fastest over
  its safe runs;
* both compound planners are 100 % safe in every setting;
* the ultimate compound planner reaches faster than the basic one and
  attains the best mean eta;
* the compound planners' emergency frequency is substantial (the
  aggressive planner rides the monitor).
"""

import pytest

from repro.experiments.config import SETTING_NAMES
from repro.experiments.table2 import render, run_table2


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, bench_config, run_once):
    table = run_once(benchmark, lambda: run_table2(bench_config))
    print()
    print(render(table))

    by = {
        setting: {row.planner_type: row for row in rows}
        for setting, rows in table.items()
    }
    for setting in SETTING_NAMES:
        rows = by[setting]
        # The pure planner is meaningfully unsafe...
        assert 0.30 <= rows["pure"].stats.safe_rate <= 0.85, setting
        # ...and negative in mean eta as a result.
        assert rows["pure"].stats.mean_eta < 0.0
        # The compound planners are fully safe.
        assert rows["basic"].stats.safe_rate == 1.0
        assert rows["ultimate"].stats.safe_rate == 1.0
        # Ultimate beats basic on both reaching time and eta.
        assert (
            rows["ultimate"].stats.mean_reaching_time
            <= rows["basic"].stats.mean_reaching_time + 1e-9
        )
        assert (
            rows["ultimate"].stats.mean_eta
            >= rows["basic"].stats.mean_eta - 1e-9
        )
        # Aggressive riding: double-digit emergency frequencies.
        assert rows["ultimate"].stats.mean_emergency_frequency > 0.10
        # Paired winning percentage against the unsafe pure planner is
        # at least the pure planner's collision rate (the ultimate wins
        # every crashed run outright).
        assert (
            rows["pure"].ultimate_wins
            >= 1.0 - rows["pure"].stats.safe_rate - 1e-9
        )
