"""Benchmark: chaos certification of the shielded compound planner.

Sweeps the compound planner (information filter + monitor + emergency
planner, with a fault-injected embedded planner) across a grid of
channel fault models and engine-level sensor dropout — the fault
classes the paper's guarantee covers — and asserts **zero collisions**
in every cell.  A final cell re-runs one configuration through the
crash-tolerant parallel runner with an injected worker crash and
asserts the results are bit-identical to the sequential reference.

Run via ``make chaos`` (~30 s at the default batch size); scale with
``REPRO_BENCH_SIMS`` like the other benchmarks.
"""

import pytest

from repro.comm.disturbance import no_disturbance
from repro.comm.faults import (
    Duplication,
    FixedDelay,
    GaussianJitter,
    GilbertElliottLoss,
    UniformJitter,
    compose,
)
from repro.core.compound import CompoundPlanner
from repro.core.monitor import RuntimeMonitor
from repro.faults import (
    FaultPlan,
    FaultyPlanner,
    PlannerFault,
    PlannerFaultKind,
    SensorFault,
    SensorFaultKind,
    StepWindow,
    WorkerChaosOnce,
)
from repro.planners.constant import ConstantPlanner
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.parallel import ParallelBatchRunner
from repro.sim.runner import BatchRunner, EstimatorKind

from conftest import BENCH_SIMS

#: Episodes per grid cell; the cap certifies shape, not statistics.
CHAOS_SIMS = max(8, BENCH_SIMS // 10)

#: The channel fault grid — every mechanism plus their composition.
FAULT_GRID = [
    (
        "burst loss",
        GilbertElliottLoss(p_enter_burst=0.05, p_exit_burst=0.3),
    ),
    (
        "reordering jitter",
        UniformJitter(0.0, 0.35),
    ),
    (
        "jitter + duplication",
        compose(
            GaussianJitter(mean=0.15, std=0.1, high=0.4),
            Duplication(0.3, lag=0.05),
        ),
    ),
    (
        "comm storm",
        compose(
            GilbertElliottLoss(p_enter_burst=0.1, p_exit_burst=0.3),
            FixedDelay(0.2),
            UniformJitter(0.0, 0.3),
            Duplication(0.2, lag=0.1),
        ),
    ),
]


def _comm(faults):
    return CommSetup(
        dt_m=0.1,
        dt_s=0.1,
        disturbance=no_disturbance(),
        sensor_bounds=NoiseBounds.uniform_all(1.0),
        faults=faults,
    )


def _covered_fault_plan():
    """Sensor dropout only — the sensor fault class the theorem covers."""
    return FaultPlan(
        sensor_faults=(
            SensorFault(
                window=StepWindow(20, 120),
                kind=SensorFaultKind.DROPOUT,
                probability=0.5,
            ),
        )
    )


def _shielded_planner(scenario):
    """Compound planner around a fault-injected embedded planner."""
    embedded = FaultyPlanner(
        ConstantPlanner(2.0),
        [
            PlannerFault(StepWindow(20, 35), PlannerFaultKind.EXCEPTION),
            PlannerFault(StepWindow(60, 75), PlannerFaultKind.NAN),
            PlannerFault(StepWindow(90, 100), PlannerFaultKind.LATENCY),
        ],
    )
    return CompoundPlanner(
        nn_planner=embedded,
        emergency_planner=scenario.emergency_planner(),
        monitor=RuntimeMonitor(scenario.safety_model()),
        limits=scenario.ego_limits,
    )


def _config():
    return SimulationConfig(
        max_time=10.0,
        record_trajectories=False,
        fault_plan=_covered_fault_plan(),
    )


def _fingerprint(result):
    return (
        result.outcome,
        result.reaching_time,
        result.collision_time,
        result.steps,
        result.emergency_steps,
        result.sensor_faults_injected,
        tuple(
            (i, s.sent, s.dropped, s.delivered, s.duplicated, s.out_of_order)
            for i, s in sorted(result.channel_stats.items())
        ),
    )


def _run_grid():
    scenario = LeftTurnScenario()
    rows = []
    for name, faults in FAULT_GRID:
        engine = SimulationEngine(scenario, _comm(faults), _config())
        runner = BatchRunner(engine, EstimatorKind.FILTERED)
        results = runner.run_batch(
            _shielded_planner(scenario), CHAOS_SIMS, seed=29
        )
        stats = [s for r in results for s in r.channel_stats.values()]
        rows.append(
            {
                "cell": name,
                "n": len(results),
                "collisions": sum(1 for r in results if not r.is_safe),
                "emergency": sum(r.emergency_frequency for r in results)
                / len(results),
                "sensor_faults": sum(r.sensor_faults_injected for r in results),
                "dropped": sum(s.dropped for s in stats),
                "duplicated": sum(s.duplicated for s in stats),
                "out_of_order": sum(s.out_of_order for s in stats),
            }
        )
    return rows


def _render(rows):
    header = (
        f"{'cell':<22}{'n':>4}{'coll':>6}{'emerg':>8}"
        f"{'sens':>6}{'drop':>7}{'dup':>6}{'ooo':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['cell']:<22}{row['n']:>4}{row['collisions']:>6}"
            f"{row['emergency']:>8.3f}{row['sensor_faults']:>6}"
            f"{row['dropped']:>7}{row['duplicated']:>6}{row['out_of_order']:>6}"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="chaos")
def test_chaos_grid_zero_collisions(benchmark, run_once):
    rows = run_once(benchmark, _run_grid)
    print()
    print(_render(rows))
    for row in rows:
        assert row["collisions"] == 0, f"collision under {row['cell']}"
    # The grid must actually exercise every fault mechanism.
    assert any(row["dropped"] > 0 for row in rows)
    assert any(row["duplicated"] > 0 for row in rows)
    assert any(row["out_of_order"] > 0 for row in rows)
    assert any(row["sensor_faults"] > 0 for row in rows)


@pytest.mark.benchmark(group="chaos")
def test_chaos_parallel_bit_identity_under_crash(benchmark, run_once, tmp_path):
    """Sequential vs parallel-with-worker-crash on the storm cell."""
    scenario = LeftTurnScenario()
    _, faults = FAULT_GRID[-1]
    chaos = WorkerChaosOnce(str(tmp_path / "crash"), mode="exit")

    def _both():
        sequential = BatchRunner(
            SimulationEngine(scenario, _comm(faults), _config()),
            EstimatorKind.FILTERED,
        ).run_batch(_shielded_planner(scenario), CHAOS_SIMS, seed=31)
        parallel = ParallelBatchRunner(
            scenario,
            _comm(faults),
            _config(),
            estimator_kind=EstimatorKind.FILTERED,
            n_workers=2,
            chaos=chaos,
        ).run_batch(_shielded_planner(scenario), CHAOS_SIMS, seed=31)
        return sequential, parallel

    sequential, parallel = run_once(benchmark, _both)
    assert not chaos.armed()  # the worker crash really fired
    assert [_fingerprint(r) for r in parallel] == [
        _fingerprint(r) for r in sequential
    ]
    assert all(r.is_safe for r in parallel)
