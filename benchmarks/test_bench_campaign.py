"""Benchmark: the chaos certification grid through the campaign layer.

Ports the ``test_bench_chaos`` grid to durable campaigns: every fault
cell becomes a declarative :class:`~repro.campaign.CampaignManifest`
(channel fault stages, sensor dropout plan, shielded compound planner
with embedded fault windows), executed chunk by chunk with journaling
and atomic chunk snapshots.  Asserts the same zero-collision guarantee
as the direct grid, that ``verify`` passes over every campaign
directory, and that the chunked, journaled execution is **bit-identical**
to the plain sequential runner on the same workload — the campaign
machinery reorganises execution, never results.

Run via ``make chaos``; scale with ``REPRO_BENCH_SIMS``.
"""

import pytest

from repro.campaign import CampaignManifest, CampaignRunner, verify_campaign
from repro.campaign.store import load_json
from repro.scenarios.left_turn.scenario import LeftTurnScenario
from repro.sim.engine import SimulationEngine
from repro.sim.runner import BatchRunner, EstimatorKind
from repro.sim.serialization import result_from_dict

from conftest import BENCH_SIMS
from test_bench_chaos import (
    FAULT_GRID,
    _comm,
    _config,
    _fingerprint,
    _shielded_planner,
)

#: Episodes per grid cell; the cap certifies shape, not statistics.
CAMPAIGN_SIMS = max(8, BENCH_SIMS // 10)

#: The chaos FAULT_GRID cells as declarative manifest fault stages.
CAMPAIGN_GRID = [
    (
        "burst loss",
        [{"kind": "gilbert_elliott_loss", "p_enter_burst": 0.05, "p_exit_burst": 0.3}],
    ),
    (
        "reordering jitter",
        [{"kind": "uniform_jitter", "low": 0.0, "high": 0.35}],
    ),
    (
        "jitter + duplication",
        [
            {"kind": "gaussian_jitter", "mean": 0.15, "std": 0.1, "high": 0.4},
            {"kind": "duplication", "probability": 0.3, "lag": 0.05},
        ],
    ),
    (
        "comm storm",
        [
            {"kind": "gilbert_elliott_loss", "p_enter_burst": 0.1, "p_exit_burst": 0.3},
            {"kind": "fixed_delay", "delay": 0.2},
            {"kind": "uniform_jitter", "low": 0.0, "high": 0.3},
            {"kind": "duplication", "probability": 0.2, "lag": 0.1},
        ],
    ),
]

#: The _shielded_planner / _covered_fault_plan workload, declaratively.
PLANNER_SPEC = {
    "kind": "compound",
    "embedded": {
        "kind": "constant",
        "acceleration": 2.0,
        "faults": [
            {"window": [20, 35], "kind": "exception"},
            {"window": [60, 75], "kind": "nan"},
            {"window": [90, 100], "kind": "latency"},
        ],
    },
}

CONFIG_SPEC = {
    "max_time": 10.0,
    "fault_plan": {
        "sensor_faults": [
            {"window": [20, 120], "kind": "dropout", "probability": 0.5}
        ]
    },
}


def _cell_manifest(name, stages, seed=29):
    return CampaignManifest(
        name=f"chaos-{name.replace(' ', '-')}",
        scenario={"kind": "left_turn"},
        comm={"dt_m": 0.1, "dt_s": 0.1, "sensor_noise": 1.0, "faults": stages},
        planner=PLANNER_SPEC,
        config=CONFIG_SPEC,
        n_sims=CAMPAIGN_SIMS,
        seed=seed,
        chunk_size=max(2, CAMPAIGN_SIMS // 4),
    )


def _run_campaign_grid(base_dir):
    rows = []
    for name, stages in CAMPAIGN_GRID:
        manifest = _cell_manifest(name, stages)
        directory = base_dir / manifest.name
        report = CampaignRunner(manifest, directory, n_workers=1).run()
        outcome = verify_campaign(directory)
        rows.append(
            {
                "cell": name,
                "report": report,
                "verify": outcome,
            }
        )
    return rows


def _render(rows):
    header = f"{'cell':<22}{'n':>5}{'safe':>7}{'chunks':>8}{'verify':>8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        aggregate = row["report"].aggregate
        lines.append(
            f"{row['cell']:<22}{aggregate['n_runs']:>5}"
            f"{aggregate['safe_rate']:>7.2f}"
            f"{row['report'].completed_chunks:>8}"
            f"{'ok' if row['verify']['ok'] else 'FAIL':>8}"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="campaign")
def test_campaign_chaos_grid_zero_collisions(benchmark, run_once, tmp_path):
    rows = run_once(benchmark, lambda: _run_campaign_grid(tmp_path))
    print()
    print(_render(rows))
    for row in rows:
        report = row["report"]
        assert report.status == "completed"
        assert report.n_failed == 0
        assert report.aggregate["n_runs"] == CAMPAIGN_SIMS
        assert report.aggregate["safe_rate"] == 1.0, (
            f"collision under {row['cell']}"
        )
        assert row["verify"]["ok"], row["verify"]["problems"]


@pytest.mark.benchmark(group="campaign")
def test_campaign_bit_identical_to_sequential(benchmark, run_once, tmp_path):
    """Chunked, journaled execution == plain sequential batch, bitwise."""
    name, stages = CAMPAIGN_GRID[-1]
    manifest = _cell_manifest(name, stages, seed=31)
    scenario = LeftTurnScenario()
    _, faults = FAULT_GRID[-1]

    def _both():
        report = CampaignRunner(
            manifest, tmp_path / "campaign", n_workers=1
        ).run()
        # Same workload straight through the sequential runner, using
        # the chaos benchmark's own storm-cell construction.
        sequential = BatchRunner(
            SimulationEngine(scenario, _comm(faults), _config()),
            EstimatorKind.FILTERED,
        ).run_batch(
            _shielded_planner(scenario), CAMPAIGN_SIMS, seed=31
        )
        return report, sequential

    report, sequential = run_once(benchmark, _both)
    assert report.status == "completed" and report.n_failed == 0

    # Reload the campaign's per-index results from its chunk snapshots
    # and compare simulation fingerprints one-for-one.
    per_index = {}
    for chunk in range(manifest.n_chunks):
        snapshot = load_json(
            tmp_path / "campaign" / "chunks" / f"chunk-{chunk:05d}.json"
        )
        for key, record in snapshot["results"].items():
            per_index[int(key)] = result_from_dict(record)
    campaign_results = [per_index[k] for k in range(CAMPAIGN_SIMS)]
    assert [_fingerprint(r) for r in campaign_results] == [
        _fingerprint(r) for r in sequential
    ]
