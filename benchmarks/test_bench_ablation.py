"""Benchmark: the DESIGN.md ablation (filter vs aggressive window).

Decomposes the ultimate planner's gain over the basic one into its two
techniques (Fig. 1d and 1e of the paper).  Shape assertions:

* all four variants are 100 % safe (the monitor is common to all);
* the ultimate variant attains the best mean eta;
* each single-technique variant scores at least the basic variant's
  mean eta (neither technique hurts, within noise).
"""

import pytest

from repro.experiments.ablation import VARIANTS, render_ablation, run_ablation


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("setting", ["no_disturbance", "messages_lost"])
def test_ablation_conservative(benchmark, sweep_config, run_once, setting):
    variants = run_once(
        benchmark,
        lambda: run_ablation("conservative", setting, sweep_config),
    )
    print()
    print(render_ablation({setting: variants}, "conservative"))

    assert set(variants) == set(VARIANTS)
    for name, stats in variants.items():
        assert stats.safe_rate == 1.0, name
    best = max(stats.mean_eta for stats in variants.values())
    assert variants["ultimate"].mean_eta == pytest.approx(best, abs=0.01)
    tolerance = 0.01
    assert (
        variants["filter_only"].mean_eta
        >= variants["basic"].mean_eta - tolerance
    )
    assert (
        variants["aggressive_only"].mean_eta
        >= variants["basic"].mean_eta - tolerance
    )
