"""Benchmark: regenerate Figure 5 (disturbance sweeps, conservative family).

Shape assertions:

* 5a/5b — reaching time and emergency frequency grow as the
  transmission/sensing period grows;
* 5c/5d — same under increasing message drop probability;
* 5e/5f — same under increasing sensor uncertainty with messages lost;
* in every sweep the ultimate compound planner's reaching time stays at
  or below the pure planner's.

Grids are subsampled from the paper's 20-point sweeps to keep the bench
in minutes; the module constants carry the full grids.
"""

import pytest

from repro.experiments.figure5 import (
    render_sweep,
    sweep_drop,
    sweep_sensor,
    sweep_transmission,
)

TRANSMISSION_POINTS = (0.1, 0.4, 1.6)
DROP_POINTS = (0.0, 0.45, 0.9)
SENSOR_POINTS = (1.0, 2.8, 4.6)


def _assert_shapes(sweep, n_points):
    reaching = sweep["reaching_time"]
    emergency = sweep["emergency_frequency"]
    for name in ("pure", "basic", "ultimate"):
        assert len(reaching[name]) == n_points
    # More disturbance, slower pure planner (endpoints comparison).
    assert reaching["pure"][-1] >= reaching["pure"][0] - 0.05
    # The ultimate planner stays at or below the pure planner.
    for i in range(n_points):
        assert reaching["ultimate"][i] <= reaching["pure"][i] + 0.05
    # Emergency frequency responds to disturbance for the ultimate.
    assert emergency["ultimate"][-1] >= emergency["ultimate"][0] - 0.01


@pytest.mark.benchmark(group="figure5")
def test_fig5_transmission(benchmark, sweep_config, run_once):
    sweep = run_once(
        benchmark,
        lambda: sweep_transmission(sweep_config, TRANSMISSION_POINTS),
    )
    print()
    print(
        render_sweep(
            "Fig. 5a/5b", "dt_m=dt_s (s)", TRANSMISSION_POINTS, sweep
        )
    )
    _assert_shapes(sweep, len(TRANSMISSION_POINTS))


@pytest.mark.benchmark(group="figure5")
def test_fig5_drop(benchmark, sweep_config, run_once):
    sweep = run_once(
        benchmark, lambda: sweep_drop(sweep_config, DROP_POINTS)
    )
    print()
    print(render_sweep("Fig. 5c/5d", "drop prob", DROP_POINTS, sweep))
    _assert_shapes(sweep, len(DROP_POINTS))


@pytest.mark.benchmark(group="figure5")
def test_fig5_sensor(benchmark, sweep_config, run_once):
    sweep = run_once(
        benchmark, lambda: sweep_sensor(sweep_config, SENSOR_POINTS)
    )
    print()
    print(render_sweep("Fig. 5e/5f", "sensor delta", SENSOR_POINTS, sweep))
    _assert_shapes(sweep, len(SENSOR_POINTS))
