"""Micro-benchmarks of the framework's hot paths.

These time the per-step costs that dominate a simulation campaign:
dynamics stepping, Kalman predict/update, reachability bands, passing
windows, monitor evaluation, NN inference, and a full closed-loop
episode.  They quantify the runtime-monitor overhead the paper argues is
negligible ("it does not require extra resources for safety
verification during runtime").
"""

import pytest

from repro.comm.disturbance import messages_delayed
from repro.dynamics.state import VehicleState
from repro.dynamics.vehicle import VehicleModel
from repro.filtering.fusion import FusedEstimate
from repro.filtering.kalman import KalmanFilter
from repro.filtering.reachability import ReachabilityAnalyzer
from repro.planners.base import PlanningContext
from repro.scenarios.left_turn.passing_time import (
    aggressive_window,
    conservative_window,
)
from repro.sensing.noise import NoiseBounds
from repro.sim.engine import CommSetup, SimulationConfig, SimulationEngine
from repro.sim.runner import EstimatorKind, make_estimator_factory
from repro.utils.intervals import Interval
from repro.utils.rng import RngStream


@pytest.fixture(scope="module")
def lt_scenario(request):
    from repro.scenarios.left_turn.scenario import LeftTurnScenario

    return LeftTurnScenario()


def _estimate(lt_scenario):
    return FusedEstimate(
        time=0.0,
        position=Interval(48.0, 52.0),
        velocity=Interval(-12.5, -10.5),
        nominal=VehicleState(position=50.0, velocity=-11.5, acceleration=0.3),
        message_age=0.2,
    )


@pytest.mark.benchmark(group="micro")
def test_micro_vehicle_step(benchmark, lt_scenario):
    model = VehicleModel(lt_scenario.ego_limits)
    state = VehicleState(position=0.0, velocity=10.0)
    benchmark(model.step, state, 2.0, 0.05)


@pytest.mark.benchmark(group="micro")
def test_micro_kalman_cycle(benchmark):
    kf = KalmanFilter(0.1, NoiseBounds.uniform_all(1.0))
    state = KalmanFilter.initial_state(0.0, 50.0, -12.0, 1.0, 1.0)

    def cycle():
        pred = kf.predict(state, 0.5)
        return kf.update(pred, 49.0, -11.8)

    benchmark(cycle)


@pytest.mark.benchmark(group="micro")
def test_micro_reachability_band(benchmark, lt_scenario):
    analyzer = ReachabilityAnalyzer(lt_scenario.oncoming_limits)
    state = VehicleState(position=50.0, velocity=-12.0)
    benchmark(analyzer.band_from_state, state, 0.0, 0.5)


@pytest.mark.benchmark(group="micro")
def test_micro_conservative_window(benchmark, lt_scenario):
    est = _estimate(lt_scenario)
    benchmark(
        conservative_window,
        est,
        lt_scenario.geometry,
        lt_scenario.oncoming_limits,
    )


@pytest.mark.benchmark(group="micro")
def test_micro_aggressive_window(benchmark, lt_scenario):
    est = _estimate(lt_scenario)
    benchmark(
        aggressive_window,
        est,
        lt_scenario.geometry,
        lt_scenario.oncoming_limits,
        0.5,
        1.0,
    )


@pytest.mark.benchmark(group="micro")
def test_micro_monitor_evaluation(benchmark, lt_scenario):
    from repro.core.monitor import RuntimeMonitor

    monitor = RuntimeMonitor(lt_scenario.safety_model())
    context = PlanningContext(
        time=0.0,
        ego=VehicleState(position=-10.0, velocity=11.0),
        estimates={1: _estimate(lt_scenario)},
    )
    benchmark(monitor.evaluate, context)


@pytest.mark.benchmark(group="micro")
def test_micro_nn_inference(benchmark, lt_scenario):
    from repro.planners.factory import train_left_turn_planner
    from repro.planners.training_data import DemonstrationConfig

    spec = train_left_turn_planner(
        "conservative",
        lt_scenario.geometry,
        lt_scenario.ego_limits,
        lt_scenario.oncoming_limits,
        seed=0,
        demo_config=DemonstrationConfig(n_random=200, n_rollouts=2),
        epochs=5,
        hidden=64,
    )
    planner = spec.natural_planner(lt_scenario.ego_limits)
    context = PlanningContext(
        time=0.0,
        ego=VehicleState(position=-10.0, velocity=11.0),
        estimates={1: _estimate(lt_scenario)},
    )
    benchmark(planner.plan, context)


@pytest.mark.benchmark(group="micro")
def test_micro_full_episode(benchmark, lt_scenario):
    """One complete closed-loop episode with the emergency-guarded loop."""
    from repro.core.compound import CompoundPlanner
    from repro.core.monitor import RuntimeMonitor
    from repro.planners.constant import FullThrottlePlanner

    engine = SimulationEngine(
        lt_scenario,
        CommSetup(
            0.1,
            0.1,
            messages_delayed(0.25, 0.3),
            NoiseBounds.uniform_all(1.0),
        ),
        SimulationConfig(max_time=30.0, record_trajectories=False),
    )
    factory = make_estimator_factory(EstimatorKind.FILTERED, engine)
    planner = CompoundPlanner(
        nn_planner=FullThrottlePlanner(lt_scenario.ego_limits),
        emergency_planner=lt_scenario.emergency_planner(),
        monitor=RuntimeMonitor(lt_scenario.safety_model()),
        limits=lt_scenario.ego_limits,
    )

    def episode():
        return engine.run(planner, factory, RngStream(7))

    result = benchmark(episode)
    assert result.is_safe


@pytest.mark.benchmark(group="micro")
def test_micro_full_episode_traced(benchmark, lt_scenario):
    """The same episode with a live observer: the enabled-tracing cost.

    Compare against ``test_micro_full_episode`` (the disabled path) in
    the recorded ``BENCH_micro.json``; the write-only contract means the
    result must be bit-identical either way (tests/test_obs_identity.py)
    — this benchmark quantifies what the extra telemetry costs.
    """
    from repro.core.compound import CompoundPlanner
    from repro.core.monitor import RuntimeMonitor
    from repro.obs.observer import Observer
    from repro.planners.constant import FullThrottlePlanner

    engine = SimulationEngine(
        lt_scenario,
        CommSetup(
            0.1,
            0.1,
            messages_delayed(0.25, 0.3),
            NoiseBounds.uniform_all(1.0),
        ),
        SimulationConfig(max_time=30.0, record_trajectories=False),
    )

    def episode():
        observer = Observer()
        factory = make_estimator_factory(
            EstimatorKind.FILTERED, engine, observer=observer
        )
        planner = CompoundPlanner(
            nn_planner=FullThrottlePlanner(lt_scenario.ego_limits),
            emergency_planner=lt_scenario.emergency_planner(),
            monitor=RuntimeMonitor(lt_scenario.safety_model()),
            limits=lt_scenario.ego_limits,
            observer=observer,
        )
        return engine.run(planner, factory, RngStream(7), observer=observer)

    result = benchmark(episode)
    assert result.is_safe
